// Ablation: the Bloom column filter of the general algorithm (Section V-B).
// With the filter, A^R keeps only columns whose bit appears in the row
// filter R; without it, whole rows travel. The paper argues the filter pays
// off while update matrices are hypersparse and fades as batches densify.
#include "bench_common.hpp"
#include "core/general_spgemm.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;
constexpr int kScale = 12;

struct Row {
    double with_ms, without_ms;
    double with_ar, without_ar;  // nnz(A^R)
};

Row run_one(std::size_t batch_size) {
    Row row{};
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto mine = graph::rmat_edges(kScale, 16'384,
                                      3 + static_cast<std::uint64_t>(comm.rank()));
        for (auto& e : mine) e.value = 1.0;
        auto B = core::build_dynamic_matrix<sparse::MinPlus<double>>(grid, n,
                                                                     n, mine);
        std::mt19937_64 rng(9 + static_cast<std::uint64_t>(comm.rank()));
        auto draw = [&] {
            std::vector<Triple<double>> batch;
            for (std::size_t x = 0; x < batch_size; ++x)
                batch.push_back(mine[rng() % mine.size()]);
            return batch;
        };

        for (bool use_bloom : {true, false}) {
            // A' must be an *accumulated* matrix (rows with real degree);
            // the column filter discards the columns of a selected row whose
            // inner index never contributed to a masked cell, so a nearly
            // empty A' would leave it nothing to do.
            auto A = core::build_dynamic_matrix<sparse::MinPlus<double>>(
                grid, n, n, graph::erdos_renyi_edges(
                                n, 8'192,
                                31 + static_cast<std::uint64_t>(comm.rank())));
            core::DistDynamicMatrix<double> C(grid, n, n);
            core::DistDynamicMatrix<std::uint64_t> F(grid, n, n);
            core::SummaOptions sopts;
            sopts.bloom_out = &F;
            core::summa<sparse::MinPlus<double>>(C, A, B, sopts);

            auto batch = draw();
            std::size_t ar = 0;
            const double ms = timed_ms(comm, [&] {
                auto Astar = core::build_update_matrix(grid, n, n, batch);
                core::DistDcsr<double> Bstar(grid, n, n);
                auto Cstar = core::compute_pattern(A, Astar, B, Bstar);
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::merge_update(A, U);
                core::GeneralSpgemmOptions gopts;
                gopts.use_bloom_filter = use_bloom;
                auto st = core::general_dynamic_spgemm<sparse::MinPlus<double>>(
                    C, F, A, B, Cstar, gopts);
                ar = st.ar_nnz_global;
            });
            if (comm.rank() == 0) {
                if (use_bloom) {
                    row.with_ms = ms;
                    row.with_ar = static_cast<double>(ar);
                } else {
                    row.without_ms = ms;
                    row.without_ar = static_cast<double>(ar);
                }
            }
        }
    });
    return row;
}

}  // namespace

int main() {
    print_header("Ablation: Bloom column filter in the general algorithm",
                 "Section V-B claim");
    std::printf("%-10s | %10s %10s | %12s %12s | %s\n", "batch", "with",
                "without", "nnz(A^R) w/", "nnz(A^R) w/o", "volume saved");
    for (std::size_t bs : {32u, 128u, 512u, 2'048u}) {
        const Row r = run_one(bs);
        std::printf("%-10zu | %8.2fms %8.2fms | %12.0f %12.0f | %5.1f%%\n", bs,
                    r.with_ms, r.without_ms, r.with_ar, r.without_ar,
                    100.0 * (1.0 - (r.without_ar == 0
                                        ? 1.0
                                        : r.with_ar / r.without_ar)));
    }
    std::printf(
        "\nBoth variants produce identical results (tested); the filter only\n"
        "reduces how much of A' is packed, shipped and multiplied. As batches\n"
        "grow, more Bloom bits are set per row and the reduction fades — the\n"
        "paper's argument for why large batches favour plain transfers.\n");
    return 0;
}
