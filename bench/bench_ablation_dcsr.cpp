// Ablation: doubly-compressed (DCSR) vs plain CSR wire format for the
// hypersparse blocks this library broadcasts (Section IV: "doubly compressed
// layouts substantially decrease communication volume when hypersparse
// matrices need to be communicated").
#include "bench_common.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

/// Bytes a CSR block would need on the wire: full rowptr + colidx + values.
std::size_t csr_wire_size(index_t nrows, std::size_t nnz) {
    return (static_cast<std::size_t>(nrows) + 1) * sizeof(index_t) +
           nnz * (sizeof(index_t) + sizeof(double));
}

}  // namespace

int main() {
    print_header("Ablation: DCSR vs CSR communication volume (hypersparse blocks)",
                 "Section IV claim");
    std::printf("%-12s %-10s | %12s %12s | %s\n", "block rows", "nnz",
                "CSR bytes", "DCSR bytes", "reduction");
    std::mt19937_64 rng(17);
    for (index_t nrows : {index_t{1} << 14, index_t{1} << 17, index_t{1} << 20}) {
        for (std::size_t nnz : {64u, 1'024u, 16'384u}) {
            std::vector<Triple<double>> ts;
            ts.reserve(nnz);
            for (std::size_t x = 0; x < nnz; ++x)
                ts.push_back({static_cast<index_t>(rng() % nrows),
                              static_cast<index_t>(rng() % nrows), 1.0});
            sparse::combine_duplicates<sparse::PlusTimes<double>>(ts);
            auto dcsr = sparse::Dcsr<double>::from_row_grouped(nrows, nrows, ts);
            const std::size_t csr_bytes = csr_wire_size(nrows, dcsr.nnz());
            const std::size_t dcsr_bytes = dcsr.wire_size();
            std::printf("%-12lld %-10zu | %12zu %12zu | %7.1fx\n",
                        static_cast<long long>(nrows), dcsr.nnz(), csr_bytes,
                        dcsr_bytes,
                        static_cast<double>(csr_bytes) /
                            static_cast<double>(dcsr_bytes));
        }
    }
    std::printf(
        "\nA CSR rowptr costs O(rows) regardless of content; the DCSR wire\n"
        "size is O(nnz). At the paper's scales (blocks with millions of rows,\n"
        "update matrices with thousands of entries) the difference dominates\n"
        "the broadcast volume of Algorithms 1 and 2.\n");
    return 0;
}
