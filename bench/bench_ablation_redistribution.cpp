// Ablation: the paper's two-phase redistribution (counting sort over sqrt(p)
// buckets + alltoallv among sqrt(p) peers, twice) against the competitor's
// strategy (comparison sort by destination + one global alltoallv).
// Backs the claim of Section IV-B / VII-B a.
#include "bench_common.hpp"
#include "core/redistribute.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 16;
constexpr int kReps = 5;

struct Row {
    double two_phase_ms, direct_ms;
    double two_phase_msgs, direct_msgs;
};

Row run_one(std::size_t tuples_per_rank) {
    Row row{};
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 1 << 14;
        core::DistDynamicMatrix<double> holder(grid, n, n);
        std::mt19937_64 rng(5 + static_cast<std::uint64_t>(comm.rank()));
        auto draw = [&] {
            std::vector<Triple<double>> ts;
            ts.reserve(tuples_per_rank);
            for (std::size_t x = 0; x < tuples_per_rank; ++x)
                ts.push_back({static_cast<index_t>(rng() % n),
                              static_cast<index_t>(rng() % n), 1.0});
            return ts;
        };
        double tp = 0, dr = 0;
        std::uint64_t tp_msgs = 0, dr_msgs = 0;
        for (int r = 0; r < kReps; ++r) {
            auto ts = draw();
            reset_stats(comm);
            tp += timed_ms(comm, [&] {
                auto got = core::redistribute_tuples(
                    grid, holder.shape(), ts, core::RedistMode::TwoPhase);
            });
            comm.barrier();
            tp_msgs += comm.stats().snapshot().collectives;
            reset_stats(comm);
            dr += timed_ms(comm, [&] {
                auto got = core::redistribute_tuples(
                    grid, holder.shape(), ts, core::RedistMode::DirectSort);
            });
            comm.barrier();
            dr_msgs += comm.stats().snapshot().collectives;
        }
        if (comm.rank() == 0) {
            row = {tp / kReps, dr / kReps,
                   static_cast<double>(tp_msgs) / kReps,
                   static_cast<double>(dr_msgs) / kReps};
        }
    });
    return row;
}

}  // namespace

int main() {
    print_header(
        "Ablation: two-phase redistribution vs sort + global alltoall (p=16)",
        "Section IV-B / VII-B a");
    std::printf("%-14s | %10s %10s | %8s\n", "tuples/rank", "two-phase",
                "direct", "speedup");
    for (std::size_t tpr : {1'000u, 4'000u, 16'000u, 64'000u}) {
        const Row r = run_one(tpr);
        std::printf("%-14zu | %8.2fms %8.2fms | %7.2fx\n", tpr, r.two_phase_ms,
                    r.direct_ms, r.direct_ms / r.two_phase_ms);
    }
    std::printf(
        "\nThe two-phase variant replaces one comparison sort over the whole\n"
        "batch (log factor) by two counting sorts over sqrt(p) buckets, and\n"
        "each exchange involves only sqrt(p) peers instead of all p.\n");
    return 0;
}
