// Ablation: intra-rank shared-memory parallelism (the paper's OpenMP layer).
// Local insertion work is bucketed by (row mod T) so T threads apply a batch
// without synchronization (Section IV-B); local SpGEMM partitions left rows
// across threads with per-thread accumulators (Section VI-A).
//
// NOTE: this host has one core, so wall time cannot improve with T; the
// table verifies the parallel paths add only bounded overhead (their
// correctness is covered by the test suite). On a multicore node the same
// binary shows the speedup.
#include "bench_common.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;

struct Row {
    double insert_ms;
    double spgemm_ms;
};

Row run_threads(int threads) {
    Row row{};
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        par::ThreadPool pool(threads);
        const index_t n = index_t{1} << 13;
        auto mine = graph::rmat_edges(13, 40'000,
                                      3 + static_cast<std::uint64_t>(comm.rank()));
        for (auto& e : mine) e.value = 1.0;

        const double insert_ms = timed_ms(comm, [&] {
            auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
                grid, n, n, mine, core::RedistMode::TwoPhase, &pool);
        });
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine, core::RedistMode::TwoPhase, &pool);
        core::SummaOptions opts;
        opts.pool = &pool;
        const double spgemm_ms = timed_ms(comm, [&] {
            auto C = core::summa_multiply<sparse::PlusTimes<double>>(A, A, opts);
        });
        if (comm.rank() == 0) row = {insert_ms, spgemm_ms};
    });
    return row;
}

}  // namespace

int main() {
    print_header("Ablation: intra-rank threads (OpenMP substitute), p=4",
                 "Sections IV-B / VI-A");
    std::printf("%-10s | %12s | %12s\n", "threads", "construction",
                "local SpGEMM");
    for (int t : {1, 2, 4, 6}) {
        const Row r = run_threads(t);
        std::printf("%-10d | %10.1fms | %10.1fms\n", t, r.insert_ms,
                    r.spgemm_ms);
    }
    std::printf(
        "\nThe paper runs 6 OpenMP threads per MPI process; with one physical\n"
        "core here the columns demonstrate overhead-boundedness only.\n");
    return 0;
}
