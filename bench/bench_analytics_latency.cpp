// Epoch-boundary latency of the live analytics layer: maintainer set x
// epoch batch size.
//
// Not a paper figure — this measures what src/analytics/ adds on top of the
// streaming engine: with maintainers subscribed, every applied epoch pays
// the hook (collective maintainer updates) before readers are released, so
// the interesting quantities are the hook's mean/worst latency per epoch,
// its share of the epoch, and how both move with the epoch batch size and
// with which maintainers are attached. Traffic is the analytics-read
// scenario (weighted ADDs, windowed MASKs, derived-value polls). With
// DSG_BENCH_JSON=<path> every cell is recorded as one JSON object;
// DSG_BENCH_SCALE shrinks the per-producer write budget (see
// docs/BENCHMARKS.md).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "bench_common.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using namespace dsg::bench;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr index_t kN = 1024;
constexpr index_t kClusters = 16;

std::size_t writes_per_producer() {
    return std::max<std::size_t>(
        200, static_cast<std::size_t>(3'000 * bench_scale()));
}

struct MaintainerSet {
    const char* name;
    bool triangles, distances, contraction;
};

constexpr MaintainerSet kSets[] = {
    {"none", false, false, false},
    {"triangles", true, false, false},
    {"distances", false, true, false},
    {"contraction", false, false, true},
    {"all", true, true, true},
};

struct Cell {
    double elapsed_ms = 0;
    double ops_per_s = 0;
    std::uint64_t epochs = 0;
    std::uint64_t applied_epochs = 0;
    double hook_mean_ms = 0;   ///< hook time per applied epoch
    double hook_max_ms = 0;    ///< worst single hook
    double hook_share = 0;     ///< hook / (drain + apply + hook)
    std::uint64_t polls = 0;   ///< derived-value reads served
    double triangles = -1, distance_sum = -1, contraction_weight = -1;
};

Cell run_cell(const MaintainerSet& set, std::size_t epoch_batch) {
    Cell cell;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, kN, kN);

        const std::vector<index_t> sources = {0, 1, 2, 3};
        std::vector<index_t> assignment(static_cast<std::size_t>(kN));
        for (std::size_t v = 0; v < assignment.size(); ++v)
            assignment[v] = static_cast<index_t>(v) % kClusters;

        analytics::AnalyticsHub<double> hub;
        if (set.triangles)
            hub.emplace<analytics::LiveTriangleMaintainer>(grid, kN);
        if (set.distances)
            hub.emplace<analytics::LiveDistanceMaintainer>(grid, kN, sources);
        if (set.contraction)
            hub.emplace<analytics::LiveContractionMaintainer>(
                grid, kN, kClusters, assignment);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::AnalyticsRead;
        wl.n = kN;
        wl.writes = writes_per_producer();
        wl.window = 256;
        wl.read_fraction = 0.2;
        wl.seed = 61 + static_cast<std::uint64_t>(comm.rank());

        stream::EngineConfig cfg;
        cfg.epoch_batch = epoch_batch;
        cfg.epoch_deadline = std::chrono::milliseconds(10);
        Engine engine(A, cfg);
        if (hub.size() > 0) hub.attach(engine);
        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        std::atomic<std::uint64_t> polls{0};
        const double elapsed_ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (int prod = 0; prod < kProducers; ++prod) {
                producers.emplace_back([&, prod] {
                    std::uint64_t my_polls = 0;
                    stream::drive_producer(
                        engine, stream::WorkloadProducer(wl, prod),
                        [&](index_t, index_t) {
                            for (std::size_t k = 0; k < hub.size(); ++k)
                                (void)hub[k].snapshot();
                            ++my_polls;
                        });
                    polls.fetch_add(my_polls);
                });
            }
            engine.run();
            for (auto& t : producers) t.join();
        });

        const auto total_ops = comm.allreduce<std::uint64_t>(
            engine.stats().local_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        const auto total_polls = comm.allreduce<std::uint64_t>(
            polls.load(), [](std::uint64_t a, std::uint64_t b) { return a + b; });

        if (comm.rank() == 0) {
            const auto& s = engine.stats();
            cell.elapsed_ms = elapsed_ms;
            cell.ops_per_s =
                static_cast<double>(total_ops) / (elapsed_ms * 1e-3);
            cell.epochs = s.epochs;
            cell.applied_epochs = s.applied_epochs;
            cell.hook_mean_ms =
                s.applied_epochs > 0
                    ? s.hook_ms / static_cast<double>(s.applied_epochs)
                    : 0;
            cell.hook_max_ms = s.max_hook_ms;
            const double epoch_total = s.drain_ms + s.apply_ms + s.hook_ms;
            cell.hook_share = epoch_total > 0 ? s.hook_ms / epoch_total : 0;
            cell.polls = total_polls;
            for (std::size_t k = 0; k < hub.size(); ++k) {
                const std::string n = hub[k].name();
                if (n == "triangles") cell.triangles = hub[k].snapshot();
                if (n == "distance-sum") cell.distance_sum = hub[k].snapshot();
                if (n == "contraction-weight")
                    cell.contraction_weight = hub[k].snapshot();
            }
        }
    });
    return cell;
}

}  // namespace

int main() {
    print_header("Live analytics epoch-boundary latency (src/analytics/)",
                 "no figure — maintainer hook cost per epoch");
    std::printf("%d ranks, %d producers/rank, %zu writes/producer, n = %lld\n\n",
                kRanks, kProducers, writes_per_producer(),
                static_cast<long long>(kN));
    std::printf("%-12s %6s %9s %7s %10s %10s %7s\n", "maintainers", "batch",
                "ops/s", "epochs", "hook ms", "worst ms", "share");

    for (const auto& set : kSets) {
        for (std::size_t epoch_batch :
             {std::size_t{512}, std::size_t{2048}, std::size_t{8192}}) {
            const Cell cell = run_cell(set, epoch_batch);
            std::printf("%-12s %6zu %9.0f %7llu %10.2f %10.2f %6.1f%%\n",
                        set.name, epoch_batch, cell.ops_per_s,
                        static_cast<unsigned long long>(cell.epochs),
                        cell.hook_mean_ms, cell.hook_max_ms,
                        100.0 * cell.hook_share);

            JsonRecord rec("bench_analytics_latency");
            rec.field("maintainers", set.name)
                .field("ranks", kRanks)
                .field("producers_per_rank", kProducers)
                .field("writes_per_producer", writes_per_producer())
                .field("epoch_batch", epoch_batch)
                .field("elapsed_ms", cell.elapsed_ms)
                .field("ops_per_s", cell.ops_per_s)
                .field("epochs", cell.epochs)
                .field("applied_epochs", cell.applied_epochs)
                .field("hook_mean_ms", cell.hook_mean_ms)
                .field("hook_max_ms", cell.hook_max_ms)
                .field("hook_share", cell.hook_share)
                .field("derived_value_polls", cell.polls);
            if (cell.triangles >= 0) rec.field("triangles", cell.triangles);
            if (cell.distance_sum >= 0)
                rec.field("distance_sum", cell.distance_sum);
            if (cell.contraction_weight >= 0)
                rec.field("contraction_weight", cell.contraction_weight);
            json_record(rec);
        }
    }
    if (json_enabled()) json_flush();
    return 0;
}
