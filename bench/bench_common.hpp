// Shared infrastructure of the benchmark harness.
//
// Every binary bench_figN_* regenerates one table/figure of the paper's
// evaluation (Section VII); README.md maps each binary to its figure and
// describes how to run the harness. The real-world instances of
// Table I are replaced by shape-preserving synthetic stand-ins (R-MAT with
// Graph500 parameters for the skewed social/web graphs, Erdős–Rényi for the
// peer-to-peer network), scaled by ~2^12 so the whole harness runs in
// minutes on one core. All benchmarks use the paper's setup: indices are
// randomly permuted before distribution, graphs are read undirected (both
// edge directions inserted), and batch sizes are *per rank*.
#pragma once

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/update_ops.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"

namespace dsg::bench {

using Clock = std::chrono::steady_clock;
using sparse::index_t;
using sparse::Triple;

inline double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A Table-I instance and its synthetic stand-in.
struct Instance {
    const char* name;        ///< the paper's instance name
    const char* type;        ///< Social / Web / Peer-to-Peer
    double paper_n_million;  ///< paper's vertex count (millions)
    double paper_nnz_million;///< paper's non-zeros (millions)
    int scale;               ///< our stand-in: 2^scale vertices
    std::size_t edges;       ///< our stand-in: directed edges before symmetrize
    bool rmat;               ///< R-MAT (skewed) or Erdős–Rényi
};

/// The twelve instances of Table I with scaled stand-ins (nnz ratios roughly
/// preserved; the absolute scale-down is ~2^12).
inline const std::vector<Instance>& instances() {
    static const std::vector<Instance> table = {
        {"LiveJournal", "Social", 4, 86, 12, 10'000, true},
        {"orkut", "Social", 3, 234, 12, 28'000, true},
        {"tech-p2p", "Peer-to-Peer", 5, 295, 13, 36'000, false},
        {"indochina", "Web", 7, 304, 13, 37'000, true},
        {"sinaweibo", "Social", 58, 522, 14, 64'000, true},
        {"uk2002", "Web", 18, 529, 14, 64'000, true},
        {"wikipedia", "Web", 27, 1088, 14, 132'000, true},
        {"PayDomain", "Web", 42, 1165, 15, 142'000, true},
        {"uk2005", "Web", 39, 1581, 15, 193'000, true},
        {"webbase", "Web", 118, 1736, 15, 212'000, true},
        {"twitter", "Social", 41, 2405, 15, 293'000, true},
        {"friendster", "Social", 124, 3612, 16, 441'000, true},
    };
    return table;
}

/// A small subset used by the batch-sweep figures to bound total runtime.
/// Deliberately weighted toward the larger stand-ins: the rebuild-vs-dynamic
/// contrast the paper measures lives in the nnz/batch ratio, and tiny
/// instances would be dominated by fixed per-collective overheads of the
/// threaded rank runtime.
inline std::vector<Instance> representative_instances() {
    const auto& all = instances();
    return {all[1], all[6], all[10]};
}

/// Generates this rank's slice of the instance's edges (directed), values 1,
/// indices randomly permuted — the paper's load-balancing step.
inline std::vector<Triple<double>> instance_edges(const Instance& inst,
                                                  int rank, int ranks,
                                                  std::uint64_t seed) {
    const std::size_t mine = inst.edges / static_cast<std::size_t>(ranks);
    auto edges = inst.rmat
                     ? graph::rmat_edges(inst.scale, mine,
                                         seed + static_cast<std::uint64_t>(rank))
                     : graph::erdos_renyi_edges(
                           index_t{1} << inst.scale, mine,
                           seed + static_cast<std::uint64_t>(rank));
    for (auto& e : edges) e.value = 1.0;
    sparse::IndexPermutation perm(index_t{1} << inst.scale, seed * 77 + 1);
    perm.apply(edges);
    return graph::symmetrize(std::move(edges));
}

/// Splits edges into an initial half and a stream of per-batch slices.
struct EdgeStream {
    std::vector<Triple<double>> initial;
    std::vector<Triple<double>> remaining;

    explicit EdgeStream(std::vector<Triple<double>> edges) {
        const std::size_t half = edges.size() / 2;
        initial.assign(edges.begin(), edges.begin() + half);
        remaining.assign(edges.begin() + half, edges.end());
    }

    /// The b-th batch of `size` tuples (wraps around if exhausted).
    [[nodiscard]] std::vector<Triple<double>> batch(std::size_t b,
                                                    std::size_t size) const {
        std::vector<Triple<double>> out;
        out.reserve(size);
        for (std::size_t x = 0; x < size && !remaining.empty(); ++x)
            out.push_back(remaining[(b * size + x) % remaining.size()]);
        return out;
    }
};

/// Barrier + wall-clock around a collective workload; returns milliseconds
/// (identical on all ranks up to scheduling noise; rank 0's value is used).
template <typename Fn>
double timed_ms(par::Comm& comm, Fn&& fn) {
    comm.barrier();
    const auto t0 = Clock::now();
    fn();
    comm.barrier();
    return ms_since(t0);
}

/// Resets the world's communication counters race-free.
inline void reset_stats(par::Comm& comm) {
    comm.barrier();
    if (comm.rank() == 0) comm.stats().reset();
    comm.barrier();
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n================================================================\n");
    std::printf("%s\n  (reproduces %s; see the benchmark table in README.md)\n", title, paper_ref);
    std::printf("================================================================\n");
}

}  // namespace dsg::bench
