// Shared infrastructure of the benchmark harness.
//
// Every binary bench_figN_* regenerates one table/figure of the paper's
// evaluation (Section VII); README.md maps each binary to its figure and
// describes how to run the harness. The real-world instances of
// Table I are replaced by shape-preserving synthetic stand-ins (R-MAT with
// Graph500 parameters for the skewed social/web graphs, Erdős–Rényi for the
// peer-to-peer network), scaled by ~2^12 so the whole harness runs in
// minutes on one core. All benchmarks use the paper's setup: indices are
// randomly permuted before distribution, graphs are read undirected (both
// edge directions inserted), and batch sizes are *per rank*.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "core/update_ops.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/mirrors.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"

namespace dsg::bench {

using Clock = std::chrono::steady_clock;
using sparse::index_t;
using sparse::Triple;

inline double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Machine-readable results (opt-in). When DSG_BENCH_JSON=<path> is set, every
// json_record() call appends one flat object to an array written to <path>
// at process exit (or at an explicit json_flush()), so a perf trajectory can
// be collected across runs without scraping stdout:
//
//   JsonRecord rec("bench_fig4_insertions");
//   rec.field("instance", inst.name).field("batch", 4096).field("ms", dyn_ms);
//   json_record(rec);
//
// Without the environment variable everything below is a no-op.
// ---------------------------------------------------------------------------

/// One flat JSON object, keys in insertion order.
class JsonRecord {
public:
    explicit JsonRecord(const char* bench) { field("bench", bench); }

    JsonRecord& field(const char* key, const char* value) {
        std::string escaped;
        for (const char* c = value; *c != '\0'; ++c) {
            if (*c == '"' || *c == '\\') {
                escaped.push_back('\\');
                escaped.push_back(*c);
            } else if (static_cast<unsigned char>(*c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(*c));
                escaped += buf;
            } else {
                escaped.push_back(*c);
            }
        }
        return raw(key, "\"" + escaped + "\"");
    }
    JsonRecord& field(const char* key, const std::string& value) {
        return field(key, value.c_str());
    }
    JsonRecord& field(const char* key, double value) {
        // %g would render inf/nan, which are not valid JSON tokens.
        if (!std::isfinite(value)) return raw(key, "null");
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        return raw(key, buf);
    }
    template <std::integral I>
    JsonRecord& field(const char* key, I value) {
        return raw(key, std::to_string(value));
    }
    /// Embeds a pre-rendered JSON object (e.g. a metrics snapshot) verbatim
    /// under `key`. The caller is responsible for its validity.
    JsonRecord& object(const char* key, const std::string& json) {
        return raw(key, json);
    }

    [[nodiscard]] const std::string& body() const { return body_; }

private:
    JsonRecord& raw(const char* key, const std::string& rendered) {
        if (!body_.empty()) body_ += ", ";
        body_ += "\"";
        body_ += key;
        body_ += "\": ";
        body_ += rendered;
        return *this;
    }
    std::string body_;
};

namespace detail {

struct JsonSink {
    std::mutex mx;
    std::vector<std::string> rows;
    std::string path;

    JsonSink() {
        if (const char* p = std::getenv("DSG_BENCH_JSON"); p != nullptr && *p)
            path = p;
    }
    ~JsonSink() { flush(); }

    void flush() {
        std::lock_guard lock(mx);
        if (path.empty()) return;
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "DSG_BENCH_JSON: cannot write %s\n",
                         path.c_str());
            return;
        }
        std::fputs("[\n", f);
        for (std::size_t r = 0; r < rows.size(); ++r)
            std::fprintf(f, "  {%s}%s\n", rows[r].c_str(),
                         r + 1 < rows.size() ? "," : "");
        std::fputs("]\n", f);
        std::fclose(f);
    }
};

inline JsonSink& json_sink() {
    static JsonSink sink;
    return sink;
}

}  // namespace detail

/// True when DSG_BENCH_JSON is set (results will be written).
inline bool json_enabled() { return !detail::json_sink().path.empty(); }

/// Queues one record; thread-safe (benchmarks record from rank threads).
/// Every record is extended with a "metrics" key holding the global
/// observability-registry snapshot at record time (counters, gauges,
/// histogram quantiles) — the schema documented in docs/BENCHMARKS.md.
inline void json_record(const JsonRecord& rec) {
    auto& sink = detail::json_sink();
    if (sink.path.empty()) return;
    std::string body = rec.body();
    body += ", \"metrics\": ";
    body += obs::registry().snapshot().to_json_object();
    std::lock_guard lock(sink.mx);
    sink.rows.push_back(std::move(body));
}

/// Rewrites the output file with everything recorded so far (also done
/// automatically at process exit).
inline void json_flush() { detail::json_sink().flush(); }

/// json_record(), but refreshing the comm_* mirror gauges from `comm`
/// first so the embedded metrics block carries current communication
/// volumes (the registry cannot pull CommStats itself — see
/// obs/mirrors.hpp).
inline void json_record_with_metrics(const JsonRecord& rec,
                                     par::Comm* comm = nullptr) {
    if (!json_enabled()) return;
    if (comm != nullptr) obs::publish_comm_stats(comm->stats().snapshot());
    json_record(rec);
}

/// A Table-I instance and its synthetic stand-in.
struct Instance {
    const char* name;        ///< the paper's instance name
    const char* type;        ///< Social / Web / Peer-to-Peer
    double paper_n_million;  ///< paper's vertex count (millions)
    double paper_nnz_million;///< paper's non-zeros (millions)
    int scale;               ///< our stand-in: 2^scale vertices
    std::size_t edges;       ///< our stand-in: directed edges before symmetrize
    bool rmat;               ///< R-MAT (skewed) or Erdős–Rényi
};

/// CI scale override: DSG_BENCH_SCALE=<f> with 0 < f <= 1 shrinks every
/// instance without touching code — edge counts are multiplied by f and the
/// vertex scale is lowered by log2(1/f), which roughly preserves the average
/// degree. Out-of-range or unparsable values fall back to 1 (full size).
inline double bench_scale() {
    static const double factor = [] {
        const char* s = std::getenv("DSG_BENCH_SCALE");
        if (s == nullptr || *s == '\0') return 1.0;
        char* end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s || !(v > 0.0) || v > 1.0) {
            std::fprintf(stderr,
                         "DSG_BENCH_SCALE='%s' ignored (want 0 < f <= 1)\n", s);
            return 1.0;
        }
        return v;
    }();
    return factor;
}

/// The twelve instances of Table I with scaled stand-ins (nnz ratios roughly
/// preserved; the absolute scale-down is ~2^12), further shrunk by
/// DSG_BENCH_SCALE when set.
inline const std::vector<Instance>& instances() {
    static const std::vector<Instance> table = [] {
        std::vector<Instance> t = {
            {"LiveJournal", "Social", 4, 86, 12, 10'000, true},
            {"orkut", "Social", 3, 234, 12, 28'000, true},
            {"tech-p2p", "Peer-to-Peer", 5, 295, 13, 36'000, false},
            {"indochina", "Web", 7, 304, 13, 37'000, true},
            {"sinaweibo", "Social", 58, 522, 14, 64'000, true},
            {"uk2002", "Web", 18, 529, 14, 64'000, true},
            {"wikipedia", "Web", 27, 1088, 14, 132'000, true},
            {"PayDomain", "Web", 42, 1165, 15, 142'000, true},
            {"uk2005", "Web", 39, 1581, 15, 193'000, true},
            {"webbase", "Web", 118, 1736, 15, 212'000, true},
            {"twitter", "Social", 41, 2405, 15, 293'000, true},
            {"friendster", "Social", 124, 3612, 16, 441'000, true},
        };
        const double f = bench_scale();
        if (f < 1.0) {
            const int down =
                static_cast<int>(std::lround(std::log2(1.0 / f)));
            for (auto& inst : t) {
                inst.scale = std::max(8, inst.scale - down);
                inst.edges = std::max<std::size_t>(
                    1'000, static_cast<std::size_t>(
                               static_cast<double>(inst.edges) * f));
            }
        }
        return t;
    }();
    return table;
}

/// A small subset used by the batch-sweep figures to bound total runtime.
/// Deliberately weighted toward the larger stand-ins: the rebuild-vs-dynamic
/// contrast the paper measures lives in the nnz/batch ratio, and tiny
/// instances would be dominated by fixed per-collective overheads of the
/// threaded rank runtime.
inline std::vector<Instance> representative_instances() {
    const auto& all = instances();
    return {all[1], all[6], all[10]};
}

/// Generates this rank's slice of the instance's edges (directed), values 1,
/// indices randomly permuted — the paper's load-balancing step.
inline std::vector<Triple<double>> instance_edges(const Instance& inst,
                                                  int rank, int ranks,
                                                  std::uint64_t seed) {
    const std::size_t mine = inst.edges / static_cast<std::size_t>(ranks);
    auto edges = inst.rmat
                     ? graph::rmat_edges(inst.scale, mine,
                                         seed + static_cast<std::uint64_t>(rank))
                     : graph::erdos_renyi_edges(
                           index_t{1} << inst.scale, mine,
                           seed + static_cast<std::uint64_t>(rank));
    for (auto& e : edges) e.value = 1.0;
    sparse::IndexPermutation perm(index_t{1} << inst.scale, seed * 77 + 1);
    perm.apply(edges);
    return graph::symmetrize(std::move(edges));
}

/// Splits edges into an initial half and a stream of per-batch slices.
struct EdgeStream {
    std::vector<Triple<double>> initial;
    std::vector<Triple<double>> remaining;

    explicit EdgeStream(std::vector<Triple<double>> edges) {
        const std::size_t half = edges.size() / 2;
        initial.assign(edges.begin(), edges.begin() + half);
        remaining.assign(edges.begin() + half, edges.end());
    }

    /// The b-th batch of `size` tuples (wraps around if exhausted).
    [[nodiscard]] std::vector<Triple<double>> batch(std::size_t b,
                                                    std::size_t size) const {
        std::vector<Triple<double>> out;
        out.reserve(size);
        for (std::size_t x = 0; x < size && !remaining.empty(); ++x)
            out.push_back(remaining[(b * size + x) % remaining.size()]);
        return out;
    }
};

/// Barrier + wall-clock around a collective workload; returns milliseconds
/// (identical on all ranks up to scheduling noise; rank 0's value is used).
template <typename Fn>
double timed_ms(par::Comm& comm, Fn&& fn) {
    comm.barrier();
    const auto t0 = Clock::now();
    fn();
    comm.barrier();
    return ms_since(t0);
}

/// Resets the world's communication counters race-free.
inline void reset_stats(par::Comm& comm) {
    comm.barrier();
    if (comm.rank() == 0) comm.stats().reset();
    comm.barrier();
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n================================================================\n");
    std::printf("%s\n  (reproduces %s; see the benchmark table in README.md)\n", title, paper_ref);
    std::printf("================================================================\n");
}

}  // namespace dsg::bench
