// Figure 10: mean performance of dynamic SpGEMM, general case, over the
// (min,+) semiring.
//
// Protocol (Section VII-C b): same streaming setup as Fig. 9, but the
// updates are treated as general (the paper uses (min,+) precisely so the
// competitors cannot fold updates in algebraically and must recompute A'B
// from scratch). Ours runs COMPUTEPATTERN + the Bloom-filtered masked
// recomputation (Algorithm 2).
//
// Scaling note: the general algorithm performs ~2 multiplications worth of
// nnz(C*)-proportional work (pattern + masked recompute), so it wins exactly
// when C* is a small fraction of C' — the paper's regime, where A' has
// accumulated many batches while each update touches one batch. The paper
// streams 10 batches; we stream 8 and report the per-batch mean. Stand-ins
// here are Erdős–Rényi: the ~2^12 scale-down turns R-MAT hubs into
// edge-biased degree explosions that would let a single batch touch most of
// C' (a pure artifact of compressing n harder than degree).
//
// Paper result: 2.39x-4.57x faster than CombBLAS; >= 14.58x than CTF,
// >= 6.9x than PETSc; the Bloom filter's benefit shrinks as the matrix
// densifies (larger batches).
#include "bench_common.hpp"
#include "core/general_spgemm.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;
constexpr int kBatches = 8;
const std::size_t kBatchSizes[] = {64, 256, 1024};

struct Workload {
    const char* name;
    index_t n;
    std::size_t edges;  // directed, per world
};

const Workload kWorkloads[] = {
    {"er-13", index_t{1} << 13, 60'000},
    {"er-15", index_t{1} << 15, 240'000},
};

struct Times {
    double ours = 0, recompute = 0;
    double ar_fraction = 0;  // nnz(A^R) / nnz(A')
};

Times run_one(const Workload& wl, std::size_t batch_size) {
    Times t;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = wl.n;
        auto mine = graph::erdos_renyi_edges(
            n, wl.edges / kRanks, 81 + static_cast<std::uint64_t>(comm.rank()));
        mine = graph::symmetrize(std::move(mine));
        auto B = core::build_dynamic_matrix<sparse::MinPlus<double>>(grid, n,
                                                                     n, mine);

        std::mt19937_64 rng(91 + static_cast<std::uint64_t>(comm.rank()));
        auto draw = [&] {
            std::vector<Triple<double>> batch;
            batch.reserve(batch_size);
            for (std::size_t x = 0; x < batch_size; ++x)
                batch.push_back(mine[rng() % mine.size()]);
            return batch;
        };
        auto A = core::build_dynamic_matrix<sparse::MinPlus<double>>(
            grid, n, n, draw());
        core::DistDynamicMatrix<double> C(grid, n, n);
        core::DistDynamicMatrix<std::uint64_t> F(grid, n, n);
        core::SummaOptions sopts;
        sopts.bloom_out = &F;
        core::summa<sparse::MinPlus<double>>(C, A, B, sopts);

        double ours = 0, rec = 0, arfrac = 0;
        for (int b = 0; b < kBatches; ++b) {
            auto batch = draw();
            std::size_t ar = 0, aprime = 0;
            ours += timed_ms(comm, [&] {
                auto Astar = core::build_update_matrix(grid, n, n, batch);
                core::DistDcsr<double> Bstar(grid, n, n);
                auto Cstar = core::compute_pattern(A, Astar, B, Bstar);
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::merge_update(A, U);  // general update (not min-folded)
                auto st = core::general_dynamic_spgemm<sparse::MinPlus<double>>(
                    C, F, A, B, Cstar);
                ar = st.ar_nnz_global;
                aprime = st.aprime_nnz_global;
            });
            arfrac += aprime == 0 ? 0.0
                                  : static_cast<double>(ar) /
                                        static_cast<double>(aprime);
            // Competitors: full static recomputation of A'B.
            rec += timed_ms(comm, [&] {
                auto C2 =
                    core::summa_multiply<sparse::MinPlus<double>>(A, B);
            });
        }
        if (comm.rank() == 0) {
            t.ours = ours / kBatches;
            t.recompute = rec / kBatches;
            t.ar_fraction = arfrac / kBatches;
        }
    });
    return t;
}

}  // namespace

int main() {
    print_header("Figure 10: dynamic SpGEMM, general case ((min,+) semiring)",
                 "Fig. 10");
    std::printf("%-8s | %9s %12s | %9s | %s\n", "batch", "ours",
                "recompute", "speedup", "nnz(A^R)/nnz(A')");
    for (std::size_t bs : kBatchSizes) {
        Times mean;
        int count = 0;
        for (const auto& wl : kWorkloads) {
            const Times t = run_one(wl, bs);
            mean.ours += t.ours;
            mean.recompute += t.recompute;
            mean.ar_fraction += t.ar_fraction;
            ++count;
        }
        const double k = count;
        std::printf("%-8zu | %7.2fms %10.2fms | %8.2fx | %.2f\n", bs,
                    mean.ours / k, mean.recompute / k,
                    mean.recompute / mean.ours, mean.ar_fraction / k);
        JsonRecord rec("bench_fig10_spgemm_general");
        rec.field("batch", bs)
            .field("ours_ms", mean.ours / k)
            .field("recompute_ms", mean.recompute / k)
            .field("speedup", mean.recompute / mean.ours)
            .field("ar_fraction", mean.ar_fraction / k);
        json_record(rec);
    }
    std::printf(
        "\npaper: 2.39x-4.57x faster than CombBLAS (which must recompute A'B\n"
        "from scratch under (min,+)); the Bloom filter discards non-zeros of\n"
        "A' that cannot contribute (last column), and its advantage shrinks\n"
        "as the matrix gets denser.\n");
    return 0;
}
