// Figure 11: weak scalability of dynamic SpGEMM (algebraic case), fixed
// update non-zeros per rank, p in {1, 4, 16} (the paper's 1x4 / 4x4 / 16x4
// node configurations). Metric: time per update non-zero; plus the per-rank
// communication volume (the quantity that must stay bounded for the paper's
// scaling claim — see the note in bench_fig6 about the single-core host).
#include "bench_common.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr std::size_t kPerRank = 2048;  // update nnz per rank (scaled 81920)
constexpr int kScale = 13;

struct Row {
    double us_per_nnz;
    double bytes_per_rank;
};

Row run_p(int p) {
    Row row{};
    par::run_world(p, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto mine = graph::rmat_edges(kScale, 16'384,
                                      7 + static_cast<std::uint64_t>(comm.rank()));
        for (auto& e : mine) e.value = 1.0;
        sparse::IndexPermutation perm(n, 13);
        perm.apply(mine);
        auto B = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine);
        core::DistDynamicMatrix<double> A(grid, n, n);
        core::DistDynamicMatrix<double> C(grid, n, n);

        std::mt19937_64 rng(3 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Triple<double>> batch;
        batch.reserve(kPerRank);
        for (std::size_t x = 0; x < kPerRank; ++x)
            batch.push_back(mine[rng() % mine.size()]);

        reset_stats(comm);
        const double ms = timed_ms(comm, [&] {
            auto Astar = core::build_update_matrix(grid, n, n, batch);
            core::DistDcsr<double> Bstar(grid, n, n);
            core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
                C, A, Astar, B, Bstar);
            core::add_update<sparse::PlusTimes<double>>(A, Astar);
        });
        comm.barrier();
        if (comm.rank() == 0) {
            const auto s = comm.stats().snapshot();
            row.us_per_nnz =
                ms * 1e3 /
                static_cast<double>(kPerRank * static_cast<std::size_t>(p));
            row.bytes_per_rank =
                static_cast<double>(s.total_bytes()) / static_cast<double>(p);
        }
    });
    return row;
}

}  // namespace

int main() {
    print_header("Figure 11: weak scaling of dynamic SpGEMM (algebraic case)",
                 "Fig. 11");
    std::printf("%-8s | %16s | %18s\n", "ranks", "time per nnz", "comm bytes/rank");
    for (int p : {1, 4, 16}) {
        const Row r = run_p(p);
        std::printf("%-8d | %13.1f us | %15.0f B\n", p, r.us_per_nnz,
                    r.bytes_per_rank);
        JsonRecord rec("bench_fig11_spgemm_weak_scaling");
        rec.field("ranks", p)
            .field("us_per_nnz", r.us_per_nnz)
            .field("comm_bytes_per_rank", r.bytes_per_rank);
        json_record(rec);
    }
    std::printf(
        "\npaper: time per non-zero decreases with more nodes (no bottleneck\n"
        "up to 16 nodes). On this single-core host wall time per non-zero\n"
        "cannot drop with p; the volume column instead tracks the algorithm's\n"
        "bandwidth bound O(nnz_total/sqrt(p)) per rank — with per-rank updates\n"
        "fixed, nnz_total grows with p, so per-rank volume grows ~sqrt(p)\n"
        "(compare 4 -> 16 ranks: ~2x), exactly the analysis of Section V-A.\n");
    return 0;
}
