// Figure 12: breakdown of dynamic SpGEMM (algebraic case) running time into
// the paper's phases: initial send/receive, broadcasts, local
// multiplication, scatter (packing of partial results) and the sparse
// reduce-scatter, per rank count.
//
// Paper result: local multiplication, reduce-scatter and send/receive scale
// well; broadcasting takes a growing fraction at higher node counts.
#include "bench_common.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr std::size_t kPerRank = 2048;
constexpr int kScale = 13;

const par::Phase kPhases[] = {
    par::Phase::SendRecv, par::Phase::Bcast, par::Phase::LocalMult,
    par::Phase::Scatter, par::Phase::ReduceScatter,
};

std::vector<double> run_p(int p) {
    par::run_world(p, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto mine = graph::rmat_edges(kScale, 16'384,
                                      7 + static_cast<std::uint64_t>(comm.rank()));
        for (auto& e : mine) e.value = 1.0;
        sparse::IndexPermutation perm(n, 13);
        perm.apply(mine);
        auto B = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine);
        core::DistDynamicMatrix<double> A(grid, n, n);
        core::DistDynamicMatrix<double> C(grid, n, n);
        std::mt19937_64 rng(3 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Triple<double>> batch;
        for (std::size_t x = 0; x < kPerRank; ++x)
            batch.push_back(mine[rng() % mine.size()]);
        auto Astar = core::build_update_matrix(grid, n, n, batch);
        core::DistDcsr<double> Bstar(grid, n, n);
        comm.barrier();
        if (comm.rank() == 0) {
            par::Profiler::reset();
            par::Profiler::set_enabled(true);
        }
        comm.barrier();
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(C, A, Astar,
                                                                  B, Bstar);
        comm.barrier();
        if (comm.rank() == 0) par::Profiler::set_enabled(false);
    });
    std::vector<double> us_per_nnz;
    for (auto ph : kPhases)
        us_per_nnz.push_back(par::Profiler::total_seconds(ph) * 1e6 /
                             static_cast<double>(kPerRank));
    return us_per_nnz;
}

}  // namespace

int main() {
    print_header(
        "Figure 12: breakdown of dynamic SpGEMM (algebraic) running time",
        "Fig. 12");
    std::printf("(us per update non-zero, summed across rank-threads)\n");
    std::printf("%-8s |", "ranks");
    for (auto ph : kPhases)
        std::printf(" %15s", std::string(par::phase_name(ph)).c_str());
    std::printf("\n");
    for (int p : {1, 4, 16}) {
        auto row = run_p(p);
        std::printf("%-8d |", p);
        for (double v : row) std::printf(" %12.2f us", v);
        std::printf("\n");
        JsonRecord rec("bench_fig12_spgemm_breakdown");
        rec.field("ranks", p);
        for (std::size_t k = 0; k < row.size(); ++k)
            rec.field(std::string(par::phase_name(kPhases[k])).c_str(),
                      row[k]);
        json_record(rec);
    }
    std::printf(
        "\npaper: local multiplication / reduce-scatter / send-recv scale with\n"
        "node count; the broadcast share grows at larger p (as expected for\n"
        "sqrt(p)-round broadcasts).\n");
    return 0;
}
