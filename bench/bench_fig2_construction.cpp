// Figure 2/3: matrix construction performance on the (stand-in) real-world
// graphs, relative to the CombBLAS-like baseline.
//
// Paper result: ours is 1.68x-2.59x faster than CombBLAS on every instance;
// CTF and PETSc are slower than both. The advantage comes from (i) the
// two-phase counting-sort redistribution vs comparison sort + global
// alltoall, and (ii) the dynamic (DHB) local structure vs sorted rebuilds.
#include "baseline/static_rebuild.hpp"
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;

struct Row {
    double ours_ms, ours_dcsr_ms, combblas_ms, ctf_ms, petsc_ms;
};

Row run_instance(const Instance& inst) {
    Row row{};
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << inst.scale;
        auto mine = instance_edges(inst, comm.rank(), kRanks, 11);

        // Ours: two-phase redistribution into the dynamic matrix.
        const double ours = timed_ms(comm, [&] {
            auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
                grid, n, n, mine);
        });
        // Ours, but building a DCSR instead of the dynamic structure (the
        // paper's "even when constructing a DCSR we are 1.15x faster" note).
        const double ours_dcsr = timed_ms(comm, [&] {
            auto U = core::build_update_matrix(grid, n, n, mine);
        });
        const double combblas = timed_ms(comm, [&] {
            baseline::StaticRebuildMatrix<double> m(grid, n, n);
            m.construct<sparse::PlusTimes<double>>(mine);
        });
        const double ctf = timed_ms(comm, [&] {
            baseline::SortedTupleMatrix<double> m(grid, n, n);
            m.construct<sparse::PlusTimes<double>>(mine);
        });
        const double petsc = timed_ms(comm, [&] {
            baseline::PreallocCsrMatrix<double> m(grid, n, n);
            m.construct<sparse::PlusTimes<double>>(mine);
        });
        if (comm.rank() == 0)
            row = {ours, ours_dcsr, combblas, ctf, petsc};
    });
    return row;
}

}  // namespace

int main() {
    print_header("Figure 2/3: matrix construction, relative to CombBLAS",
                 "Fig. 2");
    std::printf("%-12s | %8s %9s %9s %7s %7s | %s\n", "Instance", "ours",
                "ours-dcsr", "CombBLAS", "CTF", "PETSc",
                "rel. perf (CombBLAS/ours)");
    double geo = 1.0;
    int count = 0;
    for (const auto& inst : instances()) {
        const Row r = run_instance(inst);
        const double rel = r.combblas_ms / r.ours_ms;
        geo *= rel;
        ++count;
        std::printf("%-12s | %6.1fms %7.1fms %7.1fms %5.1fms %5.1fms | %.2fx\n",
                    inst.name, r.ours_ms, r.ours_dcsr_ms, r.combblas_ms,
                    r.ctf_ms, r.petsc_ms, rel);
        JsonRecord rec("bench_fig2_construction");
        rec.field("instance", inst.name)
            .field("ours_ms", r.ours_ms)
            .field("ours_dcsr_ms", r.ours_dcsr_ms)
            .field("combblas_ms", r.combblas_ms)
            .field("ctf_ms", r.ctf_ms)
            .field("petsc_ms", r.petsc_ms)
            .field("rel_combblas", rel);
        json_record(rec);
    }
    std::printf("\ngeometric-mean speedup over CombBLAS-like baseline: %.2fx\n",
                std::pow(geo, 1.0 / count));
    std::printf("paper: 1.68x-2.59x faster than CombBLAS on every instance.\n");
    return 0;
}
