// Figure 4: mean insertion performance vs batch size.
//
// Protocol (Section VII-B b): insert half the non-zeros up front (untimed),
// then stream batches drawn from the remaining half. Batch size is per rank.
// Paper result: ours beats CombBLAS 3.63x (largest batches) to 227.68x
// (smallest); CTF >= 55.15x slower, PETSc >= 460.83x slower. The speedup
// *decreases* with batch size because the competitors' full rebuild
// amortizes better over denser update matrices.
#include "baseline/static_rebuild.hpp"
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;
constexpr int kBatches = 4;
// Scaled from the paper's 1024..131072 (the ~2^12 instance scale-down
// shifts the sweep window down by ~2^5).
const std::size_t kBatchSizes[] = {256, 512, 1024, 2048, 4096, 8192};

struct Times {
    double ours = 0, ours_async = 0, combblas = 0, ctf = 0, petsc = 0;
};

Times run_one(const Instance& inst, std::size_t batch_size) {
    Times t;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << inst.scale;
        EdgeStream stream(instance_edges(inst, comm.rank(), kRanks, 21));

        // Two copies of our matrix so the sync and async comm paths apply the
        // identical batch stream to identical state.
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, stream.initial);
        auto A_async = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, stream.initial);
        baseline::StaticRebuildMatrix<double> combblas(grid, n, n);
        combblas.construct<sparse::PlusTimes<double>>(stream.initial);
        baseline::SortedTupleMatrix<double> ctf(grid, n, n);
        ctf.construct<sparse::PlusTimes<double>>(stream.initial);
        baseline::PreallocCsrMatrix<double> petsc(grid, n, n);
        petsc.construct<sparse::PlusTimes<double>>(stream.initial);

        double ours = 0, ours_async = 0, cb = 0, ct = 0, pe = 0;
        for (int b = 0; b < kBatches; ++b) {
            auto batch = stream.batch(static_cast<std::size_t>(b), batch_size);
            ours += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::add_update<sparse::PlusTimes<double>>(A, U);
            });
            ours_async += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(
                    grid, n, n, batch, core::RedistMode::TwoPhase,
                    par::CommMode::Async);
                core::add_update<sparse::PlusTimes<double>>(A_async, U);
            });
            cb += timed_ms(comm, [&] {
                combblas.insert_batch<sparse::PlusTimes<double>>(batch);
            });
            ct += timed_ms(comm, [&] {
                ctf.insert_batch<sparse::PlusTimes<double>>(batch);
            });
            pe += timed_ms(comm, [&] {
                petsc.insert_batch<sparse::PlusTimes<double>>(batch);
            });
        }
        if (comm.rank() == 0)
            t = {ours / kBatches, ours_async / kBatches, cb / kBatches,
                 ct / kBatches, pe / kBatches};
    });
    return t;
}

}  // namespace

int main() {
    print_header("Figure 4: mean insertion time vs batch size (per rank)",
                 "Fig. 4");
    std::printf("%-10s | %9s %9s %9s %9s %9s | %9s %7s %7s\n", "batch",
                "ours", "async", "CombBLAS", "CTF", "PETSc", "vs CombB",
                "vs CTF", "vs PETSc");
    double gain_sum = 0;
    int gain_count = 0;
    for (std::size_t bs : kBatchSizes) {
        Times mean;
        int count = 0;
        for (const auto& inst : representative_instances()) {
            const Times t = run_one(inst, bs);
            mean.ours += t.ours;
            mean.ours_async += t.ours_async;
            mean.combblas += t.combblas;
            mean.ctf += t.ctf;
            mean.petsc += t.petsc;
            ++count;
        }
        mean.ours /= count;
        mean.ours_async /= count;
        mean.combblas /= count;
        mean.ctf /= count;
        mean.petsc /= count;
        if (mean.ours_async > 0) {
            gain_sum += mean.ours / mean.ours_async;
            ++gain_count;
        }
        std::printf(
            "%-10zu | %7.2fms %7.2fms %7.2fms %7.2fms %7.2fms | %8.1fx %6.1fx %6.1fx\n",
            bs, mean.ours, mean.ours_async, mean.combblas, mean.ctf,
            mean.petsc, mean.combblas / mean.ours, mean.ctf / mean.ours,
            mean.petsc / mean.ours);
        // One record per comm mode so downstream tooling can group by the
        // comm_mode field; the baselines ride on the sync record.
        JsonRecord rec("bench_fig4_insertions");
        rec.field("batch", bs)
            .field("comm_mode", "sync")
            .field("ours_ms", mean.ours)
            .field("combblas_ms", mean.combblas)
            .field("ctf_ms", mean.ctf)
            .field("petsc_ms", mean.petsc);
        json_record(rec);
        JsonRecord arec("bench_fig4_insertions");
        arec.field("batch", bs)
            .field("comm_mode", "async")
            .field("ours_ms", mean.ours_async);
        json_record(arec);
    }
    if (gain_count > 0)
        std::printf(
            "\noverlap gain: async redistribution is %.2fx sync on average "
            "over %d batch sizes\n",
            gain_sum / gain_count, gain_count);
    std::printf(
        "\npaper: speedup over CombBLAS falls from 227.68x (batch 1024) to\n"
        "3.63x (batch 131072); the same monotone decrease should appear above\n"
        "(absolute factors differ: the stand-ins are ~2^12 smaller, so the\n"
        "rebuild penalty — proportional to nnz/batch — is correspondingly\n"
        "smaller at equal batch sizes).\n");
    return 0;
}
