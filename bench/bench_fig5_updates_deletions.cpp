// Figure 5a/5b: mean update (MERGE) and deletion (MASK) performance vs batch
// size.
//
// Protocol (Section VII-B c): the full adjacency matrix is inserted up
// front; update/deletion batches are drawn from *existing* non-zeros.
// PETSc supports no efficient masking, so it is excluded from deletions (as
// in the paper). Paper result: ours 3.75x-263.57x faster than CombBLAS for
// updates, 4.86x-393.85x for deletions.
#include "baseline/static_rebuild.hpp"
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;
constexpr int kBatches = 4;
const std::size_t kBatchSizes[] = {256, 512, 1024, 2048, 4096, 8192};

struct Times {
    double upd_ours = 0, upd_cb = 0, upd_ctf = 0, upd_petsc = 0;
    double del_ours = 0, del_cb = 0, del_ctf = 0;
};

Times run_one(const Instance& inst, std::size_t batch_size) {
    Times t;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << inst.scale;
        auto mine = instance_edges(inst, comm.rank(), kRanks, 31);

        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine);
        baseline::StaticRebuildMatrix<double> combblas(grid, n, n);
        combblas.construct<sparse::PlusTimes<double>>(mine);
        baseline::SortedTupleMatrix<double> ctf(grid, n, n);
        ctf.construct<sparse::PlusTimes<double>>(mine);
        baseline::PreallocCsrMatrix<double> petsc(grid, n, n);
        petsc.construct<sparse::PlusTimes<double>>(mine);

        // Batches of existing coordinates (each rank draws from its own
        // original slice — existing by construction).
        std::mt19937_64 rng(71 + static_cast<std::uint64_t>(comm.rank()));
        auto draw = [&](double value) {
            std::vector<Triple<double>> batch;
            batch.reserve(batch_size);
            for (std::size_t x = 0; x < batch_size; ++x) {
                const auto& e = mine[rng() % mine.size()];
                batch.push_back({e.row, e.col, value});
            }
            return batch;
        };

        Times local;
        for (int b = 0; b < kBatches; ++b) {
            auto upd = draw(3.5);
            local.upd_ours += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(grid, n, n, upd);
                core::merge_update(A, U);
            });
            local.upd_cb += timed_ms(comm, [&] { combblas.update_batch(upd); });
            local.upd_ctf += timed_ms(comm, [&] { ctf.update_batch(upd); });
            local.upd_petsc += timed_ms(comm, [&] { petsc.update_batch(upd); });

            auto del = draw(0.0);
            local.del_ours += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(grid, n, n, del);
                core::mask_delete(A, U);
            });
            local.del_cb += timed_ms(comm, [&] { combblas.delete_batch(del); });
            local.del_ctf += timed_ms(comm, [&] { ctf.delete_batch(del); });
            // Reinsert the deleted entries so later batches find them.
            auto U = core::build_update_matrix(grid, n, n, del);
            core::add_update<sparse::PlusTimes<double>>(A, U);
            combblas.insert_batch<sparse::PlusTimes<double>>(del);
            ctf.insert_batch<sparse::PlusTimes<double>>(del);
        }
        if (comm.rank() == 0) {
            t = local;
            const double k = kBatches;
            t.upd_ours /= k; t.upd_cb /= k; t.upd_ctf /= k; t.upd_petsc /= k;
            t.del_ours /= k; t.del_cb /= k; t.del_ctf /= k;
        }
    });
    return t;
}

}  // namespace

int main() {
    print_header("Figure 5: mean update (a) and deletion (b) time vs batch size",
                 "Fig. 5a/5b");
    std::printf("-- (a) value updates (MERGE) --\n");
    std::printf("%-8s | %9s %9s %9s %9s | %9s\n", "batch", "ours", "CombBLAS",
                "CTF", "PETSc", "vs CombB");
    std::vector<Times> per_batch;
    for (std::size_t bs : kBatchSizes) {
        Times mean;
        int count = 0;
        for (const auto& inst : representative_instances()) {
            const Times t = run_one(inst, bs);
            mean.upd_ours += t.upd_ours; mean.upd_cb += t.upd_cb;
            mean.upd_ctf += t.upd_ctf; mean.upd_petsc += t.upd_petsc;
            mean.del_ours += t.del_ours; mean.del_cb += t.del_cb;
            mean.del_ctf += t.del_ctf;
            ++count;
        }
        const double k = count;
        mean.upd_ours /= k; mean.upd_cb /= k; mean.upd_ctf /= k;
        mean.upd_petsc /= k; mean.del_ours /= k; mean.del_cb /= k;
        mean.del_ctf /= k;
        per_batch.push_back(mean);
        std::printf("%-8zu | %7.2fms %7.2fms %7.2fms %7.2fms | %8.1fx\n", bs,
                    mean.upd_ours, mean.upd_cb, mean.upd_ctf, mean.upd_petsc,
                    mean.upd_cb / mean.upd_ours);
        JsonRecord rec("bench_fig5_updates_deletions");
        rec.field("batch", bs)
            .field("update_ours_ms", mean.upd_ours)
            .field("update_combblas_ms", mean.upd_cb)
            .field("update_ctf_ms", mean.upd_ctf)
            .field("update_petsc_ms", mean.upd_petsc)
            .field("delete_ours_ms", mean.del_ours)
            .field("delete_combblas_ms", mean.del_cb)
            .field("delete_ctf_ms", mean.del_ctf);
        json_record(rec);
    }
    std::printf("\n-- (b) deletions (MASK); PETSc excluded as in the paper --\n");
    std::printf("%-8s | %9s %9s %9s | %9s\n", "batch", "ours", "CombBLAS",
                "CTF", "vs CombB");
    for (std::size_t i = 0; i < per_batch.size(); ++i) {
        const auto& m = per_batch[i];
        std::printf("%-8zu | %7.2fms %7.2fms %7.2fms | %8.1fx\n",
                    kBatchSizes[i], m.del_ours, m.del_cb, m.del_ctf,
                    m.del_cb / m.del_ours);
    }
    std::printf(
        "\npaper: updates 3.75x-263.57x and deletions 4.86x-393.85x faster\n"
        "than CombBLAS, with the speedup shrinking as batches grow.\n");
    return 0;
}
