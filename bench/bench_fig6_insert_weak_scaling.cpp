// Figure 6: weak scalability of insertions over compute-node counts.
//
// Paper setup: 1x4, 4x4, 16x4 MPI processes (we scale the process count
// p in {1, 4, 16}), fixed batch size, fixed insertions per rank; metric is
// time per inserted non-zero.
//
// NOTE on this host: ranks are threads on a single core, so wall time per
// rank *cannot* drop with p here; the table therefore also reports the
// per-rank communication volume and the total alltoall traffic, which are
// the quantities whose scaling the paper's figure demonstrates (they must
// stay ~flat per rank as p grows). See docs/ARCHITECTURE.md on why volume,
// not wall time, is the measured quantity of this runtime.
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr std::size_t kBatchSize = 4096;  // per rank (scaled from 131072)
constexpr std::size_t kInsertsPerRank = 32'768;  // scaled from 1.3M

struct Row {
    double ns_per_nnz;
    double bytes_per_rank;
};

Row run_p(int p) {
    Row row{};
    par::run_world(p, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const int scale = 13;
        const index_t n = index_t{1} << scale;
        auto mine = graph::rmat_edges(scale, kInsertsPerRank,
                                      5 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 99);
        perm.apply(mine);
        // Half up front, half streamed.
        const std::size_t half = mine.size() / 2;
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n,
            std::vector<Triple<double>>(mine.begin(), mine.begin() + half));

        reset_stats(comm);
        double total_ms = 0;
        std::size_t inserted = 0;
        for (std::size_t off = half; off < mine.size(); off += kBatchSize) {
            const std::size_t end = std::min(off + kBatchSize, mine.size());
            std::vector<Triple<double>> batch(mine.begin() + off,
                                              mine.begin() + end);
            inserted += batch.size();
            total_ms += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::add_update<sparse::PlusTimes<double>>(A, U);
            });
        }
        comm.barrier();
        if (comm.rank() == 0) {
            const auto s = comm.stats().snapshot();
            row.ns_per_nnz = total_ms * 1e6 /
                             static_cast<double>(inserted * static_cast<std::size_t>(p));
            row.bytes_per_rank =
                static_cast<double>(s.total_bytes()) / static_cast<double>(p);
        }
    });
    return row;
}

}  // namespace

int main() {
    print_header("Figure 6: weak scaling of insertions", "Fig. 6");
    std::printf("%-8s | %14s | %18s\n", "ranks", "time per nnz", "comm bytes/rank");
    for (int p : {1, 4, 16}) {
        const Row r = run_p(p);
        std::printf("%-8d | %11.1f ns | %15.0f B\n", p, r.ns_per_nnz,
                    r.bytes_per_rank);
        JsonRecord rec("bench_fig6_insert_weak_scaling");
        rec.field("ranks", p)
            .field("ns_per_nnz", r.ns_per_nnz)
            .field("comm_bytes_per_rank", r.bytes_per_rank);
        json_record(rec);
    }
    std::printf(
        "\npaper: time per non-zero *decreases* with more compute nodes. On\n"
        "this single-core host wall time cannot improve with p (ranks are\n"
        "time-sliced threads); the per-rank communication volume staying\n"
        "near-flat is the scalable-algorithm signal (two-phase exchange\n"
        "touches only sqrt(p) peers; each rank sends only its own tuples).\n");
    return 0;
}
