// Figure 7: breakdown of insertion running time into the paper's phases
// (redistribution sort, redistribution communication, memory management,
// local construction, local addition), per rank count.
//
// Paper result: all phases scale with node count and local work dominates
// communication.
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr std::size_t kBatchSize = 4096;
constexpr std::size_t kInsertsPerRank = 32'768;

const par::Phase kPhases[] = {
    par::Phase::RedistSort, par::Phase::RedistComm, par::Phase::MemManagement,
    par::Phase::LocalConstruct, par::Phase::LocalAddition,
};

std::vector<double> run_p(int p) {
    par::Profiler::reset();
    par::Profiler::set_enabled(true);
    std::size_t total_inserted = 0;
    par::run_world(p, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const int scale = 13;
        const index_t n = index_t{1} << scale;
        auto mine = graph::rmat_edges(scale, kInsertsPerRank,
                                      15 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 7);
        perm.apply(mine);
        const std::size_t half = mine.size() / 2;
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n,
            std::vector<Triple<double>>(mine.begin(), mine.begin() + half));
        // Only the streamed batches are profiled.
        par::Profiler::reset();
        for (std::size_t off = half; off < mine.size(); off += kBatchSize) {
            const std::size_t end = std::min(off + kBatchSize, mine.size());
            std::vector<Triple<double>> batch(mine.begin() + off,
                                              mine.begin() + end);
            auto U = core::build_update_matrix(grid, n, n, batch);
            core::add_update<sparse::PlusTimes<double>>(A, U);
        }
        if (comm.rank() == 0)
            total_inserted = (kInsertsPerRank - half) * static_cast<std::size_t>(p);
    });
    par::Profiler::set_enabled(false);
    std::vector<double> ns_per_nnz;
    for (auto ph : kPhases)
        ns_per_nnz.push_back(par::Profiler::total_seconds(ph) * 1e9 /
                             static_cast<double>(total_inserted));
    return ns_per_nnz;
}

}  // namespace

int main() {
    print_header("Figure 7: breakdown of insertion running time (ns per nnz)",
                 "Fig. 7");
    std::printf("%-8s |", "ranks");
    for (auto ph : kPhases)
        std::printf(" %16s", std::string(par::phase_name(ph)).c_str());
    std::printf("\n");
    for (int p : {1, 4, 16}) {
        auto row = run_p(p);
        std::printf("%-8d |", p);
        for (double v : row) std::printf(" %13.1f ns", v);
        std::printf("\n");
        JsonRecord rec("bench_fig7_insert_breakdown");
        rec.field("ranks", p);
        for (std::size_t k = 0; k < row.size(); ++k)
            rec.field(std::string(par::phase_name(kPhases[k])).c_str(),
                      row[k]);
        json_record(rec);
    }
    std::printf(
        "\npaper: local operations dominate communication; every phase's cost\n"
        "per non-zero stays bounded as nodes are added. (Phase times here sum\n"
        "across all rank-threads of the single-core host.)\n");
    return 0;
}
