// Figure 8: parallel scalability of insertions on synthetic R-MAT graphs
// with Graph500 parameters.
//  (a) strong scaling: a fixed 2^20 total insertions split across p ranks
//      (paper: 2^30; ~2^10 scale-down);
//  (b) weak scaling: 2^16 insertions per rank (paper: 2^28).
// Batch size fixed (scaled from 131072); a global index permutation balances
// load as in the paper.
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr std::size_t kBatchSize = 4096;
constexpr int kScale = 14;

struct Row {
    double total_ms;
    double ns_per_nnz;
};

Row run(int p, std::size_t inserts_per_rank) {
    Row row{};
    par::run_world(p, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto mine = graph::rmat_edges(kScale, inserts_per_rank,
                                      41 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 3);
        perm.apply(mine);
        core::DistDynamicMatrix<double> A(grid, n, n);
        double total_ms = 0;
        for (std::size_t off = 0; off < mine.size(); off += kBatchSize) {
            const std::size_t end = std::min(off + kBatchSize, mine.size());
            std::vector<Triple<double>> batch(mine.begin() + off,
                                              mine.begin() + end);
            total_ms += timed_ms(comm, [&] {
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::add_update<sparse::PlusTimes<double>>(A, U);
            });
        }
        if (comm.rank() == 0) {
            row.total_ms = total_ms;
            row.ns_per_nnz =
                total_ms * 1e6 /
                static_cast<double>(inserts_per_rank * static_cast<std::size_t>(p));
        }
    });
    return row;
}

}  // namespace

int main() {
    print_header("Figure 8: scalability of insertions on R-MAT (Graph500 params)",
                 "Fig. 8a/8b");
    std::printf("-- (a) strong scaling: 2^20 total insertions --\n");
    std::printf("%-8s | %10s | %10s\n", "ranks", "total", "speedup");
    double base_ms = 0;
    for (int p : {1, 4, 16}) {
        const Row r = run(p, (std::size_t{1} << 20) / static_cast<std::size_t>(p));
        if (p == 1) base_ms = r.total_ms;
        std::printf("%-8d | %8.1fms | %9.2fx\n", p, r.total_ms,
                    base_ms / r.total_ms);
        JsonRecord rec("bench_fig8_rmat_scaling");
        rec.field("mode", "strong")
            .field("ranks", p)
            .field("total_ms", r.total_ms)
            .field("speedup", base_ms / r.total_ms);
        json_record(rec);
    }
    std::printf("\n-- (b) weak scaling: 2^16 insertions per rank --\n");
    std::printf("%-8s | %10s | %14s\n", "ranks", "total", "time per nnz");
    for (int p : {1, 4, 16}) {
        const Row r = run(p, std::size_t{1} << 16);
        std::printf("%-8d | %8.1fms | %11.1f ns\n", p, r.total_ms, r.ns_per_nnz);
        JsonRecord rec("bench_fig8_rmat_scaling");
        rec.field("mode", "weak")
            .field("ranks", p)
            .field("total_ms", r.total_ms)
            .field("ns_per_nnz", r.ns_per_nnz);
        json_record(rec);
    }
    std::printf(
        "\npaper: strong-scaling speedup 10.85x at 16 nodes; weak-scaling time\n"
        "per non-zero drops with node count. On this single-core host all\n"
        "ranks share one CPU, so speedup > 1 is not attainable in wall time —\n"
        "the strong-scaling column instead verifies that total work does not\n"
        "blow up with p (the algorithmic prerequisite); run on real MPI for\n"
        "the wall-clock figure.\n");
    return 0;
}
