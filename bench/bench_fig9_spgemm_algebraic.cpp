// Figure 9: mean performance of dynamic SpGEMM, algebraic case.
//
// Protocol (Section VII-C a): repeatedly compute C' = A'B over (+,*), where
// A' starts empty and grows by per-rank insertion batches drawn from the
// adjacency matrix; B is the full (static) adjacency matrix. The CombBLAS
// strategy computes A*B with static sparse SUMMA — which must broadcast
// blocks of the *large* B — and merges the result into its static C (a
// rebuild); a naive framework recomputes A'B entirely.
//
// The batch sweep keeps the paper's nnz(B) / (batch * p) ratio (~1000-8000):
// the dynamic algorithm's advantage is exactly the hypersparsity gap between
// the update and the operands, so the ratio — not the absolute batch — is
// what transfers across the ~2^12 instance scale-down.
//
// Paper result: ours is 3.41x (batch 8192) to 6.18x (batch 1024) faster than
// CombBLAS, >= 11.73x than CTF, >= 5.2x than PETSc; the speedup decreases
// with batch size as update matrices lose hypersparsity.
#include <algorithm>

#include "baseline/static_rebuild.hpp"
#include "bench_common.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"

using namespace dsg;
using namespace dsg::bench;

namespace {

constexpr int kRanks = 4;
constexpr int kBatches = 3;
const std::size_t kBatchSizes[] = {64, 256, 1024, 4096};

/// The static-C merge a CombBLAS-like framework performs per batch: sort the
/// delta and merge-rebuild the whole sorted array (local; the SpGEMM output
/// is already distributed correctly).
void merge_delta(std::vector<Triple<double>>& store,
                 std::vector<Triple<double>> delta) {
    auto less = [](const Triple<double>& a, const Triple<double>& b) {
        return std::tie(a.row, a.col) < std::tie(b.row, b.col);
    };
    std::sort(delta.begin(), delta.end(), less);
    std::vector<Triple<double>> merged(store.size() + delta.size());
    std::merge(store.begin(), store.end(), delta.begin(), delta.end(),
               merged.begin(), less);
    std::size_t w = 0;
    for (std::size_t r = 0; r < merged.size(); ++r) {
        if (w > 0 && merged[w - 1].row == merged[r].row &&
            merged[w - 1].col == merged[r].col) {
            merged[w - 1].value += merged[r].value;
        } else {
            merged[w++] = merged[r];
        }
    }
    merged.resize(w);
    store = std::move(merged);
}

struct Times {
    double ours = 0, combblas = 0, recompute = 0;
    double ours_bytes = 0, combblas_bytes = 0;
};

Times run_one(const Instance& inst, std::size_t batch_size) {
    Times t;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << inst.scale;
        auto mine = instance_edges(inst, comm.rank(), kRanks, 51);
        auto B = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine);

        core::DistDynamicMatrix<double> A(grid, n, n);
        core::DistDynamicMatrix<double> C(grid, n, n);
        core::DistDynamicMatrix<double> A_cb(grid, n, n);
        std::vector<Triple<double>> C_cb;  // CombBLAS's static sorted C block

        std::mt19937_64 rng(61 + static_cast<std::uint64_t>(comm.rank()));
        double ours = 0, cb = 0, rec = 0;
        std::uint64_t ours_b = 0, cb_b = 0;
        for (int b = 0; b < kBatches; ++b) {
            std::vector<Triple<double>> batch;
            batch.reserve(batch_size);
            for (std::size_t x = 0; x < batch_size; ++x)
                batch.push_back(mine[rng() % mine.size()]);

            // -- ours: C += A* B (Algorithm 1) --------------------------------
            reset_stats(comm);
            ours += timed_ms(comm, [&] {
                auto Astar = core::build_update_matrix(grid, n, n, batch);
                core::DistDcsr<double> Bstar(grid, n, n);
                core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
                    C, A, Astar, B, Bstar);
                core::add_update<sparse::PlusTimes<double>>(A, Astar);
            });
            comm.barrier();
            ours_b += comm.stats().snapshot().total_bytes();

            // -- CombBLAS-like: SUMMA(A*, B), local merge into static C -------
            reset_stats(comm);
            cb += timed_ms(comm, [&] {
                auto Astar_dyn =
                    core::build_dynamic_matrix<sparse::PlusTimes<double>>(
                        grid, n, n, batch);
                auto Cpart = core::summa_multiply<sparse::PlusTimes<double>>(
                    Astar_dyn, B);
                merge_delta(C_cb, Cpart.local().to_triples());
                auto U = core::build_update_matrix(grid, n, n, batch);
                core::add_update<sparse::PlusTimes<double>>(A_cb, U);
            });
            comm.barrier();
            cb_b += comm.stats().snapshot().total_bytes();

            // -- naive framework: full recompute of A'B -----------------------
            rec += timed_ms(comm, [&] {
                auto C2 = core::summa_multiply<sparse::PlusTimes<double>>(A, B);
            });
        }
        if (comm.rank() == 0) {
            t.ours = ours / kBatches;
            t.combblas = cb / kBatches;
            t.recompute = rec / kBatches;
            t.ours_bytes = static_cast<double>(ours_b) / kBatches;
            t.combblas_bytes = static_cast<double>(cb_b) / kBatches;
        }
    });
    return t;
}

}  // namespace

int main() {
    print_header("Figure 9: dynamic SpGEMM, algebraic case ((+,*) semiring)",
                 "Fig. 9");
    const auto& all = instances();
    const std::vector<Instance> insts = {all[10], all[11]};  // largest two
    std::printf("%-8s | %9s %10s %11s | %9s | %s\n", "batch", "ours",
                "CombBLAS", "recompute", "vs CombB", "comm KB ours/CombBLAS");
    for (std::size_t bs : kBatchSizes) {
        Times mean;
        int count = 0;
        for (const auto& inst : insts) {
            const Times t = run_one(inst, bs);
            mean.ours += t.ours;
            mean.combblas += t.combblas;
            mean.recompute += t.recompute;
            mean.ours_bytes += t.ours_bytes;
            mean.combblas_bytes += t.combblas_bytes;
            ++count;
        }
        const double k = count;
        std::printf("%-8zu | %7.2fms %8.2fms %9.2fms | %8.2fx | %.0f / %.0f\n",
                    bs, mean.ours / k, mean.combblas / k, mean.recompute / k,
                    mean.combblas / mean.ours, mean.ours_bytes / k / 1024,
                    mean.combblas_bytes / k / 1024);
        JsonRecord rec("bench_fig9_spgemm_algebraic");
        rec.field("batch", bs)
            .field("ours_ms", mean.ours / k)
            .field("combblas_ms", mean.combblas / k)
            .field("recompute_ms", mean.recompute / k)
            .field("ours_comm_bytes", mean.ours_bytes / k)
            .field("combblas_comm_bytes", mean.combblas_bytes / k);
        json_record(rec);
    }
    std::printf(
        "\npaper: 3.41x-6.18x faster than CombBLAS (best competitor), with the\n"
        "speedup decreasing as batches grow; the advantage comes from not\n"
        "broadcasting blocks of the large static B (compare the byte columns).\n"
        "CTF/PETSc are slower than CombBLAS by constant factors of their\n"
        "implementations, which this harness does not model.\n");
    return 0;
}
