// Micro-benchmarks (google-benchmark) of the local kernels behind the
// distributed algorithms: DHB dynamic-matrix operations, the open-addressing
// hash map, counting sort vs comparison sort (the redistribution ablation at
// kernel level), and local Gustavson SpGEMM.
#include <benchmark/benchmark.h>

#include <random>
#include <unordered_map>

#include "sparse/coo.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/local_spgemm.hpp"

using namespace dsg::sparse;

namespace {

std::vector<Triple<double>> random_triples(std::size_t count, index_t n,
                                           std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<Triple<double>> ts;
    ts.reserve(count);
    for (std::size_t x = 0; x < count; ++x)
        ts.push_back({static_cast<index_t>(rng() % n),
                      static_cast<index_t>(rng() % n), 1.0});
    return ts;
}

void BM_DynamicMatrixInsert(benchmark::State& state) {
    const auto n = static_cast<index_t>(state.range(0));
    auto ts = random_triples(1 << 16, n, 1);
    for (auto _ : state) {
        DynamicMatrix<double> m(n, n);
        for (const auto& t : ts) m.insert_or_assign(t.row, t.col, t.value);
        benchmark::DoNotOptimize(m.nnz());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(ts.size()));
}
BENCHMARK(BM_DynamicMatrixInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_DynamicMatrixFind(benchmark::State& state) {
    const index_t n = 1 << 12;
    auto ts = random_triples(1 << 16, n, 2);
    DynamicMatrix<double> m(n, n);
    for (const auto& t : ts) m.insert_or_assign(t.row, t.col, t.value);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& t = ts[i++ % ts.size()];
        benchmark::DoNotOptimize(m.find(t.row, t.col));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicMatrixFind);

void BM_DynamicMatrixEraseInsert(benchmark::State& state) {
    const index_t n = 1 << 12;
    auto ts = random_triples(1 << 15, n, 3);
    DynamicMatrix<double> m(n, n);
    for (const auto& t : ts) m.insert_or_assign(t.row, t.col, t.value);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& t = ts[i++ % ts.size()];
        m.erase(t.row, t.col);
        m.insert_or_assign(t.row, t.col, t.value);
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_DynamicMatrixEraseInsert);

void BM_FlatMapInsert(benchmark::State& state) {
    std::mt19937_64 rng(4);
    std::vector<index_t> keys(1 << 16);
    for (auto& k : keys) k = static_cast<index_t>(rng() % (1 << 20));
    for (auto _ : state) {
        FlatMap<std::uint32_t> m;
        for (auto k : keys) m.get_or_insert(k, 0);
        benchmark::DoNotOptimize(m.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapInsert);

void BM_StdUnorderedMapInsert(benchmark::State& state) {
    std::mt19937_64 rng(4);
    std::vector<index_t> keys(1 << 16);
    for (auto& k : keys) k = static_cast<index_t>(rng() % (1 << 20));
    for (auto _ : state) {
        std::unordered_map<index_t, std::uint32_t> m;
        for (auto k : keys) m.try_emplace(k, 0);
        benchmark::DoNotOptimize(m.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_StdUnorderedMapInsert);

void BM_CountingSortByOwner(benchmark::State& state) {
    const int buckets = static_cast<int>(state.range(0));
    auto ts = random_triples(1 << 16, 1 << 16, 5);
    for (auto _ : state) {
        auto copy = ts;
        auto offsets = counting_sort(
            copy, static_cast<std::size_t>(buckets), [&](const Triple<double>& t) {
                return static_cast<std::size_t>(t.row) % buckets;
            });
        benchmark::DoNotOptimize(offsets.back());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(ts.size()));
}
BENCHMARK(BM_CountingSortByOwner)->Arg(4)->Arg(16);

void BM_ComparisonSortByOwner(benchmark::State& state) {
    const int buckets = static_cast<int>(state.range(0));
    auto ts = random_triples(1 << 16, 1 << 16, 5);
    for (auto _ : state) {
        auto copy = ts;
        std::sort(copy.begin(), copy.end(),
                  [&](const Triple<double>& a, const Triple<double>& b) {
                      return static_cast<int>(a.row) % buckets <
                             static_cast<int>(b.row) % buckets;
                  });
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(ts.size()));
}
BENCHMARK(BM_ComparisonSortByOwner)->Arg(4)->Arg(16);

void BM_LocalSpgemm(benchmark::State& state) {
    const index_t n = static_cast<index_t>(state.range(0));
    auto ta = random_triples(static_cast<std::size_t>(n) * 8, n, 6);
    auto tb = random_triples(static_cast<std::size_t>(n) * 8, n, 7);
    combine_duplicates<PlusTimes<double>>(ta);
    combine_duplicates<PlusTimes<double>>(tb);
    auto a = Dcsr<double>::from_row_grouped(n, n, ta);
    DynamicMatrix<double> b(n, n);
    for (const auto& t : tb) b.insert_or_assign(t.row, t.col, t.value);
    for (auto _ : state) {
        auto c = spgemm<PlusTimes<double>>(n, n, as_left(a), as_right(b));
        benchmark::DoNotOptimize(c.nnz());
    }
}
BENCHMARK(BM_LocalSpgemm)->Arg(1 << 10)->Arg(1 << 12);

void BM_LocalSpgemmHypersparseLeft(benchmark::State& state) {
    // The Algorithm-1 shape: tiny A* against a large B'.
    const index_t n = 1 << 14;
    auto ta = random_triples(static_cast<std::size_t>(state.range(0)), n, 8);
    auto tb = random_triples(1 << 17, n, 9);
    combine_duplicates<PlusTimes<double>>(ta);
    combine_duplicates<PlusTimes<double>>(tb);
    auto a = Dcsr<double>::from_row_grouped(n, n, ta);
    DynamicMatrix<double> b(n, n);
    for (const auto& t : tb) b.insert_or_assign(t.row, t.col, t.value);
    for (auto _ : state) {
        auto c = spgemm<PlusTimes<double>>(n, n, as_left(a), as_right(b));
        benchmark::DoNotOptimize(c.nnz());
    }
}
BENCHMARK(BM_LocalSpgemmHypersparseLeft)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
