// Query-serving benchmark (src/serve/): the serving tier under ingestion.
//
// Not a paper figure — this measures the subsystem layered on top of the
// streaming engine. Three sections:
//
//  1. Serving sweep: query mix x snapshot cadence x result cache on/off,
//     under the serving-read-heavy scenario (zipf-skewed read keys, >= 9:1
//     read:write). Reported per cell: ingest throughput, queries served,
//     query p50/p95 latency, cache hit rate, snapshots published.
//  2. Reader isolation: epoch-application throughput with 8 concurrent
//     SLOW analytical readers — paced, sleeping readers, so on this
//     single-core host the comparison isolates the locking protocol rather
//     than CPU theft — reading (a) nothing (baseline), (b) published
//     store snapshots (no engine lock), (c) the engine's with_snapshot
//     reader lock (the pre-serve read path). The acceptance bar of the
//     serving subsystem is (b) within 10% of (a) (best of 3 runs — the
//     oversubscribed rank threads make single runs noise, as in
//     bench_recovery). The coupling cuts both ways and (c) shows the other
//     direction too: with_snapshot readers contend with ingestion for one
//     lock, so under a saturated writer they complete FAR fewer reads than
//     snapshot readers in the same wall time — compare the reads column.
//  3. Cache gate (blocking, exit 1 on failure): cached-read p50 must be
//     >= 10x faster than uncached evaluation of the same k-hop queries
//     against the same snapshot.
//
// With DSG_BENCH_JSON=<path> every cell/mode is one JSON record
// (mode = "sweep" / "isolation" / "cache-gate"); DSG_BENCH_SCALE shrinks
// the per-producer write budgets (see docs/BENCHMARKS.md).
#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "bench_common.hpp"
#include "serve/query_executor.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using namespace dsg::bench;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr int kScale = 12;     // 4096 vertices
constexpr std::size_t kInitialEdges = 20'000;

std::size_t writes_per_producer() {
    return std::max<std::size_t>(
        250, static_cast<std::size_t>(2'000 * bench_scale()));
}

double percentile(std::vector<double>& v, double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const auto k = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(k, v.size() - 1)];
}

/// Builds this rank's slice of the initial R-MAT load.
std::vector<Triple<double>> initial_slice(int rank) {
    auto mine = graph::rmat_edges(kScale, kInitialEdges / kRanks,
                                  7 + static_cast<std::uint64_t>(rank));
    sparse::IndexPermutation perm(index_t{1} << kScale, 4242);
    perm.apply(mine);
    return mine;
}

// ---------------------------------------------------------------------------
// 1. Serving sweep: query mix x snapshot cadence x cache on/off
// ---------------------------------------------------------------------------

struct Mix {
    const char* name;
    // Rotates a query for the k-th read at (row, col).
    serve::Query (*make)(std::uint64_t k, index_t row, index_t col);
};

const Mix kMixes[] = {
    {"point",
     [](std::uint64_t k, index_t row, index_t col) {
         return k % 2 == 0
                    ? serve::Query{serve::QueryKind::EdgeExists, row, col, 1, ""}
                    : serve::Query{serve::QueryKind::Degree, row, 0, 1, ""};
     }},
    {"k-hop",
     [](std::uint64_t, index_t row, index_t) {
         return serve::Query{serve::QueryKind::KHop, row, 0, 2, ""};
     }},
    {"mixed",
     [](std::uint64_t k, index_t row, index_t col) {
         switch (k % 4) {
             case 0:
                 return serve::Query{serve::QueryKind::EdgeExists, row, col,
                                     1, ""};
             case 1:
                 return serve::Query{serve::QueryKind::Degree, row, 0, 1, ""};
             case 2:
                 return serve::Query{serve::QueryKind::KHop, row, 0, 2, ""};
             default:
                 return serve::Query{serve::QueryKind::AnalyticsRead, 0, 0, 1,
                                     "triangles"};
         }
     }},
};

struct SweepCell {
    double elapsed_ms = 0;
    double ingest_ops_per_s = 0;
    std::uint64_t queries = 0;
    double p50_us = 0, p95_us = 0;
    double hit_rate = 0;
    std::uint64_t published = 0;
    std::uint64_t applied_epochs = 0;
};

SweepCell run_sweep_cell(const Mix& mix, std::uint64_t publish_every,
                         bool cache_on) {
    SweepCell cell;
    serve::StoreConfig scfg;
    scfg.publish_every = publish_every;
    scfg.retain = 3;
    serve::SnapshotStore<double> store(scfg);
    serve::ResultCache cache;
    if (cache_on) store.set_cache(&cache);
    serve::ExecutorConfig ecfg;
    ecfg.background = false;  // queries run synchronously on reader threads
    ecfg.cache = cache_on ? &cache : nullptr;
    serve::QueryExecutor<double> ex(store, ecfg);

    std::mutex lat_mx;
    std::vector<double> latencies;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto A = core::build_dynamic_matrix<SR>(grid, n, n,
                                                initial_slice(comm.rank()));

        analytics::AnalyticsHub<double> hub;
        hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 512;
        cfg.epoch_deadline = std::chrono::milliseconds(5);
        Engine engine(A, cfg);
        hub.attach(engine);
        store.attach(engine, A, &hub);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::ServingReadHeavy;
        wl.n = n;
        wl.writes = writes_per_producer();
        wl.seed = 51 + static_cast<std::uint64_t>(comm.rank());

        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        const double elapsed_ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (int prod = 0; prod < kProducers; ++prod) {
                producers.emplace_back([&, prod] {
                    std::vector<double> mine;
                    std::uint64_t k = 0;
                    stream::drive_producer(
                        engine, stream::WorkloadProducer(wl, prod),
                        [&](index_t row, index_t col) {
                            const auto r = ex.execute(mix.make(k++, row, col));
                            mine.push_back(r.latency_us);
                        });
                    std::lock_guard lock(lat_mx);
                    latencies.insert(latencies.end(), mine.begin(),
                                     mine.end());
                });
            }
            engine.run();
            for (auto& t : producers) t.join();
        });

        const auto total_ops = comm.allreduce<std::uint64_t>(
            engine.stats().local_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        if (comm.rank() == 0) {
            cell.elapsed_ms = elapsed_ms;
            cell.ingest_ops_per_s =
                static_cast<double>(total_ops) / (elapsed_ms * 1e-3);
            cell.applied_epochs = engine.stats().applied_epochs;
        }
    });

    cell.queries = latencies.size();
    cell.p50_us = percentile(latencies, 0.50);
    cell.p95_us = percentile(latencies, 0.95);
    const auto cs = cache.stats();
    cell.hit_rate = cs.hits + cs.misses > 0
                        ? static_cast<double>(cs.hits) /
                              static_cast<double>(cs.hits + cs.misses)
                        : 0.0;
    cell.published = store.published();
    return cell;
}

// ---------------------------------------------------------------------------
// 2. Reader isolation: slow analytical readers vs epoch application
// ---------------------------------------------------------------------------

enum class ReaderMode { None, Store, EngineLock };

constexpr const char* reader_mode_name(ReaderMode m) {
    switch (m) {
        case ReaderMode::None: return "baseline";
        case ReaderMode::Store: return "store-snapshots";
        case ReaderMode::EngineLock: return "engine-lock";
    }
    return "?";
}

struct IsolationCell {
    double ops_per_s = 0;
    std::uint64_t reads = 0;
};

/// One slow analytical read: 32 point probes plus 200us of "analysis"
/// dwell INSIDE the read's consistency context. Sleeping, not spinning, so
/// the single-core host measures locking, not CPU theft. 8 readers at a
/// ~1.2ms cycle overlap to >100% aggregate dwell duty: while they hold the
/// engine's reader lock, epoch application is excluded almost continuously
/// — while they hold store snapshots, it is not excluded at all.
constexpr auto kReadDwell = std::chrono::microseconds(200);
constexpr auto kReadGap = std::chrono::milliseconds(1);
constexpr int kReadersPerRank = 2;  // x 4 ranks = 8 readers

/// The isolation section streams longer than the sweep so the paced
/// readers overlap many epochs (the contrast needs a sustained run).
std::size_t isolation_writes_per_producer() {
    return 8 * writes_per_producer();
}

IsolationCell run_isolation_cell(ReaderMode mode) {
    IsolationCell cell;
    serve::StoreConfig scfg;
    scfg.publish_every = 4;
    serve::SnapshotStore<double> store(scfg);
    std::atomic<std::uint64_t> reads{0};

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto A = core::build_dynamic_matrix<SR>(grid, n, n,
                                                initial_slice(comm.rank()));
        stream::EngineConfig cfg;
        cfg.epoch_batch = 512;
        cfg.epoch_deadline = std::chrono::milliseconds(5);
        Engine engine(A, cfg);
        store.attach(engine, A);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = n;
        wl.writes = isolation_writes_per_producer();
        wl.seed = 91 + static_cast<std::uint64_t>(comm.rank());

        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        std::atomic<bool> done{false};
        std::vector<std::thread> readers;
        if (mode != ReaderMode::None) {
            for (int rd = 0; rd < kReadersPerRank; ++rd) {
                readers.emplace_back([&, rd] {
                    std::uint64_t x = 17 + static_cast<std::uint64_t>(rd);
                    while (!done.load(std::memory_order_acquire)) {
                        x = x * 6364136223846793005ull + 1442695040888963407ull;
                        const auto i = static_cast<index_t>(
                            (x >> 16) % static_cast<std::uint64_t>(n));
                        if (mode == ReaderMode::Store) {
                            auto snap = store.current();
                            if (snap) {
                                for (index_t d = 0; d < 32; ++d)
                                    (void)snap->edge_exists(i, (i + d) % n);
                                std::this_thread::sleep_for(kReadDwell);
                            }
                        } else {
                            engine.with_snapshot([&](auto snap) {
                                for (index_t d = 0; d < 32; ++d)
                                    (void)snap.contains(i, (i + d) % n);
                                std::this_thread::sleep_for(kReadDwell);
                                return 0;
                            });
                        }
                        reads.fetch_add(1, std::memory_order_relaxed);
                        std::this_thread::sleep_for(kReadGap);
                    }
                });
            }
        }

        const double elapsed_ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (int prod = 0; prod < kProducers; ++prod) {
                producers.emplace_back([&, prod] {
                    stream::drive_producer(
                        engine, stream::WorkloadProducer(wl, prod),
                        [](index_t, index_t) {});
                });
            }
            engine.run();
            for (auto& t : producers) t.join();
        });
        done.store(true, std::memory_order_release);
        for (auto& t : readers) t.join();

        const auto total_ops = comm.allreduce<std::uint64_t>(
            engine.stats().local_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        if (comm.rank() == 0)
            cell.ops_per_s =
                static_cast<double>(total_ops) / (elapsed_ms * 1e-3);
    });
    cell.reads = reads.load();
    return cell;
}

// ---------------------------------------------------------------------------
// 3. Cache gate: cached p50 >= 10x faster than uncached
// ---------------------------------------------------------------------------

struct GateResult {
    double uncached_p50_us = 0;
    double cached_p50_us = 0;
    double speedup = 0;
    std::size_t queries = 0;
    bool pass = false;
};

GateResult run_cache_gate() {
    GateResult g;
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    serve::ResultCache cache;
    store.set_cache(&cache);

    // Publish one snapshot of the full initial load; no ingestion races the
    // timing below (single-threaded, stable percentiles).
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;
        auto A = core::build_dynamic_matrix<SR>(grid, n, n,
                                                initial_slice(comm.rank()));
        stream::EngineConfig cfg;
        Engine engine(A, cfg);
        store.attach(engine, A);  // publishes version 0 = the loaded graph
    });

    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    ecfg.cache = &cache;
    serve::QueryExecutor<double> ex(store, ecfg);

    const std::size_t m = std::max<std::size_t>(
        100, static_cast<std::size_t>(500 * bench_scale()));
    const index_t n = index_t{1} << kScale;
    std::vector<double> uncached, cached;
    uncached.reserve(m);
    cached.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
        const serve::Query q{serve::QueryKind::KHop,
                             static_cast<index_t>((k * 131) %
                                                  static_cast<std::size_t>(n)),
                             0, 3, ""};
        const auto r = ex.execute(q);  // first touch: miss + evaluate + fill
        uncached.push_back(r.latency_us);
    }
    for (std::size_t k = 0; k < m; ++k) {
        const serve::Query q{serve::QueryKind::KHop,
                             static_cast<index_t>((k * 131) %
                                                  static_cast<std::size_t>(n)),
                             0, 3, ""};
        const auto r = ex.execute(q);  // same version, same key: a hit
        if (!r.cache_hit) continue;
        cached.push_back(r.latency_us);
    }
    g.queries = m;
    g.uncached_p50_us = percentile(uncached, 0.50);
    g.cached_p50_us = percentile(cached, 0.50);
    g.speedup =
        g.cached_p50_us > 0 ? g.uncached_p50_us / g.cached_p50_us : 0.0;
    g.pass = g.speedup >= 10.0;
    return g;
}

}  // namespace

int main() {
    print_header("Query serving (src/serve/)",
                 "no figure — serving tier layered on the streaming engine");
    std::printf(
        "%d ranks, %d producers/rank, %zu writes/producer, scale %d, "
        "serving-read-heavy reads >= 9:1\n",
        kRanks, kProducers, writes_per_producer(), kScale);

    // -- 1. serving sweep -----------------------------------------------------
    std::printf("\n-- serving sweep: mix x snapshot cadence x cache --\n");
    std::printf("%-8s %8s %6s %10s %8s %9s %9s %8s %6s\n", "mix", "cadence",
                "cache", "ingest/s", "queries", "p50 us", "p95 us",
                "hit rate", "snaps");
    for (const auto& mix : kMixes) {
        for (const std::uint64_t cadence : {std::uint64_t{1}, std::uint64_t{8}}) {
            for (const bool cache_on : {false, true}) {
                const SweepCell c = run_sweep_cell(mix, cadence, cache_on);
                std::printf(
                    "%-8s %8llu %6s %10.0f %8llu %9.1f %9.1f %7.0f%% %6llu\n",
                    mix.name, static_cast<unsigned long long>(cadence),
                    cache_on ? "on" : "off", c.ingest_ops_per_s,
                    static_cast<unsigned long long>(c.queries), c.p50_us,
                    c.p95_us, 100.0 * c.hit_rate,
                    static_cast<unsigned long long>(c.published));
                JsonRecord rec("bench_query_serving");
                rec.field("mode", "sweep")
                    .field("mix", mix.name)
                    .field("publish_every", cadence)
                    .field("cache", cache_on ? "on" : "off")
                    .field("ranks", kRanks)
                    .field("producers_per_rank", kProducers)
                    .field("writes_per_producer", writes_per_producer())
                    .field("elapsed_ms", c.elapsed_ms)
                    .field("ingest_ops_per_s", c.ingest_ops_per_s)
                    .field("queries", c.queries)
                    .field("query_p50_us", c.p50_us)
                    .field("query_p95_us", c.p95_us)
                    .field("cache_hit_rate", c.hit_rate)
                    .field("snapshots_published", c.published)
                    .field("applied_epochs", c.applied_epochs);
                json_record(rec);
            }
        }
    }

    // -- 2. reader isolation --------------------------------------------------
    std::printf(
        "\n-- reader isolation: 8 slow readers (%lldus dwell / %lldms gap) "
        "vs epoch application (best of 3) --\n",
        static_cast<long long>(kReadDwell.count()),
        static_cast<long long>(kReadGap.count()));
    std::printf("%-18s %12s %8s %10s\n", "readers", "ingest/s", "reads",
                "vs base");
    double baseline = 0;
    for (const ReaderMode mode :
         {ReaderMode::None, ReaderMode::Store, ReaderMode::EngineLock}) {
        IsolationCell c;
        for (int rep = 0; rep < 3; ++rep) {
            const IsolationCell r = run_isolation_cell(mode);
            if (r.ops_per_s > c.ops_per_s) c = r;
        }
        if (mode == ReaderMode::None) baseline = c.ops_per_s;
        const double ratio = baseline > 0 ? c.ops_per_s / baseline : 0.0;
        std::printf("%-18s %12.0f %8llu %9.0f%%\n", reader_mode_name(mode),
                    c.ops_per_s, static_cast<unsigned long long>(c.reads),
                    100.0 * ratio);
        JsonRecord rec("bench_query_serving");
        rec.field("mode", "isolation")
            .field("readers", reader_mode_name(mode))
            .field("reader_count",
                   mode == ReaderMode::None ? 0 : kRanks * kReadersPerRank)
            .field("ranks", kRanks)
            .field("writes_per_producer", isolation_writes_per_producer())
            .field("ingest_ops_per_s", c.ops_per_s)
            .field("reads", c.reads)
            .field("ratio_vs_baseline", ratio);
        json_record(rec);
        if (mode == ReaderMode::Store)
            std::printf("%-18s   acceptance: %s (store readers within 10%% "
                        "of baseline)\n",
                        "", ratio >= 0.9 ? "PASS" : "FAIL");
    }

    // -- 3. cache gate ----------------------------------------------------
    const GateResult g = run_cache_gate();
    std::printf(
        "\n-- cache gate: %zu k-hop queries, uncached p50 %.1f us, cached "
        "p50 %.2f us, speedup %.1fx --\n",
        g.queries, g.uncached_p50_us, g.cached_p50_us, g.speedup);
    std::printf("cache gate: %s (cached-read p50 >= 10x faster)\n",
                g.pass ? "PASS" : "FAIL");
    JsonRecord rec("bench_query_serving");
    rec.field("mode", "cache-gate")
        .field("queries", g.queries)
        .field("uncached_p50_us", g.uncached_p50_us)
        .field("cached_p50_us", g.cached_p50_us)
        .field("speedup", g.speedup)
        .field("pass", g.pass ? 1 : 0);
    json_record(rec);

    if (json_enabled()) json_flush();
    return g.pass ? 0 : 1;
}
