// Durability-layer costs (src/persist/): what restartability charges the
// streaming engine, and how fast a dead rank comes back.
//
//   1. log append overhead — sustained-uniform ingest with the write-ahead
//      op log on vs off, swept over the fsync cadence (the acceptance bar:
//      < 10% slowdown at the default cadence);
//   2. checkpoint write throughput — epoch-consistent tile snapshots +
//      manifest commit, amortized MB/s and per-checkpoint latency;
//   3. replay rate — recovery ops/s from a pure log (cold start) and from
//      checkpoint + log tail.
//
// Emits DSG_BENCH_JSON records like the rest of the harness; scales with
// DSG_BENCH_SCALE. See docs/BENCHMARKS.md.
#include <unistd.h>

#include <filesystem>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "persist/durability.hpp"
#include "persist/recovery.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using namespace dsg::bench;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using Manager = persist::DurabilityManager<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr index_t kN = 4096;

std::size_t writes_per_producer() {
    return std::max<std::size_t>(
        2'000, static_cast<std::size_t>(50'000 * bench_scale()));
}

/// Repetitions per configuration; the MINIMUM wall time is reported. The
/// rank threads oversubscribe this one-core host ~6x, so single runs carry
/// scheduler noise far larger than the effect being measured.
constexpr int kReps = 5;

struct IngestResult {
    double wall_ms = 0;
    std::uint64_t total_ops = 0;
    persist::PersistStats stats;  // zeros when persistence is off
};

/// One sustained-uniform ingest run, optionally under a DurabilityManager.
IngestResult run_ingest_once(const std::filesystem::path& dir,
                             bool persist_on, std::size_t fsync_every,
                             std::uint64_t checkpoint_stride) {
    IngestResult out;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, kN, kN);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = kN;
        wl.writes = writes_per_producer();
        wl.seed = 4'200 + static_cast<std::uint64_t>(comm.rank());

        stream::EngineConfig cfg;
        cfg.queue_capacity = 1 << 13;
        cfg.epoch_batch = 2'048;
        cfg.epoch_deadline = std::chrono::milliseconds(4);
        Engine engine(A, cfg);

        std::optional<Manager> mgr;
        if (persist_on) {
            persist::PersistConfig pc;
            pc.dir = dir;
            pc.fsync_every = fsync_every;
            pc.checkpoint_stride = checkpoint_stride;
            mgr.emplace(engine, A, pc, Manager::Start::Fresh);
        }

        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();
        const double ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            for (int prod = 0; prod < kProducers; ++prod)
                producers.emplace_back([&, prod] {
                    stream::drive_producer(
                        engine, stream::WorkloadProducer(wl, prod),
                        [](index_t, index_t) {});
                });
            engine.run();
            for (auto& t : producers) t.join();
        });
        if (comm.rank() == 0) {
            out.wall_ms = ms;
            out.total_ops = static_cast<std::uint64_t>(kRanks) * kProducers *
                            wl.writes;
            if (mgr) out.stats = mgr->stats();
        }
    });
    return out;
}

/// Best of kReps runs (each run overwrites the durable state in `dir`).
IngestResult run_ingest(const std::filesystem::path& dir, bool persist_on,
                        std::size_t fsync_every,
                        std::uint64_t checkpoint_stride) {
    IngestResult best;
    for (int rep = 0; rep < kReps; ++rep) {
        auto r = run_ingest_once(dir, persist_on, fsync_every,
                                 checkpoint_stride);
        if (rep == 0 || r.wall_ms < best.wall_ms) best = r;
    }
    return best;
}

struct ReplayResult {
    double wall_ms = 0;
    std::uint64_t replayed_ops = 0;  // summed over ranks
    std::uint64_t replayed_epochs = 0;
    std::uint64_t version = 0;
};

ReplayResult run_recovery(const std::filesystem::path& dir) {
    ReplayResult out;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, kN, kN);
        persist::RecoveryOptions opts;
        opts.dir = dir;
        persist::RecoveryResult res;
        const double ms = timed_ms(comm, [&] {
            res = persist::recover<SR>(A, opts);
        });
        const auto total_ops = comm.allreduce<std::uint64_t>(
            res.replayed_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        if (comm.rank() == 0) {
            out.wall_ms = ms;
            out.replayed_ops = total_ops;
            out.replayed_epochs = res.replayed_epochs;
            out.version = res.recovered_version;
        }
    });
    return out;
}

double ops_per_s(std::uint64_t ops, double ms) {
    return ms > 0 ? static_cast<double>(ops) / (ms * 1e-3) : 0.0;
}

}  // namespace

int main() {
    print_header("Recovery: WAL overhead, checkpoint throughput, replay rate",
                 "the durability layer, beyond the paper");
    const auto scratch =
        std::filesystem::temp_directory_path() /
        ("dsg-bench-recovery-" + std::to_string(::getpid()));
    std::filesystem::create_directories(scratch);

    // -- 1. log append overhead vs the no-persist baseline -------------------
    const auto base = run_ingest(scratch / "off", false, 0, 0);
    std::printf("%zu sustained-uniform ops, %d ranks x %d producers\n\n",
                static_cast<std::size_t>(base.total_ops), kRanks, kProducers);
    std::printf("%-22s | %10s | %9s | %8s | %s\n", "mode", "ops/s", "wall ms",
                "overhead", "fsyncs");
    std::printf("%-22s | %10.0f | %9.1f | %8s | %s\n", "no persistence",
                ops_per_s(base.total_ops, base.wall_ms), base.wall_ms, "-",
                "-");
    {
        JsonRecord rec("bench_recovery");
        rec.field("mode", "baseline")
            .field("ops_per_s", ops_per_s(base.total_ops, base.wall_ms))
            .field("wall_ms", base.wall_ms)
            .field("total_ops", base.total_ops);
        json_record(rec);
    }
    // Default cadence (16) is the acceptance-gated row; 1 shows the
    // worst-case fsync-per-epoch tax; 0 rides the page cache entirely.
    for (const std::size_t fsync_every : {std::size_t{0}, std::size_t{16},
                                          std::size_t{1}}) {
        const auto r = run_ingest(scratch / "wal", true, fsync_every, 0);
        const double overhead =
            100.0 * (r.wall_ms - base.wall_ms) / base.wall_ms;
        char mode[40];
        std::snprintf(mode, sizeof mode, "wal fsync_every=%zu%s", fsync_every,
                      fsync_every == 16 ? " (def)" : "");
        std::printf("%-22s | %10.0f | %9.1f | %+7.1f%% | %llu\n", mode,
                    ops_per_s(r.total_ops, r.wall_ms), r.wall_ms, overhead,
                    static_cast<unsigned long long>(r.stats.fsyncs));
        JsonRecord rec("bench_recovery");
        rec.field("mode", "wal")
            .field("fsync_every", fsync_every)
            .field("ops_per_s", ops_per_s(r.total_ops, r.wall_ms))
            .field("wall_ms", r.wall_ms)
            .field("overhead_pct", overhead)
            .field("bytes_logged", r.stats.bytes_logged)
            .field("fsyncs", r.stats.fsyncs);
        json_record(rec);
        if (fsync_every == 16)
            std::printf("%-22s   acceptance: %s (< 10%% at default cadence)\n",
                        "", overhead < 10.0 ? "PASS" : "FAIL");
    }

    // -- 2. checkpoint write throughput --------------------------------------
    const auto ck = run_ingest(scratch / "ckpt", true, 16, 8);
    const double ck_mb =
        static_cast<double>(ck.stats.checkpoint_bytes) / (1024.0 * 1024.0);
    const double ck_mbps = ck.stats.checkpoint_ms > 0
                               ? ck_mb / (ck.stats.checkpoint_ms * 1e-3)
                               : 0.0;
    const double ck_mean_ms =
        ck.stats.checkpoints > 0
            ? ck.stats.checkpoint_ms /
                  static_cast<double>(ck.stats.checkpoints)
            : 0.0;
    std::printf(
        "\ncheckpoints (stride 8): %llu taken, %.2f MiB written, "
        "%.1f MiB/s, mean %.2f ms each (incl. manifest commit + compaction)\n",
        static_cast<unsigned long long>(ck.stats.checkpoints), ck_mb, ck_mbps,
        ck_mean_ms);
    {
        JsonRecord rec("bench_recovery");
        rec.field("mode", "checkpoint")
            .field("checkpoints", ck.stats.checkpoints)
            .field("bytes", ck.stats.checkpoint_bytes)
            .field("mib_per_s", ck_mbps)
            .field("mean_ms", ck_mean_ms);
        json_record(rec);
    }

    // -- 3. replay rate -------------------------------------------------------
    // (a) pure log: the 'wal' dir holds every epoch, no checkpoint.
    const auto cold = run_recovery(scratch / "wal");
    std::printf(
        "\nreplay, pure log (no checkpoint): %llu ops / %llu epochs in "
        "%.1f ms = %.0f ops/s to version %llu\n",
        static_cast<unsigned long long>(cold.replayed_ops),
        static_cast<unsigned long long>(cold.replayed_epochs), cold.wall_ms,
        ops_per_s(cold.replayed_ops, cold.wall_ms),
        static_cast<unsigned long long>(cold.version));
    {
        JsonRecord rec("bench_recovery");
        rec.field("mode", "replay-log")
            .field("replayed_ops", cold.replayed_ops)
            .field("replayed_epochs", cold.replayed_epochs)
            .field("wall_ms", cold.wall_ms)
            .field("ops_per_s", ops_per_s(cold.replayed_ops, cold.wall_ms));
        json_record(rec);
    }
    // (b) checkpoint + tail: most epochs come back via the tile snapshot.
    const auto warm = run_recovery(scratch / "ckpt");
    std::printf(
        "replay, checkpoint + tail:        %llu ops / %llu epochs in "
        "%.1f ms (recovered to version %llu)\n",
        static_cast<unsigned long long>(warm.replayed_ops),
        static_cast<unsigned long long>(warm.replayed_epochs), warm.wall_ms,
        static_cast<unsigned long long>(warm.version));
    {
        JsonRecord rec("bench_recovery");
        rec.field("mode", "replay-checkpoint")
            .field("replayed_ops", warm.replayed_ops)
            .field("replayed_epochs", warm.replayed_epochs)
            .field("wall_ms", warm.wall_ms)
            .field("version", warm.version);
        json_record(rec);
    }

    std::printf(
        "\nboth recoveries land on the same matrix the live runs held; the\n"
        "recovery test suite (tests/persist/) proves that equality\n"
        "bit-for-bit across every workload scenario.\n");
    std::filesystem::remove_all(scratch);
    return 0;
}
