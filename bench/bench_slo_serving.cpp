// Closed-loop SLO harness for the serving tier (ROADMAP item 5(c)).
//
// Unlike bench_query_serving (which measures per-call latency from inside
// the producer threads), this bench shapes traffic the way a client fleet
// would: a paced load generator fixes an arrival schedule at a target QPS
// and measures ON-ARRIVAL latency — scheduled arrival to completion —
// which is coordinated-omission-safe (see serve/load_gen.hpp). Queries run
// against the admission-controlled background executor while the streaming
// engine ingests writes underneath, so the numbers include everything a
// client sees: admission wait, deadline expiry, shedding, cache hits and
// snapshot staleness.
//
// Per target-QPS cell one DSG_BENCH_JSON record (mode = "slo") carries
// on-arrival p50/p99/p999/max, per-class SLO-violation counts, achieved
// QPS and the slow-query flight-recorder summary. scripts/slo-gate.py
// gates CI on these records (structure + violation-rate ceiling +
// optional baseline comparison via scripts/bench-compare.py);
// BENCH_9.json is the committed smoke-scale baseline.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "bench_common.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/load_gen.hpp"
#include "serve/query_executor.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using namespace dsg::bench;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr int kScale = 12;     // 4096 vertices
constexpr std::size_t kInitialEdges = 20'000;
constexpr double kSloMs = 25.0;  // generous: CI runners are 1-2 cores

std::size_t writes_per_producer() {
    return std::max<std::size_t>(
        250, static_cast<std::size_t>(2'000 * bench_scale()));
}

/// Arrivals per cell: enough to resolve a p99 at smoke scale, more at
/// full scale.
std::size_t arrivals_per_cell() {
    return std::max<std::size_t>(
        400, static_cast<std::size_t>(3'000 * bench_scale()));
}

std::vector<Triple<double>> initial_slice(int rank) {
    auto mine = graph::rmat_edges(kScale, kInitialEdges / kRanks,
                                  7 + static_cast<std::uint64_t>(rank));
    sparse::IndexPermutation perm(index_t{1} << kScale, 4242);
    perm.apply(mine);
    return mine;
}

/// The k-th arrival's query: the mixed rotation of bench_query_serving,
/// keys walked pseudo-randomly so cache hits come from key reuse, not a
/// degenerate single key.
serve::Query make_query(std::uint64_t k, index_t n) {
    std::uint64_t x = k * 6364136223846793005ull + 1442695040888963407ull;
    const auto row =
        static_cast<index_t>((x >> 17) % static_cast<std::uint64_t>(n));
    const auto col =
        static_cast<index_t>((x >> 41) % static_cast<std::uint64_t>(n));
    switch (k % 4) {
        case 0:
            return serve::Query{serve::QueryKind::EdgeExists, row, col, 1, ""};
        case 1: return serve::Query{serve::QueryKind::Degree, row, 0, 1, ""};
        case 2: return serve::Query{serve::QueryKind::KHop, row, 0, 2, ""};
        default:
            return serve::Query{serve::QueryKind::AnalyticsRead, 0, 0, 1,
                                "triangles"};
    }
}

/// JSON-safe field suffix for a query class ("k-hop" -> "k_hop").
std::string class_field(const char* prefix, serve::QueryKind kind) {
    std::string s = prefix;
    for (const char* c = serve::query_kind_name(kind); *c != '\0'; ++c)
        s.push_back(*c == '-' ? '_' : *c);
    return s;
}

struct SloCell {
    serve::LoadGenReport rep;
    double ingest_ops_per_s = 0;
    std::uint64_t published = 0;
    std::uint64_t flight_recorded = 0;
    std::uint64_t flight_worst_total_ns = 0;
};

SloCell run_slo_cell(double target_qps) {
    SloCell cell;
    serve::StoreConfig scfg;
    scfg.publish_every = 4;
    scfg.retain = 3;
    serve::SnapshotStore<double> store(scfg);
    serve::ResultCache cache;
    store.set_cache(&cache);
    serve::FlightRecorder recorder(16);
    serve::ExecutorConfig ecfg;
    ecfg.background = true;  // the admission-controlled client path
    ecfg.pending_capacity = 4096;
    ecfg.deadline = std::chrono::milliseconds(
        static_cast<std::int64_t>(2 * kSloMs));
    ecfg.cache = &cache;
    ecfg.recorder = &recorder;
    serve::QueryExecutor<double> ex(store, ecfg);

    const index_t n = index_t{1} << kScale;
    std::atomic<bool> engine_done{false};

    // The load generator paces against the executor from outside the rank
    // world, like an external client. It waits for the first publication so
    // the cell measures serving, not the pre-attach window.
    std::thread loadgen([&] {
        while (store.published() == 0 &&
               !engine_done.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        serve::LoadGenConfig lg;
        lg.target_qps = target_qps;
        lg.total = arrivals_per_cell();
        lg.slo_ms = kSloMs;
        cell.rep = serve::run_paced(
            ex, lg, [&](std::uint64_t k) { return make_query(k, n); });
    });

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        auto A = core::build_dynamic_matrix<SR>(grid, n, n,
                                                initial_slice(comm.rank()));
        analytics::AnalyticsHub<double> hub;
        hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 512;
        cfg.epoch_deadline = std::chrono::milliseconds(5);
        Engine engine(A, cfg);
        hub.attach(engine);
        store.attach(engine, A, &hub);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::ServingReadHeavy;
        wl.n = n;
        wl.writes = writes_per_producer();
        wl.seed = 51 + static_cast<std::uint64_t>(comm.rank());

        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        const double elapsed_ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (int prod = 0; prod < kProducers; ++prod)
                producers.emplace_back([&, prod] {
                    stream::drive_producer(engine,
                                           stream::WorkloadProducer(wl, prod),
                                           [](index_t, index_t) {});
                });
            engine.run();
            for (auto& t : producers) t.join();
        });

        const auto total_ops = comm.allreduce<std::uint64_t>(
            engine.stats().local_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        if (comm.rank() == 0)
            cell.ingest_ops_per_s =
                static_cast<double>(total_ops) / (elapsed_ms * 1e-3);
    });
    engine_done.store(true, std::memory_order_release);
    loadgen.join();  // tail queries are served from the final snapshot
    ex.stop();

    cell.published = store.published();
    cell.flight_recorded = recorder.offered();
    const auto worst = recorder.worst();
    if (!worst.empty()) cell.flight_worst_total_ns = worst.front().total_ns;
    return cell;
}

}  // namespace

int main() {
    print_header("Closed-loop SLO serving (src/serve/ + serve/load_gen.hpp)",
                 "no figure — ROADMAP item 5(c), the traffic-shaped gate");
    std::printf(
        "%d ranks, %d producers/rank, %zu writes/producer, %zu arrivals/cell, "
        "SLO %.0f ms on-arrival\n",
        kRanks, kProducers, writes_per_producer(), arrivals_per_cell(),
        kSloMs);

    std::printf("\n%-10s %8s %8s %6s %8s %9s %9s %9s %9s %7s\n", "target",
                "issued", "served", "shed", "expired", "p50 ms", "p99 ms",
                "p999 ms", "viol.", "qps");
    bool sane = true;
    for (const double qps : {500.0, 2000.0}) {
        const SloCell c = run_slo_cell(qps);
        const auto& r = c.rep;
        std::printf(
            "%-10.0f %8llu %8llu %6llu %8llu %9.2f %9.2f %9.2f %8llu %7.0f\n",
            qps, static_cast<unsigned long long>(r.issued),
            static_cast<unsigned long long>(r.served),
            static_cast<unsigned long long>(r.shed),
            static_cast<unsigned long long>(r.expired), r.p50_ms, r.p99_ms,
            r.p999_ms, static_cast<unsigned long long>(r.slo_violations),
            r.achieved_qps);

        // Structural sanity this binary owns (the SLO levels themselves are
        // scripts/slo-gate.py's to judge): every arrival is accounted for
        // exactly once and the percentiles are ordered.
        sane = sane && r.issued > 0 &&
               r.served + r.shed + r.expired == r.issued &&
               r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms &&
               r.p999_ms <= r.max_ms;

        JsonRecord rec("bench_slo_serving");
        rec.field("mode", "slo")
            .field("target_qps", qps)
            .field("slo_ms", kSloMs)
            .field("ranks", kRanks)
            .field("writes_per_producer", writes_per_producer())
            .field("arrivals", r.issued)
            .field("served", r.served)
            .field("ok", r.ok)
            .field("shed", r.shed)
            .field("expired", r.expired)
            .field("cache_hits", r.cache_hits)
            .field("on_arrival_p50_ms", r.p50_ms)
            .field("on_arrival_p99_ms", r.p99_ms)
            .field("on_arrival_p999_ms", r.p999_ms)
            .field("on_arrival_max_ms", r.max_ms)
            .field("slo_violations", r.slo_violations)
            .field("violation_rate", r.violation_rate())
            .field("achieved_qps", r.achieved_qps)
            .field("max_submit_lateness_ms", r.max_submit_lateness_ms)
            .field("ingest_ops_per_s", c.ingest_ops_per_s)
            .field("snapshots_published", c.published)
            .field("flight_recorded", c.flight_recorded)
            .field("flight_worst_total_ns", c.flight_worst_total_ns);
        for (std::size_t k = 0; k < serve::kQueryKindCount; ++k)
            rec.field(class_field("slo_violations_",
                                  static_cast<serve::QueryKind>(k))
                          .c_str(),
                      r.violations_by_class[k]);
        json_record(rec);
    }

    std::printf("\nstructural sanity: %s (accounting exact, percentiles "
                "ordered; SLO levels gated by scripts/slo-gate.py)\n",
                sane ? "PASS" : "FAIL");
    if (json_enabled()) json_flush();
    return sane ? 0 : 1;
}
