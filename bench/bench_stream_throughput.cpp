// Streaming ingestion throughput: scenarios x epoch batch sizes.
//
// Not a paper figure — this measures the streaming engine layered on top of
// the paper's update machinery (src/stream/): per-rank producer threads push
// workload ops into bounded queues while every rank pumps epoch-batched
// collective application. Reported per (scenario, epoch_batch) cell:
// sustained throughput (ops/s across all ranks), epochs pumped, mean epoch
// latency, worst epoch, and worst backlog. With DSG_BENCH_JSON=<path> every
// cell is also recorded as one JSON object.
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "obs/introspection.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using namespace dsg::bench;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr int kScale = 12;     // 4096 vertices

std::size_t writes_per_producer() {
    return static_cast<std::size_t>(20'000 * bench_scale());
}

struct Cell {
    double elapsed_ms = 0;
    double ops_per_s = 0;
    std::uint64_t epochs = 0;
    double mean_epoch_ms = 0;
    double worst_epoch_ms = 0;
    std::size_t worst_backlog = 0;
    std::size_t final_nnz = 0;
};

const char* comm_mode_name(par::CommMode mode) {
    return mode == par::CommMode::Async ? "async" : "sync";
}

Cell run_cell(stream::Scenario scenario, std::size_t epoch_batch,
              par::CommMode comm_mode) {
    Cell cell;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = index_t{1} << kScale;

        // Initial load: half of an R-MAT instance, as in the figure benches.
        auto mine = graph::rmat_edges(
            kScale, 20'000 / kRanks, 7 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 4242);
        perm.apply(mine);
        auto A = core::build_dynamic_matrix<SR>(grid, n, n, mine);

        stream::WorkloadConfig wl;
        wl.scenario = scenario;
        wl.n = n;
        wl.writes = writes_per_producer();
        wl.seed = 31 + static_cast<std::uint64_t>(comm.rank());

        stream::EngineConfig cfg;
        cfg.epoch_batch = epoch_batch;
        cfg.epoch_deadline = std::chrono::milliseconds(10);
        cfg.comm_mode = comm_mode;
        Engine engine(A, cfg);
        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        const double elapsed_ms = timed_ms(comm, [&] {
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (int prod = 0; prod < kProducers; ++prod) {
                producers.emplace_back([&, prod] {
                    stream::drive_producer(
                        engine, stream::WorkloadProducer(wl, prod),
                        [&](index_t row, index_t col) {
                            engine.with_snapshot([&](auto snap) {
                                return snap.contains(row, col);
                            });
                        });
                });
            }
            engine.run();
            for (auto& t : producers) t.join();
        });

        const std::size_t nnz = A.global_nnz();  // collective
        const auto total_ops = comm.allreduce<std::uint64_t>(
            engine.stats().local_ops,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });

        if (comm.rank() == 0) {
            const auto& s = engine.stats();
            cell.elapsed_ms = elapsed_ms;
            cell.ops_per_s =
                static_cast<double>(total_ops) / (elapsed_ms * 1e-3);
            cell.epochs = s.epochs;
            cell.mean_epoch_ms =
                s.epochs > 0 ? (s.drain_ms + s.apply_ms) /
                                   static_cast<double>(s.epochs)
                             : 0;
            cell.worst_epoch_ms = s.max_epoch_ms;
            cell.worst_backlog = s.max_backlog;
            cell.final_nnz = nnz;
        }
    });
    return cell;
}

}  // namespace

int main() {
    print_header("Streaming ingestion throughput (src/stream/)",
                 "no figure — engine layered on Sections IV-A/IV-B");
    std::printf(
        "%d ranks, %d producers/rank, %zu writes/producer, scale %d\n\n",
        kRanks, kProducers, writes_per_producer(), kScale);
    std::printf("%-22s %8s %6s %10s %7s %9s %9s %9s\n", "scenario", "batch",
                "comm", "ops/s", "epochs", "epoch ms", "worst ms", "backlog");

    // Per-cell sync/async pairs feed the overlap-gain report at the end.
    double gain_sum = 0;
    int gain_count = 0;
    for (auto scenario : stream::all_scenarios()) {
        for (std::size_t epoch_batch : {std::size_t{512}, std::size_t{4096}}) {
            double sync_ops = 0;
            for (auto mode : {par::CommMode::Sync, par::CommMode::Async}) {
                const Cell cell = run_cell(scenario, epoch_batch, mode);
                std::printf("%-22s %8zu %6s %10.0f %7llu %9.2f %9.2f %9zu\n",
                            stream::scenario_name(scenario), epoch_batch,
                            comm_mode_name(mode), cell.ops_per_s,
                            static_cast<unsigned long long>(cell.epochs),
                            cell.mean_epoch_ms, cell.worst_epoch_ms,
                            cell.worst_backlog);
                if (mode == par::CommMode::Sync) {
                    sync_ops = cell.ops_per_s;
                } else if (sync_ops > 0) {
                    gain_sum += cell.ops_per_s / sync_ops;
                    ++gain_count;
                }

                JsonRecord rec("bench_stream_throughput");
                rec.field("scenario", stream::scenario_name(scenario))
                    .field("ranks", kRanks)
                    .field("producers_per_rank", kProducers)
                    .field("writes_per_producer", writes_per_producer())
                    .field("epoch_batch", epoch_batch)
                    .field("comm_mode", comm_mode_name(mode))
                    .field("elapsed_ms", cell.elapsed_ms)
                    .field("ops_per_s", cell.ops_per_s)
                    .field("epochs", cell.epochs)
                    .field("mean_epoch_ms", cell.mean_epoch_ms)
                    .field("worst_epoch_ms", cell.worst_epoch_ms)
                    .field("worst_backlog", cell.worst_backlog)
                    .field("final_nnz", cell.final_nnz);
                json_record(rec);
            }
        }
    }
    if (gain_count > 0)
        std::printf(
            "\noverlap gain: async throughput is %.2fx sync on average over "
            "%d cells\n(>1 means posting stage k+1's exchange while applying "
            "stage k pays off)\n",
            gain_sum / gain_count, gain_count);

    // -----------------------------------------------------------------------
    // Metrics overhead gate: one representative cell, instruments recording
    // vs runtime-disabled (every record path reduced to a single relaxed
    // load — the same contrast the -DDSG_OBS_NOOP compile-out build gives,
    // without needing a second binary). Reported in the same paired style as
    // the sync/async column above; the budget is 2%.
    {
        const auto scenario = stream::Scenario::SustainedUniform;
        constexpr std::size_t kGateBatch = 4096;
        const auto best_ops = [&](bool instruments_on) {
            obs::set_enabled(instruments_on);
            double best = 0;
            for (int rep = 0; rep < 3; ++rep)
                best = std::max(
                    best,
                    run_cell(scenario, kGateBatch, par::CommMode::Sync)
                        .ops_per_s);
            obs::set_enabled(true);
            return best;
        };
        (void)run_cell(scenario, kGateBatch, par::CommMode::Sync);  // warm-up
        const double ops_off = best_ops(false);
        const double ops_on = best_ops(true);
        const double ratio = ops_off > 0 ? ops_on / ops_off : 1.0;
        const bool within = ratio >= 0.98;
        std::printf(
            "\nmetrics overhead gate (%s, batch %zu, sync, best of 3)%s:\n",
            stream::scenario_name(scenario), kGateBatch,
            obs::compiled_noop() ? " [DSG_OBS_NOOP build]" : "");
        std::printf("%-22s %10s\n", "instruments", "ops/s");
        std::printf("%-22s %10.0f\n", "disabled", ops_off);
        std::printf("%-22s %10.0f\n", "recording", ops_on);
        std::printf(
            "recording throughput is %.3fx disabled — %s the 2%% budget\n",
            ratio, within ? "within" : "OUTSIDE");
        JsonRecord rec("bench_stream_throughput_obs_gate");
        rec.field("scenario", stream::scenario_name(scenario))
            .field("epoch_batch", kGateBatch)
            .field("ops_per_s_disabled", ops_off)
            .field("ops_per_s_recording", ops_on)
            .field("ratio", ratio)
            .field("within_gate", within ? 1 : 0)
            .field("compiled_noop", obs::compiled_noop() ? 1 : 0);
        json_record_with_metrics(std::move(rec));
    }

    // -----------------------------------------------------------------------
    // Scrape overhead gate: the same representative cell with a live
    // IntrospectionServer on an ephemeral port and one scraper polling
    // GET /metrics at 10 Hz throughout — the introspection plane's
    // steady-state cost. Same best-of-3 pairing, same 2% budget.
    {
        const auto scenario = stream::Scenario::SustainedUniform;
        constexpr std::size_t kGateBatch = 4096;
        const auto best_of_3 = [&] {
            double best = 0;
            for (int rep = 0; rep < 3; ++rep)
                best = std::max(
                    best,
                    run_cell(scenario, kGateBatch, par::CommMode::Sync)
                        .ops_per_s);
            return best;
        };
        const double ops_quiet = best_of_3();

        obs::IntrospectionServer server;
        server.start({});
        std::atomic<bool> stop_scraper{false};
        std::atomic<std::uint64_t> scrapes{0};
        std::thread scraper([&] {
            while (!stop_scraper.load(std::memory_order_relaxed)) {
                if (!obs::http_fetch(server.port(), "/metrics").empty())
                    scrapes.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
        });
        const double ops_scraped = best_of_3();
        stop_scraper.store(true);
        scraper.join();
        server.stop();

        const double ratio = ops_quiet > 0 ? ops_scraped / ops_quiet : 1.0;
        const bool within = ratio >= 0.98;
        std::printf(
            "\nscrape overhead gate (%s, batch %zu, sync, best of 3, "
            "10 Hz GET /metrics):\n",
            stream::scenario_name(scenario), kGateBatch);
        std::printf("%-22s %10s\n", "scraper", "ops/s");
        std::printf("%-22s %10.0f\n", "idle", ops_quiet);
        std::printf("%-22s %10.0f  (%llu scrapes served)\n", "polling",
                    ops_scraped,
                    static_cast<unsigned long long>(scrapes.load()));
        std::printf(
            "scraped throughput is %.3fx idle — %s the 2%% budget\n", ratio,
            within ? "within" : "OUTSIDE");
        JsonRecord rec("bench_stream_throughput_scrape_gate");
        rec.field("scenario", stream::scenario_name(scenario))
            .field("epoch_batch", kGateBatch)
            .field("scrape_hz", 10)
            .field("ops_per_s_idle", ops_quiet)
            .field("ops_per_s_scraped", ops_scraped)
            .field("scrape_slowdown", ratio)
            .field("scrapes_served", scrapes.load())
            .field("within_gate", within ? 1 : 0);
        json_record(rec);
    }

    if (json_enabled()) json_flush();
    return 0;
}
