// Table I: the benchmark instances. Prints the paper's twelve real-world
// graphs next to the synthetic stand-ins this harness uses (the substitution
// is described in bench_common.hpp and README.md) with their actual
// generated sizes.
#include "bench_common.hpp"

using namespace dsg;
using namespace dsg::bench;

int main() {
    print_header("Table I: benchmark instances and synthetic stand-ins",
                 "Table I");
    std::printf("%-12s %-13s | %10s %9s | %12s %10s %10s\n", "Instance",
                "Type", "paper n", "paper nnz", "stand-in", "our n",
                "our nnz");
    std::printf("%-12s %-13s | %10s %9s | %12s %10s %10s\n", "", "",
                "(million)", "(million)", "", "", "(sym.)");
    for (const auto& inst : instances()) {
        // Generate once (as 1 rank) to report the true symmetrized size.
        auto edges = instance_edges(inst, 0, 1, 1);
        std::printf("%-12s %-13s | %10.0f %8.0fM | %12s %10lld %10zu\n",
                    inst.name, inst.type, inst.paper_n_million,
                    inst.paper_nnz_million, inst.rmat ? "R-MAT" : "Erdos-Renyi",
                    static_cast<long long>(1) << inst.scale, edges.size());
    }
    std::printf(
        "\nAll stand-ins are scaled by ~2^12 relative to the paper; R-MAT uses\n"
        "the Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) as in the\n"
        "paper's synthetic experiments. Graphs are read undirected (both\n"
        "directions inserted) and indices are randomly permuted, as in the\n"
        "paper's setup (Section VII-A).\n");
    return 0;
}
