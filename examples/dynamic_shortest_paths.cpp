// Dynamic multi-source shortest paths over the (min,+) semiring.
//
// Phase 1 (algebraic): new roads open / travel times drop — min-compatible
// updates maintained with Algorithm 1 (one hypersparse broadcast per batch).
// Phase 2 (general): a road closure *increases* distances, which (min,+)
// addition cannot express — the general algorithm (Algorithm 2) recomputes
// exactly the affected product entries, using the Bloom filter matrix to ship
// only the relevant rows/columns.
//
// Run: ./build/examples/example_dynamic_shortest_paths
#include <cstdio>

#include "core/general_spgemm.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"

using namespace dsg;

int main() {
    constexpr int kRanks = 4;
    constexpr sparse::index_t kN = 600;
    const std::vector<sparse::index_t> kSources{0, 17, 99};

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        auto feed = [&](std::vector<sparse::Triple<double>> ts) {
            return comm.rank() == 0 ? ts : std::vector<sparse::Triple<double>>{};
        };

        // A weighted sparse road network.
        auto roads = graph::simplify(graph::erdos_renyi_edges(kN, 3000, 5));
        const std::size_t half = roads.size() / 2;

        // ---- Phase 1: algebraic decreases --------------------------------
        graph::DynamicMultiSourceProduct msp(grid, kN, kSources);
        msp.initialize(feed({roads.begin(), roads.begin() + half}));
        // global_nnz() is collective — call it on every rank, print on one.
        std::size_t reachable = msp.distances().global_nnz();
        if (comm.rank() == 0)
            std::printf("phase 1: %zu reachable one-hop pairs from %zu sources\n",
                        reachable, kSources.size());

        msp.apply_decreases(feed({roads.begin() + half, roads.end()}));
        reachable = msp.distances().global_nnz();
        if (comm.rank() == 0)
            std::printf("after opening %zu new roads: %zu reachable pairs\n",
                        roads.size() - half, reachable);

        // ---- Phase 2: a general update (closure) -------------------------
        // Rebuild state with Bloom filter F so Algorithm 2 can run.
        auto A = core::build_dynamic_matrix<sparse::MinPlus<double>>(
            grid, kN, kN, feed(roads));
        auto S = graph::source_selector(grid, kN, kSources);
        core::DistDynamicMatrix<double> D(grid,
                                          static_cast<sparse::index_t>(
                                              kSources.size()),
                                          kN);
        core::DistDynamicMatrix<std::uint64_t> F(
            grid, static_cast<sparse::index_t>(kSources.size()), kN);
        core::SummaOptions sopts;
        sopts.bloom_out = &F;
        core::summa<sparse::MinPlus<double>>(D, S, A, sopts);

        // Close the first 20 roads: deletion = general update of the right
        // operand of D = S*A.
        std::vector<sparse::Triple<double>> closures(roads.begin(),
                                                     roads.begin() + 20);
        auto Bstar = core::build_update_matrix(grid, kN, kN, feed(closures));
        core::DistDcsr<double> Sstar(
            grid, static_cast<sparse::index_t>(kSources.size()), kN);
        auto Dstar = core::compute_pattern(S, Sstar, A, Bstar);
        core::mask_delete(A, Bstar);

        auto stats = core::general_dynamic_spgemm<sparse::MinPlus<double>>(
            D, F, S, A, Dstar);
        const std::size_t pairs_now = D.global_nnz();  // collective
        if (comm.rank() == 0) {
            std::printf(
                "phase 2: closed 20 roads; %zu product entries recomputed\n",
                stats.cstar_nnz_global);
            std::printf(
                "Bloom filter shipped %zu of %zu selector non-zeros "
                "(%.0f%% filtered away)\n",
                stats.ar_nnz_global, stats.aprime_nnz_global,
                100.0 * (1.0 - static_cast<double>(stats.ar_nnz_global) /
                                   static_cast<double>(
                                       stats.aprime_nnz_global == 0
                                           ? 1
                                           : stats.aprime_nnz_global)));
            std::printf("reachable pairs now: %zu\n", pairs_now);
        }
    });
    return 0;
}
