// Dynamic triangle counting on a streaming R-MAT graph.
//
// Maintains A and C = A*A under edge-insertion batches with the algebraic
// dynamic SpGEMM; after each batch the exact triangle count is one scalar
// all-reduce away. Compares the running time of the dynamic maintenance
// against recomputing the masked product from scratch (the paper's
// data-analytics motivation: don't recompute what barely changed).
//
// Run: ./build/examples/example_dynamic_triangle_counting
#include <chrono>
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"

using namespace dsg;
using Clock = std::chrono::steady_clock;

int main() {
    constexpr int kRanks = 4;
    constexpr int kScale = 10;  // 1024 vertices
    constexpr std::size_t kEdges = 6000;
    constexpr int kBatches = 4;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const sparse::index_t n = sparse::index_t{1} << kScale;

        // Rank 0 generates the stream; edges are undirected and weight 1.
        auto raw = graph::simplify(graph::rmat_edges(kScale, kEdges, 1234));
        for (auto& e : raw) e.value = 1.0;
        std::vector<sparse::Triple<double>> undirected;
        for (const auto& e : raw)
            if (e.row < e.col) undirected.push_back(e);
        auto both_dirs = [](const std::vector<sparse::Triple<double>>& es) {
            std::vector<sparse::Triple<double>> out;
            for (const auto& e : es) {
                out.push_back(e);
                out.push_back({e.col, e.row, e.value});
            }
            return out;
        };
        auto feed = [&](std::vector<sparse::Triple<double>> ts) {
            return comm.rank() == 0 ? ts : std::vector<sparse::Triple<double>>{};
        };

        const std::size_t half = undirected.size() / 2;
        graph::DynamicTriangleCounter counter(grid, n);
        counter.initialize(feed(both_dirs(
            {undirected.begin(), undirected.begin() + half})));
        const double initial_tri = counter.count();  // collective
        if (comm.rank() == 0)
            std::printf("initial graph: %zu undirected edges, %.0f triangles\n",
                        half, initial_tri);

        const std::size_t rest = undirected.size() - half;
        for (int b = 0; b < kBatches; ++b) {
            const std::size_t lo = half + b * rest / kBatches;
            const std::size_t hi = half + (b + 1) * rest / kBatches;
            std::vector<sparse::Triple<double>> batch(
                undirected.begin() + lo, undirected.begin() + hi);

            comm.barrier();
            const auto t0 = Clock::now();
            counter.insert_edges(feed(both_dirs(batch)));
            const double tri = counter.count();
            comm.barrier();
            const double dyn_ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();

            // Static comparison: recount from the adjacency matrix alone
            // (masked SUMMA recomputation of the whole product).
            comm.barrier();
            const auto t1 = Clock::now();
            const double tri_static = graph::triangle_count(counter.adjacency());
            comm.barrier();
            const double stat_ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t1)
                    .count();

            if (comm.rank() == 0) {
                std::printf(
                    "batch %d (+%zu edges): %.0f triangles | dynamic %.1f ms, "
                    "static recount %.1f ms%s\n",
                    b, hi - lo, tri, dyn_ms, stat_ms,
                    tri == tri_static ? "" : "  [MISMATCH!]");
            }
        }
    });
    return 0;
}
