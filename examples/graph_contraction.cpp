// Dynamic graph contraction: C = S^T A S maintained under streaming edges.
//
// Contraction (collapsing clusters into super-vertices and summing edge
// weights between them) is one of the two SpGEMM applications the paper's
// introduction highlights. Here a streaming R-MAT graph is contracted onto
// 64 clusters; both products of the chain T = A S and C = S^T T follow the
// updates dynamically — stage 1 via Algorithm 1, stage 2 via its transposed
// variant (Section V-C) — so only hypersparse matrices ever cross ranks.
//
// Run: ./build/examples/example_graph_contraction
#include <chrono>
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"

using namespace dsg;
using Clock = std::chrono::steady_clock;

int main() {
    constexpr int kRanks = 4;
    constexpr int kScale = 12;  // 4096 vertices
    constexpr sparse::index_t kClusters = 64;
    constexpr std::size_t kEdges = 24'000;
    constexpr int kBatches = 4;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const sparse::index_t n = sparse::index_t{1} << kScale;

        // Clusters: round-robin assignment (a community detector would
        // provide this in a real pipeline).
        std::vector<sparse::index_t> assignment(static_cast<std::size_t>(n));
        for (sparse::index_t v = 0; v < n; ++v)
            assignment[static_cast<std::size_t>(v)] = v % kClusters;
        graph::DynamicContraction contraction(grid, n, kClusters, assignment);

        auto edges = graph::simplify(graph::rmat_edges(kScale, kEdges, 77));
        auto feed = [&](std::vector<sparse::Triple<double>> ts) {
            return comm.rank() == 0 ? ts : std::vector<sparse::Triple<double>>{};
        };

        const std::size_t per_batch = edges.size() / kBatches;
        for (int b = 0; b < kBatches; ++b) {
            const std::size_t lo = b * per_batch;
            const std::size_t hi =
                b == kBatches - 1 ? edges.size() : (b + 1) * per_batch;
            std::vector<sparse::Triple<double>> batch(edges.begin() + lo,
                                                      edges.begin() + hi);
            comm.barrier();
            const auto t0 = Clock::now();
            contraction.insert_edges(feed(batch));
            comm.barrier();
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();

            const std::size_t super_edges = contraction.contracted().global_nnz();
            double total_weight = 0.0;
            contraction.contracted().local().for_each(
                [&](sparse::index_t, sparse::index_t, double w) {
                    total_weight += w;
                });
            total_weight = comm.allreduce<double>(
                total_weight, [](double a, double b) { return a + b; });
            if (comm.rank() == 0)
                std::printf(
                    "batch %d (+%zu edges, %.1f ms): contracted graph has "
                    "%zu/%lld super-edges, total weight %.1f\n",
                    b, hi - lo, ms, super_edges,
                    static_cast<long long>(kClusters) * kClusters,
                    total_weight);
        }
    });
    return 0;
}
