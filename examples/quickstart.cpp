// Quickstart: the end-to-end tour of the public API.
//
//   1. start a 2x2 rank grid (the MPI substitute runs ranks as threads);
//   2. build a distributed dynamic matrix from scattered edge tuples;
//   3. apply an insertion batch through the two-phase redistribution;
//   4. compute C = A*B statically (SUMMA), then keep it up to date with the
//      algebraic dynamic SpGEMM while more batches stream in;
//   5. print non-zero counts and the communication volume both paths used.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart
#include <cinttypes>
#include <cstdio>
#include <random>

#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"

using namespace dsg;

int main() {
    constexpr int kRanks = 4;  // 2x2 process grid
    constexpr sparse::index_t kN = 2000;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);

        // Every rank contributes its own slice of edges, with no knowledge of
        // the distribution — exactly the update model of the paper.
        auto edges = graph::erdos_renyi_edges(
            kN, 4000, 42 + static_cast<std::uint64_t>(comm.rank()));

        // A and B: distributed dynamic matrices (DHB blocks per rank).
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, kN, kN, edges);
        auto B = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, kN, kN, graph::erdos_renyi_edges(
                              kN, 4000, 77 + static_cast<std::uint64_t>(comm.rank())));
        // global_nnz() is collective: every rank must call it, so hoist it
        // out of the rank-0-only print.
        const std::size_t a_nnz = A.global_nnz();
        const std::size_t b_nnz = B.global_nnz();
        if (comm.rank() == 0)
            std::printf("built A (nnz %zu) and B (nnz %zu) on a %dx%d grid\n",
                        a_nnz, b_nnz, grid.rows(), grid.cols());

        // Initial product, statically (sparse SUMMA).
        auto C = core::summa_multiply<sparse::PlusTimes<double>>(A, B);
        const std::size_t c_nnz = C.global_nnz();
        if (comm.rank() == 0)
            std::printf("initial C = A*B has %zu non-zeros\n", c_nnz);

        // Stream three insertion batches into A; C follows dynamically.
        std::mt19937_64 rng(7 + static_cast<std::uint64_t>(comm.rank()));
        for (int batch = 0; batch < 3; ++batch) {
            std::vector<sparse::Triple<double>> updates;
            for (int e = 0; e < 500; ++e)
                updates.push_back({static_cast<sparse::index_t>(rng() % kN),
                                   static_cast<sparse::index_t>(rng() % kN),
                                   1.0});

            comm.barrier();
            if (comm.rank() == 0) comm.stats().reset();
            comm.barrier();

            auto Astar = core::build_update_matrix(grid, kN, kN, updates);
            core::DistDcsr<double> Bstar(grid, kN, kN);  // B is static
            core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
                C, A, Astar, B, Bstar);
            core::add_update<sparse::PlusTimes<double>>(A, Astar);

            comm.barrier();
            const auto dyn_bytes = comm.stats().snapshot().total_bytes();
            if (comm.rank() == 0) comm.stats().reset();
            comm.barrier();
            auto C_check = core::summa_multiply<sparse::PlusTimes<double>>(A, B);
            comm.barrier();
            const auto summa_bytes = comm.stats().snapshot().total_bytes();

            const std::size_t an = A.global_nnz();
            const std::size_t cn = C.global_nnz();
            if (comm.rank() == 0)
                std::printf(
                    "batch %d: nnz(A) %zu, nnz(C) %zu | dynamic moved %" PRIu64
                    " bytes vs %" PRIu64 " for a static recompute (%.1fx less)\n",
                    batch, an, cn, dyn_bytes,
                    summa_bytes,
                    static_cast<double>(summa_bytes) /
                        static_cast<double>(dyn_bytes == 0 ? 1 : dyn_bytes));
        }
    });
    return 0;
}
