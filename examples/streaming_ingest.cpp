// Streaming ingestion: the data-structure side of the paper in one program.
//
// Builds the adjacency matrix of an R-MAT graph, then streams batches of
// insertions, value updates (MERGE) and deletions (MASK) through the
// two-phase redistribution into the distributed dynamic matrix, printing
// per-batch timings, the phase breakdown (the paper's Fig. 7 categories) and
// a comparison against the CombBLAS-style rebuild baseline.
//
// Run: ./build/examples/example_streaming_ingest
#include <chrono>
#include <cstdio>

#include "baseline/static_rebuild.hpp"
#include "core/update_ops.hpp"
#include "graph/generators.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"

using namespace dsg;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
    constexpr int kRanks = 4;
    constexpr int kScale = 12;  // 4096 vertices
    constexpr std::size_t kEdges = 40'000;
    constexpr int kBatches = 5;
    constexpr std::size_t kBatchSize = 2'000;  // per rank

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const sparse::index_t n = sparse::index_t{1} << kScale;
        std::mt19937_64 rng(31 + static_cast<std::uint64_t>(comm.rank()));

        // Initial load: each rank contributes an equal slice of the graph.
        auto mine = graph::rmat_edges(kScale, kEdges / kRanks,
                                      100 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 9999);  // identical on all ranks
        perm.apply(mine);

        comm.barrier();
        auto t0 = Clock::now();
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n, mine);
        comm.barrier();
        const double construct_ms = ms_since(t0);
        const std::size_t built_nnz = A.global_nnz();  // collective
        if (comm.rank() == 0)
            std::printf("construction: %zu non-zeros in %.1f ms\n", built_nnz,
                        construct_ms);

        baseline::StaticRebuildMatrix<double> combblas_like(grid, n, n);
        combblas_like.construct<sparse::PlusTimes<double>>(mine);

        par::Profiler::reset();
        par::Profiler::set_enabled(true);
        auto draw_batch = [&] {
            std::vector<sparse::Triple<double>> batch;
            batch.reserve(kBatchSize);
            for (std::size_t e = 0; e < kBatchSize; ++e)
                batch.push_back({static_cast<sparse::index_t>(rng() % n),
                                 static_cast<sparse::index_t>(rng() % n), 1.0});
            return batch;
        };

        for (int b = 0; b < kBatches; ++b) {
            auto batch = draw_batch();

            comm.barrier();
            t0 = Clock::now();
            auto U = core::build_update_matrix(grid, n, n, batch);
            core::add_update<sparse::PlusTimes<double>>(A, U);
            comm.barrier();
            const double dyn_ms = ms_since(t0);

            comm.barrier();
            t0 = Clock::now();
            combblas_like.insert_batch<sparse::PlusTimes<double>>(batch);
            comm.barrier();
            const double rebuild_ms = ms_since(t0);

            if (comm.rank() == 0)
                std::printf(
                    "insert batch %d (%zu/rank): dynamic %.2f ms, "
                    "rebuild-baseline %.2f ms (%.1fx)\n",
                    b, kBatchSize, dyn_ms, rebuild_ms,
                    rebuild_ms / (dyn_ms > 0 ? dyn_ms : 1e-9));
        }

        // Value updates and deletions on existing entries.
        auto existing = A.gather_global();
        std::vector<sparse::Triple<double>> upd;
        std::vector<sparse::Triple<double>> del;
        if (comm.rank() == 0) {
            for (std::size_t x = 0; x < existing.size() && upd.size() < 4000;
                 x += 7)
                upd.push_back({existing[x].row, existing[x].col, 2.5});
            for (std::size_t x = 3; x < existing.size() && del.size() < 4000;
                 x += 11)
                del.push_back(existing[x]);
        }
        comm.barrier();
        t0 = Clock::now();
        auto Uu = core::build_update_matrix(grid, n, n, upd);
        core::merge_update(A, Uu);
        comm.barrier();
        const double upd_ms = ms_since(t0);
        t0 = Clock::now();
        auto Ud = core::build_update_matrix(grid, n, n, del);
        core::mask_delete(A, Ud);
        comm.barrier();
        const double del_ms = ms_since(t0);
        par::Profiler::set_enabled(false);

        const std::size_t final_nnz = A.global_nnz();  // collective
        if (comm.rank() == 0) {
            std::printf("value updates (MERGE): %.2f ms; deletions (MASK): %.2f ms\n",
                        upd_ms, del_ms);
            std::printf("final nnz: %zu\n", final_nnz);
            std::printf("\nphase breakdown across all batches (Fig. 7 categories):\n");
            for (auto ph : {par::Phase::RedistSort, par::Phase::RedistComm,
                            par::Phase::MemManagement, par::Phase::LocalConstruct,
                            par::Phase::LocalAddition}) {
                std::printf("  %-18s %8.2f ms\n",
                            std::string(par::phase_name(ph)).c_str(),
                            par::Profiler::total_seconds(ph) * 1e3);
            }
        }
    });
    return 0;
}
