// Streaming ingestion on the epoch engine: concurrent producers to a live
// distributed matrix in one program.
//
// Each of the 4 ranks starts 2 producer threads that push ADD/MERGE/MASK
// stream ops into the rank's bounded update queue while the rank thread
// pumps the EpochEngine: epochs trigger on batch size or deadline, drain the
// queue, and apply the drained ops collectively through the paper's update
// machinery (build A*, then ADD/MERGE/MASK). The mixed read/write scenario
// additionally issues point reads through the engine's consistent reader
// snapshot while epochs are being applied.
//
// The final section is the live analytics layer (src/analytics/): an
// AnalyticsHub with a live triangle count and a live multi-source distance
// maintainer subscribes to the engine's epoch boundaries, and the
// analytics-read scenario's readers poll the derived values while ingestion
// is in full flight.
//
// With --checkpoint-dir=DIR the program instead runs the durable variant:
// the live-analytics hub streams under a persist::DurabilityManager
// (write-ahead op log + epoch-consistent checkpoints), so a kill -9 at ANY
// point is recoverable. Adding --restore first recovers matrix, version,
// and maintained analytics from DIR and then continues streaming on top —
// the kill-and-resume demo the CI crash-recovery job drives:
//
//   ./example_streaming_ingest --checkpoint-dir=/tmp/d --writes=200000 &
//   kill -9 $!; ./example_streaming_ingest --checkpoint-dir=/tmp/d --restore
//
// With --serve-queries the program runs the query-serving tier (src/serve/)
// instead: a SnapshotStore publishes immutable snapshots at epoch
// boundaries while producers stream the serving-read-heavy scenario, and
// every read becomes a typed query (edge-exists / degree / k-hop /
// analytics-read) submitted to a shared QueryExecutor with a result cache
// — rate-limited by --query-rate=N (queries/s per producer thread).
// Serving composes with durability: --serve-queries --checkpoint-dir=DIR
// --restore recovers first and serves straight from the restored state
// (the initial snapshot IS the recovered matrix + analytics).
//
// --target-qps=N adds an external paced client to the serving run: a
// coordinated-omission-safe load generator (serve/load_gen.hpp) submits
// queries on a fixed arrival schedule against the background executor and
// reports on-arrival p50/p99/p999 against --slo-ms=MS. --events-out=FILE
// arms the anomaly watchdog (obs/watchdog.hpp) over the global registry
// and streams its structured events as JSONL alongside the metrics;
// scripts/check-trace.py validates both.
//
// --http-port=N (0 = ephemeral, bound port printed on stdout) raises the
// live introspection plane (obs/introspection.hpp): rank 0 serves the
// federated cluster view — /metrics, /metrics.json, /healthz, /readyz,
// /status, /trace, /events, /flight — and in serving mode every other
// rank serves its own per-rank view on an ephemeral port.
// --induce-stall-ms=MS arms the CI readiness drill: a one-shot mid-run
// checkpoint stall (non-durable runs) or a post-recovery hold (restore
// runs) that flips /readyz 200 -> 503 -> 200; scripts/check-endpoints.py
// validates all of it.
//
// Run: ./build/examples/example_streaming_ingest
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "core/update_ops.hpp"
#include "graph/generators.hpp"
#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/federate.hpp"
#include "obs/introspection.hpp"
#include "obs/metrics.hpp"
#include "obs/mirrors.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"
#include "persist/durability.hpp"
#include "persist/recovery.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/load_gen.hpp"
#include "serve/query_executor.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

using namespace dsg;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;

namespace {

constexpr int kRanks = 4;
constexpr int kProducers = 2;  // per rank
constexpr int kScale = 12;     // 4096 vertices
constexpr std::size_t kInitialEdges = 40'000;
constexpr std::size_t kWritesPerProducer = 6'000;
constexpr std::size_t kQueueCapacity = 4'096;  // every mode's engine ring

/// Rank 0's /metrics view: the latest federated cluster snapshot, swapped
/// in whole by the epoch observer and read by the HTTP worker threads.
class FederatedView {
public:
    void set(obs::MetricsSnapshot snap) {
        auto p = std::make_shared<const obs::MetricsSnapshot>(std::move(snap));
        std::lock_guard lock(mx_);
        snap_ = std::move(p);
    }
    [[nodiscard]] std::shared_ptr<const obs::MetricsSnapshot> get() const {
        std::lock_guard lock(mx_);
        return snap_;
    }

private:
    mutable std::mutex mx_;
    std::shared_ptr<const obs::MetricsSnapshot> snap_;
};

/// What the streaming modes feed back into the introspection plane
/// (--http-port): shared across the rank threads, so plain atomics.
struct IntroContext {
    obs::IntrospectionServer* server = nullptr;  ///< rank 0's, started in main
    FederatedView* fed_view = nullptr;
    obs::Watchdog* fed_watchdog = nullptr;  ///< skew rules, federated snaps
    std::atomic<std::uint64_t> engine_version{0};  ///< newest applied version
    std::atomic<std::uint64_t> federations{0};     ///< merges completed
    std::atomic<std::uint64_t> stall_at{0};  ///< version pinned for the stall
    long stall_ms = 0;                       ///< --induce-stall-ms
};

/// Streams one scenario into A and reports this rank's engine stats.
void run_scenario(par::Comm& comm, core::DistDynamicMatrix<double>& A,
                  stream::Scenario scenario) {
    stream::WorkloadConfig wl;
    wl.scenario = scenario;
    wl.n = A.shape().nrows();
    wl.writes = kWritesPerProducer;
    wl.seed = 1000 + static_cast<std::uint64_t>(comm.rank()) * 17 +
              static_cast<std::uint64_t>(scenario);

    stream::EngineConfig cfg;
    // A small ring so producers feel backpressure and epochs interleave with
    // pushes (reads then observe earlier writes; hits are bounded by the
    // 1/p block-ownership fraction — readers only see their rank's block).
    cfg.queue_capacity = 4'096;
    cfg.epoch_batch = 2'000;
    cfg.epoch_deadline = std::chrono::milliseconds(5);
    Engine engine(A, cfg);

    // Register before spawning so the queue cannot close early.
    for (int prod = 0; prod < kProducers; ++prod)
        engine.queue().register_producer();

    std::atomic<std::uint64_t> read_probes{0}, read_hits{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int prod = 0; prod < kProducers; ++prod) {
        producers.emplace_back([&, prod] {
            std::uint64_t probes = 0, hits = 0;
            stream::drive_producer(
                engine, stream::WorkloadProducer(wl, prod),
                [&](sparse::index_t row, sparse::index_t col) {
                    ++probes;
                    hits += engine.with_snapshot([&](auto snap) {
                        return snap.contains(row, col) ? 1u : 0u;
                    });
                });
            read_probes.fetch_add(probes);
            read_hits.fetch_add(hits);
        });
    }

    engine.run();  // collective: pumps epochs until all queues are exhausted
    for (auto& t : producers) t.join();

    const std::size_t nnz = A.global_nnz();  // collective
    if (comm.rank() == 0) {
        const auto& s = engine.stats();
        std::printf("%-22s %s\n", stream::scenario_name(scenario),
                    s.summary().c_str());
        std::printf("%-22s   nnz now %zu", "", nnz);
        const std::uint64_t probes = read_probes.load();
        if (probes > 0)
            std::printf(", reads %llu (%.0f%% hit)",
                        static_cast<unsigned long long>(probes),
                        100.0 * static_cast<double>(read_hits.load()) /
                            static_cast<double>(probes));
        std::printf("\n");
    }
}

/// The live analytics layer: a fresh matrix streamed under the
/// analytics-read scenario while a hub of maintainers — live triangle count
/// and live multi-source distances — is driven at every epoch boundary, and
/// reader polls sample the derived values concurrently with ingestion.
void run_live_analytics(par::Comm& comm, core::ProcessGrid& grid) {
    const sparse::index_t n = 1024;
    const std::vector<sparse::index_t> sources = {0, 1, 2, 3};
    core::DistDynamicMatrix<double> B(grid, n, n);

    analytics::AnalyticsHub<double> hub;
    auto& triangles = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
    auto& distances =
        hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);

    stream::WorkloadConfig wl;
    wl.scenario = stream::Scenario::AnalyticsRead;
    wl.n = n;
    wl.writes = 3'000;
    wl.window = 400;
    wl.read_fraction = 0.3;
    wl.seed = 7'000 + static_cast<std::uint64_t>(comm.rank());

    stream::EngineConfig cfg;
    cfg.queue_capacity = 4'096;
    cfg.epoch_batch = 1'024;
    cfg.epoch_deadline = std::chrono::milliseconds(5);
    Engine engine(B, cfg);
    hub.attach(engine);

    for (int prod = 0; prod < kProducers; ++prod)
        engine.queue().register_producer();

    std::atomic<std::uint64_t> polls{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int prod = 0; prod < kProducers; ++prod) {
        producers.emplace_back([&, prod] {
            std::uint64_t my_polls = 0;
            stream::drive_producer(
                engine, stream::WorkloadProducer(wl, prod),
                [&](sparse::index_t, sparse::index_t) {
                    // An analytics-read "read" polls the derived values
                    // (lock-free) instead of point-probing the matrix.
                    (void)triangles.snapshot();
                    (void)distances.snapshot();
                    ++my_polls;
                });
            polls.fetch_add(my_polls);
        });
    }

    engine.run();  // collective; drives the hub at every applied epoch
    for (auto& t : producers) t.join();

    const std::size_t nnz = B.global_nnz();  // collective
    if (comm.rank() == 0) {
        std::printf("\nlive analytics (%s):\n",
                    stream::scenario_name(wl.scenario));
        std::printf("  %s\n", engine.stats().summary().c_str());
        std::printf("  matrix nnz %zu, derived-value polls %llu\n", nnz,
                    static_cast<unsigned long long>(polls.load()));
        for (std::size_t k = 0; k < hub.size(); ++k) {
            const auto& st = hub.stats(k);
            std::printf(
                "  %-18s value %10.1f   per epoch: mean %6.2f ms, "
                "max %6.2f ms\n",
                hub[k].name(), hub[k].snapshot(), st.mean_ms(), st.max_ms);
        }
        std::printf("  distances reached %llu (source,vertex) pairs\n",
                    static_cast<unsigned long long>(distances.reached_pairs()));
    }
}

/// The durable variant: the live-analytics hub under a DurabilityManager.
/// With restore == true, state is first recovered from `dir` (kill-and-
/// resume); the run then continues appending to the same durable state.
void run_durable(par::Comm& comm, core::ProcessGrid& grid,
                 const std::string& dir, bool restore, std::size_t writes,
                 IntroContext* intro) {
    using Manager = persist::DurabilityManager<SR>;
    const sparse::index_t n = 1024;
    const std::vector<sparse::index_t> sources = {0, 1, 2, 3};
    core::DistDynamicMatrix<double> B(grid, n, n);

    analytics::AnalyticsHub<double> hub;
    auto& triangles = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
    auto& distances =
        hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);

    std::uint64_t base_version = 0;
    if (restore) {
        persist::RecoveryOptions ropts;
        ropts.dir = dir;
        const auto res = persist::recover<SR>(B, ropts, &hub);
        base_version = res.recovered_version;
        const std::size_t nnz = B.global_nnz();  // collective
        if (comm.rank() == 0)
            std::printf(
                "recovery OK: version %llu (checkpoint %llu + %llu replayed "
                "epochs, %llu ops this rank%s), nnz %zu, triangles %.0f\n",
                static_cast<unsigned long long>(res.recovered_version),
                static_cast<unsigned long long>(res.checkpoint_version),
                static_cast<unsigned long long>(res.replayed_epochs),
                static_cast<unsigned long long>(res.replayed_ops),
                res.truncated_tail ? ", torn tail truncated" : "",
                nnz, triangles.snapshot());
    }

    stream::WorkloadConfig wl;
    wl.scenario = stream::Scenario::CheckpointUnderLoad;
    wl.n = n;
    wl.writes = writes;
    wl.window = 600;
    wl.seed = 11'000 + static_cast<std::uint64_t>(comm.rank()) +
              (restore ? 7'777 : 0);

    stream::EngineConfig cfg;
    cfg.queue_capacity = 4'096;
    cfg.epoch_batch = 1'024;
    cfg.epoch_deadline = std::chrono::milliseconds(5);
    cfg.initial_version = base_version;
    Engine engine(B, cfg);
    hub.attach(engine);

    if (intro != nullptr) {
        engine.add_epoch_observer([intro, r = comm.rank()](std::uint64_t v) {
            if (r == 0) intro->engine_version.store(v, std::memory_order_relaxed);
        });
        if (restore) {
            // Hold the /readyz gate down through replay (plus the drill's
            // configured stall window): the crash-recovery script asserts
            // 503 here, then 200 once streaming resumes.
            if (intro->stall_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(intro->stall_ms));
            if (comm.rank() == 0 && intro->server != nullptr)
                intro->server->set_ready(true);
        }
    }

    persist::PersistConfig pc;
    pc.dir = dir;
    pc.fsync_every = 8;
    pc.checkpoint_stride = 16;
    Manager mgr(engine, B, pc, restore ? Manager::Start::Resume
                                       : Manager::Start::Fresh,
                &hub);

    for (int prod = 0; prod < kProducers; ++prod)
        engine.queue().register_producer();
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int prod = 0; prod < kProducers; ++prod) {
        producers.emplace_back([&, prod] {
            stream::drive_producer(engine, stream::WorkloadProducer(wl, prod),
                                   [&](sparse::index_t, sparse::index_t) {
                                       (void)triangles.snapshot();
                                       (void)distances.snapshot();
                                   });
        });
    }
    engine.run();  // collective; every applied epoch is logged write-ahead
    for (auto& t : producers) t.join();

    const std::size_t nnz = B.global_nnz();  // collective
    if (comm.rank() == 0) {
        const auto& ps = mgr.stats();
        std::printf("durable streaming (%s):\n  %s\n",
                    stream::scenario_name(wl.scenario),
                    engine.stats().summary().c_str());
        std::printf(
            "  nnz %zu, triangles %.0f, distance-sum %.1f\n"
            "  durability: %llu epochs logged (%.1f KiB), %llu fsyncs, "
            "%llu checkpoints (%.1f KiB), log %.1f ms, ckpt %.1f ms\n",
            nnz, triangles.snapshot(), distances.snapshot(),
            static_cast<unsigned long long>(ps.epochs_logged),
            static_cast<double>(ps.bytes_logged) / 1024.0,
            static_cast<unsigned long long>(ps.fsyncs),
            static_cast<unsigned long long>(ps.checkpoints),
            static_cast<double>(ps.checkpoint_bytes) / 1024.0, ps.log_ms,
            ps.checkpoint_ms);
        std::printf("durable run OK\n");
    }
}

/// The query-serving tier: producers stream the serving-read-heavy scenario
/// while every read becomes a typed query against the shared SnapshotStore
/// through the QueryExecutor — rate-limited per producer so the serving
/// side models user traffic, not a spin loop. With restore == true, state
/// is recovered from `dir` first and the store's initial snapshot IS the
/// recovered matrix + analytics (serving works straight after recovery);
/// with a non-empty `dir` the run is also durable while it serves.
void run_serving(par::Comm& comm, core::ProcessGrid& grid,
                 serve::SnapshotStore<double>& store,
                 serve::QueryExecutor<double>& executor,
                 const std::string& dir, bool restore, std::size_t writes,
                 double query_rate, IntroContext* intro) {
    using Manager = persist::DurabilityManager<SR>;
    const sparse::index_t n = 1024;
    const std::vector<sparse::index_t> sources = {0, 1, 2, 3};
    core::DistDynamicMatrix<double> B(grid, n, n);

    analytics::AnalyticsHub<double> hub;
    auto& triangles = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
    hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);

    std::uint64_t base_version = 0;
    if (restore) {
        persist::RecoveryOptions ropts;
        ropts.dir = dir;
        const auto res = persist::recover<SR>(B, ropts, &hub);
        base_version = res.recovered_version;
        if (comm.rank() == 0)
            std::printf(
                "recovery OK: serving from restored version %llu "
                "(triangles %.0f)\n",
                static_cast<unsigned long long>(res.recovered_version),
                triangles.snapshot());
    }

    stream::WorkloadConfig wl;
    wl.scenario = stream::Scenario::ServingReadHeavy;
    wl.n = n;
    wl.writes = writes;
    wl.seed = 15'000 + static_cast<std::uint64_t>(comm.rank()) +
              (restore ? 7'777 : 0);

    stream::EngineConfig cfg;
    cfg.queue_capacity = 4'096;
    cfg.epoch_batch = 1'024;
    cfg.epoch_deadline = std::chrono::milliseconds(5);
    cfg.initial_version = base_version;
    Engine engine(B, cfg);
    hub.attach(engine);
    store.attach(engine, B, &hub);  // initial snapshot: the starting state

    std::unique_ptr<Manager> mgr;
    if (!dir.empty()) {
        persist::PersistConfig pc;
        pc.dir = dir;
        pc.fsync_every = 8;
        pc.checkpoint_stride = 16;
        mgr = std::make_unique<Manager>(engine, B, pc,
                                        restore ? Manager::Start::Resume
                                                : Manager::Start::Fresh,
                                        &hub);
    }

    // Live introspection plane (--http-port): every rank mirrors its own
    // engine-local stats into a small private registry and federates it at
    // a fixed epoch cadence (collective, obs/federate.hpp). Rank 0 swaps
    // the merged cluster snapshot into its /metrics view and feeds the
    // rank-imbalance watchdog; ranks > 0 serve their private view on an
    // ephemeral port. The process-wide registry and its file exporters
    // stay untouched. Declaration order matters: rank_server is declared
    // after rank_reg so its drain-on-destruct runs while the registry its
    // handlers read is still alive.
    std::unique_ptr<obs::Registry> rank_reg;
    std::unique_ptr<obs::IntrospectionServer> rank_server;
    if (intro != nullptr) {
        rank_reg = std::make_unique<obs::Registry>();
        if (comm.rank() != 0) {
            rank_server = std::make_unique<obs::IntrospectionServer>();
            obs::IntrospectionServer::Config rcfg;
            rcfg.registry = rank_reg.get();
            rank_server->start(std::move(rcfg));
            std::printf(
                "introspection: rank %d serving http://127.0.0.1:%u "
                "(rank view)\n",
                comm.rank(), rank_server->port());
            std::fflush(stdout);
        }
        engine.add_epoch_observer([&comm, &engine, intro,
                                   reg = rank_reg.get()](std::uint64_t v) {
            const auto& st = engine.stats();
            reg->gauge("stream_ops_applied")
                .set(static_cast<std::int64_t>(st.local_ops));
            reg->gauge("stream_epochs_applied")
                .set(static_cast<std::int64_t>(st.applied_epochs));
            reg->gauge("stream_queue_depth")
                .set(static_cast<std::int64_t>(engine.queue().size()));
            if (comm.rank() == 0)
                intro->engine_version.store(v, std::memory_order_relaxed);
            if (v % 4 != 0) return;  // federation cadence (identical on
                                     // every rank: v is the collective
                                     // epoch version)
            obs::MetricsSnapshot fed = obs::federate(comm, reg->snapshot());
            if (comm.rank() == 0) {
                if (intro->fed_watchdog != nullptr)
                    intro->fed_watchdog->evaluate(fed);
                if (intro->fed_view != nullptr)
                    intro->fed_view->set(std::move(fed));
                intro->federations.fetch_add(1, std::memory_order_relaxed);
            }
        });
        // The induced checkpoint stall (--induce-stall-ms, non-durable
        // runs only — durable runs own the checkpoint hook): the first
        // rank past the arming delay pins the stall to its current
        // version, and every rank whose hook sees that version sleeps.
        // Ranks that miss the pin block on the next collective anyway, so
        // the whole grid stalls once: queues saturate, the Critical
        // ingest-stall rule fires, /readyz holds 503 until the backlog
        // drains and the rule clears.
        if (intro->stall_ms > 0 && dir.empty()) {
            const auto armed_at = std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(800);
            engine.set_checkpoint_hook([intro, armed_at](std::uint64_t v) {
                if (std::chrono::steady_clock::now() < armed_at) return;
                std::uint64_t expected = 0;
                intro->stall_at.compare_exchange_strong(
                    expected, v, std::memory_order_acq_rel);
                if (intro->stall_at.load(std::memory_order_acquire) == v)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(intro->stall_ms));
            });
        }
        if (restore) {
            if (comm.rank() == 0 && intro->server != nullptr)
                intro->server->set_ready(true);  // recovery replay is done
        }
    }

    const auto query_gap = std::chrono::microseconds(
        query_rate > 0 ? static_cast<long>(1e6 / query_rate) : 0);
    for (int prod = 0; prod < kProducers; ++prod)
        engine.queue().register_producer();
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int prod = 0; prod < kProducers; ++prod) {
        producers.emplace_back([&, prod] {
            std::uint64_t k = 0;
            stream::drive_producer(
                engine, stream::WorkloadProducer(wl, prod),
                [&](sparse::index_t row, sparse::index_t col) {
                    serve::Query q;
                    const std::uint64_t pick = k++;
                    switch (pick % 4) {
                        case 0:
                            q = {serve::QueryKind::EdgeExists, row, col, 1, ""};
                            break;
                        case 1:
                            q = {serve::QueryKind::Degree, row, 0, 1, ""};
                            break;
                        case 2:
                            q = {serve::QueryKind::KHop, row, 0, 2, ""};
                            break;
                        default:
                            q = {serve::QueryKind::AnalyticsRead, 0, 0, 1,
                                 pick % 8 == 3 ? "triangles"
                                               : "distance-sum"};
                            break;
                    }
                    (void)executor.submit(std::move(q));  // fire and forget
                    if (query_gap.count() > 0)
                        std::this_thread::sleep_for(query_gap);
                });
        });
    }
    engine.run();  // collective; publishes snapshots at epoch boundaries
    for (auto& t : producers) t.join();

    const std::size_t nnz = B.global_nnz();  // collective
    comm.barrier();
    if (comm.rank() == 0) {
        std::printf("query serving (%s%s):\n  %s\n",
                    stream::scenario_name(wl.scenario),
                    restore ? ", restored" : dir.empty() ? "" : ", durable",
                    engine.stats().summary().c_str());
        std::printf(
            "  nnz %zu, snapshots published %llu (retained %zu, live %lld), "
            "current version %llu\n",
            nnz, static_cast<unsigned long long>(store.published()),
            store.retained(), static_cast<long long>(store.live_snapshots()),
            static_cast<unsigned long long>(
                store.current_version().value_or(0)));
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string checkpoint_dir;
    std::string metrics_out;
    std::string trace_out;
    std::string events_out;
    long metrics_interval = 1'000;  // ms
    bool restore = false;
    bool serve_queries = false;
    double query_rate = 2'000;  // queries/s per producer thread
    double target_qps = 0;      // 0 = no paced external client
    double slo_ms = 25;         // on-arrival SLO for the paced client
    std::size_t writes = 0;     // 0 = mode default
    long http_port = -1;        // -1 = no introspection plane; 0 = ephemeral
    long induce_stall_ms = 0;   // readiness-flip drill (CI)
    for (int a = 1; a < argc; ++a) {
        const char* arg = argv[a];
        if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
            checkpoint_dir = arg + 17;
            if (checkpoint_dir.empty()) {
                std::fprintf(stderr, "--checkpoint-dir needs a value\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--restore") == 0) {
            restore = true;
        } else if (std::strcmp(arg, "--serve-queries") == 0) {
            serve_queries = true;
        } else if (std::strncmp(arg, "--query-rate=", 13) == 0) {
            query_rate = std::strtod(arg + 13, nullptr);
            if (!(query_rate > 0)) {
                std::fprintf(stderr, "--query-rate needs a value > 0\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--target-qps=", 13) == 0) {
            target_qps = std::strtod(arg + 13, nullptr);
            if (!(target_qps > 0)) {
                std::fprintf(stderr, "--target-qps needs a value > 0\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--slo-ms=", 9) == 0) {
            slo_ms = std::strtod(arg + 9, nullptr);
            if (!(slo_ms > 0)) {
                std::fprintf(stderr, "--slo-ms needs a value > 0\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--events-out=", 13) == 0) {
            events_out = arg + 13;
            if (events_out.empty()) {
                std::fprintf(stderr, "--events-out needs a value\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--writes=", 9) == 0) {
            writes = static_cast<std::size_t>(
                std::strtoull(arg + 9, nullptr, 10));
        } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
            metrics_out = arg + 14;
            if (metrics_out.empty()) {
                std::fprintf(stderr, "--metrics-out needs a value\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--metrics-interval=", 19) == 0) {
            metrics_interval = std::strtol(arg + 19, nullptr, 10);
            if (metrics_interval <= 0) {
                std::fprintf(stderr,
                             "--metrics-interval needs a value > 0 (ms)\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            trace_out = arg + 12;
            if (trace_out.empty()) {
                std::fprintf(stderr, "--trace-out needs a value\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--http-port=", 12) == 0) {
            http_port = std::strtol(arg + 12, nullptr, 10);
            if (http_port < 0 || http_port > 65'535) {
                std::fprintf(stderr,
                             "--http-port needs a value in [0, 65535] "
                             "(0 = ephemeral)\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--induce-stall-ms=", 18) == 0) {
            induce_stall_ms = std::strtol(arg + 18, nullptr, 10);
            if (induce_stall_ms <= 0) {
                std::fprintf(stderr,
                             "--induce-stall-ms needs a value > 0\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--checkpoint-dir=DIR [--restore] "
                         "[--writes=N]] [--serve-queries [--query-rate=N] "
                         "[--target-qps=N [--slo-ms=MS]]] "
                         "[--metrics-out=FILE [--metrics-interval=MS]] "
                         "[--events-out=FILE] [--trace-out=FILE] "
                         "[--http-port=N [--induce-stall-ms=MS]]\n",
                         argv[0]);
            return 2;
        }
    }
    if (restore && checkpoint_dir.empty()) {
        std::fprintf(stderr, "--restore requires --checkpoint-dir=DIR\n");
        return 2;
    }

    // Observability sidecars: a periodic exporter snapshotting the global
    // registry (JSONL or Prometheus by extension — SIGKILL-survivable in
    // JSONL, which the crash-recovery CI drill relies on) and the epoch-
    // tagged span trace written as Chrome trace JSON on exit.
    if (!trace_out.empty()) par::Profiler::set_trace_enabled(true);
    std::unique_ptr<obs::MetricsExporter> exporter;
    if (!metrics_out.empty() || !events_out.empty()) {
        obs::MetricsExporter::Config mcfg;
        mcfg.path = metrics_out;
        mcfg.interval_ms = metrics_interval;
        mcfg.format = obs::format_for_path(metrics_out);
        mcfg.events_path = events_out;
        exporter = std::make_unique<obs::MetricsExporter>(obs::registry(),
                                                          std::move(mcfg));
    }
    // The anomaly watchdog rides the same registry the exporter snapshots:
    // its rule breaches land in the global EventLog, which the exporter
    // drains to --events-out as JSONL. A short interval so the CI-sized
    // runs get several evaluations.
    const bool http_enabled = http_port >= 0;
    std::unique_ptr<obs::Watchdog> watchdog;
    if (!events_out.empty() || http_enabled) {
        obs::Watchdog::Config wcfg;
        wcfg.interval = std::chrono::milliseconds(100);
        wcfg.background = true;
        auto rules = obs::default_rules(/*queue_capacity=*/kQueueCapacity);
        // With the introspection plane up, a deeply backed-up ingest queue
        // is a readiness event, not just a warning: the Critical firing is
        // what flips /readyz to 503 (obs/introspection.hpp). Half capacity
        // sits well clear of both sides: paced producers keep the steady-
        // state peak under ~10% of capacity, while a stalled drain backs
        // the queue up past 70% within a couple of watchdog ticks.
        if (http_enabled)
            rules.push_back({"ingest-stall-critical", "stream_queue_depth",
                             obs::RuleKind::GaugeAbove,
                             0.5 * static_cast<double>(kQueueCapacity),
                             obs::HistField::P99, 2, 2,
                             obs::Severity::Critical});
        watchdog = std::make_unique<obs::Watchdog>(
            obs::registry(), obs::EventLog::global(), std::move(rules), wcfg);
    }

    // The live introspection plane (--http-port=N; 0 binds an ephemeral
    // port, printed below for discovery). Rank 0 serves the federated
    // cluster view once the streaming mode starts federating (global-
    // registry fallback before that); a dedicated foreground watchdog runs
    // the skew rules over each federated snapshot.
    FederatedView fed_view;
    obs::IntrospectionServer intro_server;
    IntroContext intro_ctx;
    std::unique_ptr<obs::Watchdog> fed_watchdog;
    if (http_enabled) {
        par::Profiler::set_trace_enabled(true);  // /trace serves the rings
        fed_watchdog = std::make_unique<obs::Watchdog>(
            obs::registry(), obs::EventLog::global(),
            std::vector<obs::Rule>{
                {"rank-load-imbalance", "stream_ops_applied_rank_imbalance",
                 obs::RuleKind::GaugeAbove, 2.0, obs::HistField::P99, 3, 2,
                 obs::Severity::Warning}});
        intro_ctx.fed_view = &fed_view;
        intro_ctx.fed_watchdog = fed_watchdog.get();
        intro_ctx.stall_ms = induce_stall_ms;
    }
    const auto start_intro = [&](std::function<std::string()> status_fields,
                                 std::function<std::string()> flight_json) {
        if (!http_enabled) return;
        obs::IntrospectionServer::Config icfg;
        icfg.http.port = static_cast<std::uint16_t>(http_port);
        icfg.metrics_provider = [&fed_view] {
            if (const auto fed = fed_view.get()) return *fed;
            return obs::registry().snapshot();  // before the 1st federation
        };
        icfg.status_fields = std::move(status_fields);
        icfg.flight_json = std::move(flight_json);
        icfg.ready = !restore;  // recovery replay holds the gate down
        intro_server.start(std::move(icfg));
        intro_ctx.server = &intro_server;
        std::printf(
            "introspection: rank 0 serving http://127.0.0.1:%u (federated)\n",
            intro_server.port());
        std::fflush(stdout);
    };

    const auto finish_observability = [&] {
        // Shutdown ordering (mirrored by tests/obs/test_introspection.cpp):
        // the HTTP plane drains its in-flight requests FIRST, while every
        // structure its handlers read (stores, registries, callback gauges)
        // is still alive; only then do the file sinks finalize.
        intro_server.stop();
        if (watchdog) {
            watchdog->stop();
            watchdog->evaluate_now();  // one final deterministic pass
        }
        if (exporter) exporter->stop();
        if (trace_out.empty()) return;
        if (obs::write_chrome_trace(trace_out))
            std::printf("trace written to %s\n", trace_out.c_str());
        else
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_out.c_str());
    };

    if (serve_queries) {
        // The serving tier is process-wide: one store, one cache, one
        // executor shared by every rank's producers (ranks are threads).
        serve::StoreConfig scfg;
        scfg.publish_every = 4;
        scfg.retain = 3;
        serve::SnapshotStore<double> store(scfg);
        serve::ResultCache cache;
        store.set_cache(&cache);
        serve::FlightRecorder recorder(16);
        serve::ExecutorConfig ecfg;
        ecfg.pending_capacity = 4'096;
        ecfg.deadline = std::chrono::milliseconds(250);
        ecfg.cache = &cache;
        ecfg.recorder = &recorder;
        // The paced client needs the admission-controlled background path;
        // the fire-and-forget producer queries work either way.
        ecfg.background = target_qps > 0;
        serve::QueryExecutor<double> executor(store, ecfg);

        start_intro(
            [&store, &executor, &intro_ctx] {
                char buf[320];
                std::snprintf(
                    buf, sizeof buf,
                    "\"engine_version\": %llu, \"published_version\": %llu, "
                    "\"snapshots_published\": %llu, \"live_snapshots\": %lld, "
                    "\"retained\": %zu, \"queries_shed\": %llu, "
                    "\"queries_pending\": %zu, \"federations\": %llu",
                    static_cast<unsigned long long>(
                        intro_ctx.engine_version.load()),
                    static_cast<unsigned long long>(
                        store.current_version().value_or(0)),
                    static_cast<unsigned long long>(store.published()),
                    static_cast<long long>(store.live_snapshots()),
                    store.retained(),
                    static_cast<unsigned long long>(executor.shed_total()),
                    executor.pending(),
                    static_cast<unsigned long long>(
                        intro_ctx.federations.load()));
                return std::string(buf);
            },
            [&recorder] { return recorder.to_json(); });

        // The external paced client: fixed arrival schedule at
        // --target-qps, on-arrival latency against --slo-ms, coordinated-
        // omission-safe (serve/load_gen.hpp). It starts once the first
        // snapshot is published so it measures serving, not attach.
        std::atomic<bool> engine_done{false};
        serve::LoadGenReport slo_rep;
        std::thread paced_client;
        if (target_qps > 0) {
            paced_client = std::thread([&] {
                while (store.published() == 0 &&
                       !engine_done.load(std::memory_order_acquire))
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                serve::LoadGenConfig lg;
                lg.target_qps = target_qps;
                lg.total = static_cast<std::size_t>(
                    std::max(200.0, target_qps));  // ~1 s of traffic
                lg.slo_ms = slo_ms;
                const sparse::index_t n = 1024;  // run_serving's matrix
                slo_rep = serve::run_paced(
                    executor, lg, [&](std::uint64_t k) {
                        std::uint64_t x = k * 6364136223846793005ull +
                                          1442695040888963407ull;
                        const auto row = static_cast<sparse::index_t>(
                            (x >> 17) % static_cast<std::uint64_t>(n));
                        const auto col = static_cast<sparse::index_t>(
                            (x >> 41) % static_cast<std::uint64_t>(n));
                        switch (k % 4) {
                            case 0:
                                return serve::Query{
                                    serve::QueryKind::EdgeExists, row, col, 1,
                                    ""};
                            case 1:
                                return serve::Query{serve::QueryKind::Degree,
                                                    row, 0, 1, ""};
                            case 2:
                                return serve::Query{serve::QueryKind::KHop,
                                                    row, 0, 2, ""};
                            default:
                                return serve::Query{
                                    serve::QueryKind::AnalyticsRead, 0, 0, 1,
                                    "triangles"};
                        }
                    });
            });
        }

        const std::size_t serve_writes = writes > 0 ? writes : 2'000;
        par::run_world(kRanks, [&](par::Comm& comm) {
            core::ProcessGrid grid(comm);
            run_serving(comm, grid, store, executor, checkpoint_dir, restore,
                        serve_writes, query_rate,
                        http_enabled ? &intro_ctx : nullptr);
            if (comm.rank() == 0)
                obs::publish_comm_stats(comm.stats().snapshot());
        });
        engine_done.store(true, std::memory_order_release);
        if (paced_client.joinable())
            paced_client.join();  // tail queries: the final snapshot
        executor.stop();

        if (target_qps > 0) {
            std::printf(
                "paced client: %llu arrivals at %.0f qps (achieved %.0f), "
                "on-arrival p50/p99/p999 %.2f/%.2f/%.2f ms, "
                "%llu SLO violations (%.1f%%), max submit lateness %.2f ms\n",
                static_cast<unsigned long long>(slo_rep.issued), target_qps,
                slo_rep.achieved_qps, slo_rep.p50_ms, slo_rep.p99_ms,
                slo_rep.p999_ms,
                static_cast<unsigned long long>(slo_rep.slo_violations),
                100.0 * slo_rep.violation_rate(),
                slo_rep.max_submit_lateness_ms);
            std::printf("slow-query flight recorder (%llu offered, worst "
                        "%zu):\n%s\n",
                        static_cast<unsigned long long>(recorder.offered()),
                        recorder.worst().size(), recorder.to_json().c_str());
        }

        // The final readout IS the registry: per-class serve_query_ns
        // quantiles (p50/p99/p999 in ms), cache counters, stream/persist
        // instruments — one rendering instead of a hand-rolled table.
        std::fputs(obs::registry().snapshot().to_text().c_str(), stdout);
        std::printf("serving run OK\n");
        finish_observability();
        return 0;
    }

    if (!checkpoint_dir.empty()) {
        start_intro(
            [&intro_ctx] {
                char buf[96];
                std::snprintf(
                    buf, sizeof buf, "\"engine_version\": %llu",
                    static_cast<unsigned long long>(
                        intro_ctx.engine_version.load()));
                return std::string(buf);
            },
            {});
        par::run_world(kRanks, [&](par::Comm& comm) {
            core::ProcessGrid grid(comm);
            run_durable(comm, grid, checkpoint_dir, restore,
                        writes > 0 ? writes : 20'000,
                        http_enabled ? &intro_ctx : nullptr);
            if (comm.rank() == 0)
                obs::publish_comm_stats(comm.stats().snapshot());
        });
        finish_observability();
        return 0;
    }

    start_intro({}, {});
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const sparse::index_t n = sparse::index_t{1} << kScale;

        // Initial load: each rank contributes an equal slice of an R-MAT
        // graph, indices permuted identically on all ranks for balance.
        auto mine = graph::rmat_edges(
            kScale, kInitialEdges / kRanks,
            100 + static_cast<std::uint64_t>(comm.rank()));
        sparse::IndexPermutation perm(n, 9999);
        perm.apply(mine);
        auto A = core::build_dynamic_matrix<SR>(grid, n, n, mine);
        const std::size_t built_nnz = A.global_nnz();  // collective
        if (comm.rank() == 0)
            std::printf(
                "initial load: %zu non-zeros; streaming %d producers/rank, "
                "%zu writes each\n\n",
                built_nnz, kProducers, kWritesPerProducer);

        par::Profiler::reset();
        par::Profiler::set_enabled(true);
        for (auto scenario :
             {stream::Scenario::SustainedUniform, stream::Scenario::Bursty,
              stream::Scenario::HotVertexSkew,
              stream::Scenario::SlidingWindowDelete,
              stream::Scenario::MixedReadWrite})
            run_scenario(comm, A, scenario);
        run_live_analytics(comm, grid);
        par::Profiler::set_enabled(false);

        if (comm.rank() == 0) {
            std::printf("\nphase breakdown across all scenarios:\n");
            for (auto ph :
                 {par::Phase::StreamDrain, par::Phase::StreamApply,
                  par::Phase::Analytics, par::Phase::RedistSort,
                  par::Phase::RedistComm, par::Phase::MemManagement,
                  par::Phase::LocalConstruct, par::Phase::LocalAddition}) {
                std::printf("  %-18s %8.2f ms\n",
                            std::string(par::phase_name(ph)).c_str(),
                            par::Profiler::total_seconds(ph) * 1e3);
            }
            obs::publish_comm_stats(comm.stats().snapshot());
            std::printf("\n%s",
                        obs::registry().snapshot().to_text().c_str());
        }
    });
    finish_observability();
    return 0;
}
