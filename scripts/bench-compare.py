#!/usr/bin/env python3
"""Diffs two DSG_BENCH_JSON files record by record.

    scripts/bench-compare.py baseline.json current.json
                             [--fail-over field:factor ...]

Each file is a JSON array of bench records (the format DSG_BENCH_JSON
accumulates; a single object is accepted too). Records are matched
between the files on their IDENTITY — the record's "bench" name plus
every string-valued field and every integer config field that exists in
both (mode, target_qps, ranks, ...); floating-point measurement fields
never participate in identity. For every matched pair the numeric fields
are printed side by side with absolute and relative deltas; records
present on only one side are listed as added/removed.

--fail-over field:factor makes the comparison gating: if any matched
record's `field` grew by more than `factor`x over the baseline (for
fields where bigger is worse — latencies, violation counts/rates), exit
non-zero. Repeatable. A field absent from a pair is skipped (schema
growth is not a regression). Example, as used by scripts/slo-gate.py:

    scripts/bench-compare.py BENCH_9.json bench.json \\
        --fail-over on_arrival_p99_ms:10 --fail-over violation_rate:10

The generous factors absorb CI-runner noise; the gate is for order-of-
magnitude regressions, not single-digit percents.
"""
import argparse
import json
import sys


def load_records(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-compare: FAIL: {path}: {exc}", file=sys.stderr)
        sys.exit(1)
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list) or not all(
            isinstance(r, dict) for r in doc):
        print(f"bench-compare: FAIL: {path}: expected a JSON array of "
              f"records", file=sys.stderr)
        sys.exit(1)
    return doc


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def identity_of(rec, shared_keys):
    """Identity = bench name + string fields + int-valued config fields
    that are shared across both files. Floats are measurements, never
    identity."""
    parts = []
    for key in sorted(shared_keys):
        v = rec.get(key)
        if isinstance(v, str):
            parts.append((key, v))
        elif isinstance(v, int) and not isinstance(v, bool):
            parts.append((key, v))
        elif isinstance(v, float) and key in CONFIG_FLOATS:
            parts.append((key, v))
    return tuple(parts)


# Integer fields that are measurements, not configuration: exclude them
# from record identity so two runs of the same cell still match.
MEASUREMENT_INTS = {
    "served", "ok", "shed", "expired", "cache_hits", "slo_violations",
    "snapshots_published", "flight_recorded", "flight_worst_total_ns",
    "arrivals", "issued", "queries", "hits", "misses",
}

# Float-valued fields that ARE configuration (they distinguish cells of
# the same bench, e.g. the two target-QPS cells of bench_slo_serving).
CONFIG_FLOATS = {"target_qps", "slo_ms"}


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--fail-over", action="append", default=[],
                    metavar="FIELD:FACTOR",
                    help="fail if FIELD grew by more than FACTOR x")
    args = ap.parse_args()

    gates = []
    for spec in args.fail_over:
        field, _, factor = spec.partition(":")
        try:
            gates.append((field, float(factor)))
        except ValueError:
            print(f"bench-compare: FAIL: bad --fail-over {spec!r}",
                  file=sys.stderr)
            sys.exit(1)

    base = load_records(args.baseline)
    cur = load_records(args.current)

    def keyable(rec):
        return {k for k, v in rec.items()
                if (isinstance(v, str) or
                    (isinstance(v, int) and not isinstance(v, bool)) or
                    (isinstance(v, float) and k in CONFIG_FLOATS)) and
                k not in MEASUREMENT_INTS and
                not k.startswith("slo_violations_")}

    shared = set.union(*(keyable(r) for r in base + cur)) \
        if base + cur else set()

    def index(records, which):
        out = {}
        for rec in records:
            ident = identity_of(rec, shared)
            if ident in out:
                print(f"bench-compare: WARN: duplicate identity in "
                      f"{which}: {dict(ident)}", file=sys.stderr)
            out[ident] = rec
        return out

    base_by_id = index(base, args.baseline)
    cur_by_id = index(cur, args.current)

    failures = []
    matched = 0
    for ident in base_by_id:
        if ident not in cur_by_id:
            print(f"removed: {dict(ident)}")
            continue
        matched += 1
        b, c = base_by_id[ident], cur_by_id[ident]
        print(f"record {dict(ident)}:")
        for key in sorted(set(b) | set(c)):
            bv, cv = b.get(key), c.get(key)
            if not (is_number(bv) and is_number(cv)):
                continue
            delta = cv - bv
            rel = f"{delta / bv:+.1%}" if bv != 0 else "   n/a"
            print(f"  {key:32s} {bv:>14.4g} -> {cv:>14.4g}  "
                  f"({delta:+.4g}, {rel})")
            for field, factor in gates:
                if key == field and bv > 0 and cv > bv * factor:
                    failures.append(
                        f"{key} grew {cv / bv:.1f}x (> {factor}x) for "
                        f"{dict(ident)}")
    for ident in cur_by_id:
        if ident not in base_by_id:
            print(f"added: {dict(ident)}")

    print(f"bench-compare: {matched} matched, "
          f"{len(base_by_id) - matched} removed, "
          f"{len(cur_by_id) - matched} added")
    if failures:
        for f in failures:
            print(f"bench-compare: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("bench-compare: PASSED")


if __name__ == "__main__":
    main()
