#!/usr/bin/env bash
# Documentation consistency checks, run in CI next to format-check:
#
#   1. every intra-repo markdown link ([text](path), path not a URL or pure
#      anchor) in a tracked *.md file resolves to an existing file or
#      directory, relative to the file containing it;
#   2. every subdirectory of src/ appears in the README module map (a
#      "(`src/<dir>/`)" section heading), so new subsystems cannot ship
#      undocumented.
#
#   scripts/check-docs.sh    # exit 1 on any violation, listing all of them
set -euo pipefail
cd "$(dirname "$0")/.."

bad=0

# --- 1. intra-repo markdown links ------------------------------------------
# PAPER.md / PAPERS.md / SNIPPETS.md are retrieved reference material (their
# links point at artifacts of the retrieval, not at this repo); only docs
# this repository authors and maintains are checked.
mapfile -t docs < <(git ls-files '*.md' |
                    grep -vE '^(PAPER|PAPERS|SNIPPETS)\.md$')
for doc in "${docs[@]}"; do
    dir=$(dirname "$doc")
    # Inline links only: [text](target). Reference-style links and autolinks
    # are not used in this repo.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"         # drop an anchor suffix
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" ]]; then
            echo "dangling link: $doc -> $target"
            bad=1
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$doc" |
             sed -E 's/^\[[^]]*\]\(([^) ]+).*\)$/\1/')
done

# --- 2. src/ subdirectories in the README module map -----------------------
for dir in src/*/; do
    name=$(basename "$dir")
    if ! grep -qF "(\`src/$name/\`)" README.md; then
        echo "src/$name/ missing from the README module map"
        bad=1
    fi
done

if [[ $bad -ne 0 ]]; then
    echo "check-docs: FAILED (fix the findings above)" >&2
    exit 1
fi
echo "check-docs: ${#docs[@]} markdown files, all links resolve; module map covers src/"
