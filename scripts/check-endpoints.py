#!/usr/bin/env python3
"""Validates the live introspection plane (src/obs/introspection.hpp) of a
RUNNING example_streaming_ingest --http-port process. Run in CI against the
port the example prints on stdout:

    scripts/check-endpoints.py http://127.0.0.1:PORT
        [--ranks N]            # require federated metrics for N ranks
        [--require-federated]  # /metrics must carry rank labels + skew
        [--expect-flip]        # watch /readyz flip 200 -> 503 -> 200
        [--flip-timeout S]     # how long to watch (default 60)

Checks, in order:
  - /healthz answers 200 "ok";
  - /metrics answers 200 with Content-Type "text/plain; version=0.0.4" and
    parses as Prometheus text exposition: exactly one # HELP and one # TYPE
    line per family, TYPE one of counter/gauge/summary, every sample line
    belongs to a family declared directly above it (contiguous groups);
  - with --require-federated: a stream_* family carries rank="0..N-1"
    labels for all --ranks ranks, and *_rank_imbalance skew gauges exist
    (polled until the first federation lands);
  - /metrics.json is one JSON object with ts_ms + counters/gauges/
    histograms; histograms carry count/mean/p50/p90/p99/p999/max;
  - /status is a JSON object with boolean ready, list critical_rules and
    integer engine_version consistent with /readyz;
  - /trace is Chrome trace JSON ({"traceEvents": [...]});
  - /events is JSONL with strictly increasing integer seq, and
    /events?since=SEQ returns only events with seq > SEQ;
  - /flight parses as JSON;
  - unknown paths answer 404, and a bad ?since cursor answers 400;
  - with --expect-flip: /readyz, polled every 50 ms, goes 200 -> 503 (the
    induced stall's Critical watchdog window) -> 200 (drained + cleared)
    within --flip-timeout seconds.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fail(msg):
    print(f"check-endpoints: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(base, path, timeout=5):
    """Returns (status, content_type, body_str); never raises for HTTP errors."""
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return (resp.status, resp.headers.get("Content-Type", ""),
                    resp.read().decode("utf-8", "replace"))
    except urllib.error.HTTPError as e:
        return (e.code, e.headers.get("Content-Type", ""),
                e.read().decode("utf-8", "replace"))
    except OSError as e:
        fail(f"GET {path}: {e}")


def parse_sample_name(line):
    """Metric family name of one sample line ('name{...} v' or 'name v')."""
    head = line.split("{", 1)[0].split(" ", 1)[0]
    return head


def check_prometheus(body):
    """Validates HELP/TYPE structure; returns {family: type}."""
    families = {}
    helps = set()
    current = None  # family whose contiguous sample group we're inside
    for ln, line in enumerate(body.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[2]:
                fail(f"/metrics line {ln}: malformed HELP: {line!r}")
            if parts[2] in helps:
                fail(f"/metrics line {ln}: duplicate HELP for {parts[2]}")
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "summary", "histogram",
                                                   "untyped"):
                fail(f"/metrics line {ln}: malformed TYPE: {line!r}")
            name = parts[2]
            if name in families:
                fail(f"/metrics line {ln}: duplicate TYPE for {name}")
            if name not in helps:
                fail(f"/metrics line {ln}: TYPE for {name} without HELP")
            families[name] = parts[3]
            current = name
            continue
        if line.startswith("#"):
            continue
        name = parse_sample_name(line)
        # Summary families own their _sum/_count children; everything else
        # must match the family declared directly above (contiguous group).
        ok = (current is not None and
              (name == current or
               (families.get(current) == "summary" and
                name in (current + "_sum", current + "_count"))))
        if not ok:
            fail(f"/metrics line {ln}: sample {name!r} outside its "
                 f"family group (current: {current!r})")
        try:
            float(line.rsplit(" ", 1)[1])
        except (IndexError, ValueError):
            fail(f"/metrics line {ln}: unparseable sample value: {line!r}")
    if not families:
        fail("/metrics: no metric families")
    return families


def check_federated(base, ranks, timeout_s):
    """Polls /metrics until the federated view (rank labels + skew) lands."""
    deadline = time.monotonic() + timeout_s
    last = ""
    while time.monotonic() < deadline:
        status, ctype, body = get(base, "/metrics")
        if status != 200:
            fail(f"/metrics: status {status}")
        last = body
        have = all(f'rank="{r}"' in body for r in range(ranks))
        if have and "_rank_imbalance" in body:
            check_prometheus(body)
            return
        time.sleep(0.1)
    missing = [r for r in range(ranks) if f'rank="{r}"' not in last]
    fail(f"/metrics: federated view never appeared (missing rank labels "
         f"{missing}, imbalance gauges "
         f"{'present' if '_rank_imbalance' in last else 'absent'})")


def check_events(base):
    status, ctype, body = get(base, "/events")
    if status != 200:
        fail(f"/events: status {status}")
    seqs = []
    for ln, line in enumerate(body.splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"/events line {ln}: not JSON: {e}")
        for key in ("ts_ms", "seq", "severity", "rule", "message"):
            if key not in obj:
                fail(f"/events line {ln}: missing {key}")
        seqs.append(obj["seq"])
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        fail("/events: seq not strictly increasing")
    if seqs:
        cursor = seqs[0]
        status, _, body = get(base, f"/events?since={cursor}")
        if status != 200:
            fail(f"/events?since: status {status}")
        for line in body.splitlines():
            if line.strip() and json.loads(line)["seq"] <= cursor:
                fail(f"/events?since={cursor}: returned seq <= cursor")
    status, _, _ = get(base, "/events?since=banana")
    if status != 400:
        fail(f"/events?since=banana: expected 400, got {status}")


def check_flip(base, timeout_s):
    """Requires the 200 -> 503 -> 200 readiness flip within timeout_s."""
    transitions = []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, _, _ = get(base, "/readyz", timeout=2)
        if not transitions or transitions[-1] != status:
            transitions.append(status)
            print(f"check-endpoints: /readyz -> {status}")
        if len(transitions) >= 3 and transitions[-3:] == [200, 503, 200]:
            return
        time.sleep(0.05)
    fail(f"/readyz never flipped 200 -> 503 -> 200 within {timeout_s}s "
         f"(saw {transitions})")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base", help="base URL, e.g. http://127.0.0.1:8080")
    ap.add_argument("--ranks", type=int, default=0)
    ap.add_argument("--require-federated", action="store_true")
    ap.add_argument("--expect-flip", action="store_true")
    ap.add_argument("--flip-timeout", type=float, default=60.0)
    args = ap.parse_args()
    base = args.base.rstrip("/")

    status, _, body = get(base, "/healthz")
    if status != 200 or not body.startswith("ok"):
        fail(f"/healthz: status {status}, body {body!r}")

    status, ctype, body = get(base, "/metrics")
    if status != 200:
        fail(f"/metrics: status {status}")
    if ctype.strip() != "text/plain; version=0.0.4":
        fail(f"/metrics: wrong Content-Type {ctype!r}")
    check_prometheus(body)

    status, ctype, body = get(base, "/metrics.json")
    if status != 200 or "json" not in ctype:
        fail(f"/metrics.json: status {status}, Content-Type {ctype!r}")
    snap = json.loads(body)
    for key in ("ts_ms", "counters", "gauges", "histograms"):
        if key not in snap:
            fail(f"/metrics.json: missing {key}")
    for name, h in snap["histograms"].items():
        for field in ("count", "mean", "p50", "p90", "p99", "p999", "max"):
            if field not in h:
                fail(f"/metrics.json: histogram {name} missing {field}")

    status, ctype, body = get(base, "/status")
    if status != 200 or "json" not in ctype:
        fail(f"/status: status {status}, Content-Type {ctype!r}")
    st = json.loads(body)
    for key in ("ready", "critical_rules", "engine_version"):
        if key not in st:
            fail(f"/status: missing {key}")
    if not isinstance(st["ready"], bool):
        fail("/status: ready is not a boolean")
    if not isinstance(st["critical_rules"], list):
        fail("/status: critical_rules is not a list")

    rstatus, _, _ = get(base, "/readyz")
    # /status and /readyz race the watchdog between the two requests, so
    # only flag a hard inconsistency (both sampled while no flip runs).
    if not args.expect_flip:
        expect = 200 if st["ready"] else 503
        if rstatus != expect:
            fail(f"/readyz: {rstatus} inconsistent with /status.ready "
                 f"{st['ready']}")

    status, _, body = get(base, "/trace")
    if status != 200:
        fail(f"/trace: status {status}")
    trace = json.loads(body)
    if "traceEvents" not in trace or not isinstance(trace["traceEvents"],
                                                    list):
        fail("/trace: no traceEvents list")

    check_events(base)

    status, _, body = get(base, "/flight")
    if status != 200:
        fail(f"/flight: status {status}")
    json.loads(body)

    status, _, _ = get(base, "/no-such-endpoint")
    if status != 404:
        fail(f"/no-such-endpoint: expected 404, got {status}")

    if args.require_federated:
        check_federated(base, args.ranks, timeout_s=30.0)
        print(f"check-endpoints: federated view OK ({args.ranks} ranks)")

    if args.expect_flip:
        check_flip(base, args.flip_timeout)
        print("check-endpoints: readiness flip 200 -> 503 -> 200 OK")

    print("check-endpoints: all endpoint checks OK")


if __name__ == "__main__":
    main()
