#!/usr/bin/env python3
"""Validates a --trace-out file (Chrome trace-event JSON) and, optionally,
a --metrics-out JSONL file and an --events-out EventLog JSONL file, as
produced by the observability layer (src/obs/). Run in CI after a short
instrumented example run:

    scripts/check-trace.py trace.json [--metrics metrics.jsonl]
                           [--events events.jsonl]
                           [--min-events N] [--min-snapshots N]
                           [--min-flows N] [--min-log-events N]

Checks on the trace:
  - the file is one JSON object with a "traceEvents" list;
  - every event is a complete event (ph "X") or a flow event (ph "s"/"f")
    carrying name/ts/pid/tid; complete events carry dur and an args object
    with integer epoch and rank tags;
  - timestamps and durations are finite and non-negative, and within each
    (pid, tid) track the complete-event start timestamps are monotone
    non-decreasing (the exporter sorts spans; a violation means ring
    corruption);
  - pid == rank + 1 (rank -1 spans group under pid 0);
  - request-scoped spans: every "Serve query" span carries integer
    args.qid >= 1, args.qclass >= 0 and args.snapshot_version >= 0, and
    every "Serve admit" span carries args.qid >= 1;
  - flow events: each flow id appears exactly twice — one "s" and one "f"
    with the same name/cat — the "f" carries args.qid, both carry the same
    args.snapshot_version, and the "s" lies inside a "Serve publish"
    complete span of the same (pid, tid) and snapshot_version (the publish
    span that produced the snapshot the query was answered from);
  - otherData.dropped_spans is a non-negative integer.

Checks on the metrics JSONL:
  - every line parses as a standalone JSON object with an integer ts_ms and
    counters/gauges/histograms objects (so a SIGKILL-interrupted file still
    validates line by line);
  - ts_ms is monotone non-decreasing across lines;
  - histogram entries carry count/mean/p50/p90/p99/p999/max.

Checks on the EventLog JSONL (obs::EventLog via the exporter):
  - every line is a standalone JSON object with integer ts_ms and seq,
    severity in {info, warning, critical}, string rule/metric/message and
    numeric value/threshold;
  - seq is strictly increasing across lines (the exporter drains the ring
    by cursor; a repeat or gap backwards means double-emission).
"""
import argparse
import json
import math
import sys


def fail(msg):
    print(f"check-trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(value, what, allow_float=True):
    if isinstance(value, bool) or not isinstance(
            value, (int, float) if allow_float else int):
        fail(f"{what} is not a number: {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        fail(f"{what} is not finite: {value!r}")
    return value


def check_query_args(args, where, need_version=True):
    for key in ("qid", "qclass") + (("snapshot_version",) if need_version
                                    else ()):
        if key not in args:
            fail(f"{where}: args missing '{key}'")
        check_number(args[key], f"{where}: args.{key}", allow_float=False)
    if args["qid"] < 1:
        fail(f"{where}: args.qid {args['qid']} < 1")
    if args["qclass"] < 0:
        fail(f"{where}: args.qclass {args['qclass']} < 0")
    if need_version and args["snapshot_version"] < 0:
        fail(f"{where}: args.snapshot_version "
             f"{args['snapshot_version']} < 0")


def check_trace(path, min_events, min_flows):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    if len(events) < min_events:
        fail(f"{path}: {len(events)} events, expected >= {min_events}")

    last_ts = {}      # (pid, tid) -> last complete-event start ts
    publishes = []    # (pid, tid, ts, ts+dur, snapshot_version)
    flows = {}        # id -> {"s": event, "f": event}
    n_complete = 0
    for k, ev in enumerate(events):
        where = f"{path}: event {k}"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "s", "f"):
            fail(f"{where}: ph is {ph!r}, expected 'X', 's' or 'f'")
        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{where} missing '{key}'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: empty or non-string name")
        ts = check_number(ev["ts"], f"{where}: ts")
        if ts < 0:
            fail(f"{where}: negative ts {ts}")
        pid = check_number(ev["pid"], f"{where}: pid", allow_float=False)

        if ph in ("s", "f"):
            for key in ("id", "cat", "args"):
                if key not in ev:
                    fail(f"{where} missing '{key}'")
            slot = flows.setdefault(ev["id"], {})
            if ph in slot:
                fail(f"{where}: duplicate '{ph}' for flow id {ev['id']!r}")
            slot[ph] = (k, ev)
            continue

        n_complete += 1
        for key in ("dur", "args"):
            if key not in ev:
                fail(f"{where} missing '{key}'")
        dur = check_number(ev["dur"], f"{where}: dur")
        if dur < 0:
            fail(f"{where}: negative dur {dur}")
        args = ev["args"]
        if not isinstance(args, dict):
            fail(f"{where}: args is not an object")
        for key in ("epoch", "rank"):
            if key not in args:
                fail(f"{where}: args missing '{key}'")
            check_number(args[key], f"{where}: args.{key}",
                         allow_float=False)
        if pid != args["rank"] + 1:
            fail(f"{where}: pid {pid} != rank {args['rank']} + 1")
        track = (pid, ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            fail(f"{where}: ts {ts} goes backwards on track {track} "
                 f"(previous {last_ts[track]})")
        last_ts[track] = ts
        if ev["name"] == "Serve query":
            check_query_args(args, where)
        elif ev["name"] == "Serve admit":
            check_query_args(args, where, need_version=False)
        elif ev["name"] == "Serve publish":
            if "snapshot_version" in args:
                publishes.append((pid, ev["tid"], ts, ts + dur,
                                  args["snapshot_version"]))

    for fid, slot in flows.items():
        if set(slot) != {"s", "f"}:
            fail(f"{path}: flow id {fid!r} has halves {sorted(slot)}, "
                 f"expected exactly one 's' and one 'f'")
        (ks, s_ev), (kf, f_ev) = slot["s"], slot["f"]
        for key in ("name", "cat"):
            if s_ev[key] != f_ev[key]:
                fail(f"{path}: flow id {fid!r}: '{key}' differs between "
                     f"s ({s_ev[key]!r}) and f ({f_ev[key]!r})")
        s_args, f_args = s_ev.get("args", {}), f_ev.get("args", {})
        for args, which in ((s_args, f"event {ks} (s)"),
                            (f_args, f"event {kf} (f)")):
            if "snapshot_version" not in args:
                fail(f"{path}: {which}: args missing 'snapshot_version'")
        if s_args["snapshot_version"] != f_args["snapshot_version"]:
            fail(f"{path}: flow id {fid!r}: snapshot_version differs "
                 f"between s and f")
        if "qid" not in f_args:
            fail(f"{path}: event {kf} (f): args missing 'qid'")
        check_number(f_args["qid"], f"{path}: event {kf} (f): args.qid",
                     allow_float=False)
        anchored = any(
            pid == s_ev["pid"] and tid == s_ev["tid"] and
            t0 <= s_ev["ts"] <= t1 and ver == s_args["snapshot_version"]
            for pid, tid, t0, t1, ver in publishes)
        if not anchored:
            fail(f"{path}: event {ks} (s): no enclosing 'Serve publish' "
                 f"span for snapshot_version {s_args['snapshot_version']} "
                 f"on (pid {s_ev['pid']}, tid {s_ev['tid']})")

    if len(flows) < min_flows:
        fail(f"{path}: {len(flows)} flow pairs, expected >= {min_flows}")

    other = doc.get("otherData", {})
    dropped = other.get("dropped_spans")
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        fail(f"{path}: otherData.dropped_spans is {dropped!r}")
    print(f"check-trace: {path}: {n_complete} spans on "
          f"{len(last_ts)} tracks, {len(flows)} flow pairs, "
          f"{dropped} dropped — OK")


def check_metrics(path, min_snapshots):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(f"{path}: {exc}")
    if len(lines) < min_snapshots:
        fail(f"{path}: {len(lines)} snapshots, expected >= {min_snapshots}")
    prev_ts = None
    for k, line in enumerate(lines):
        where = f"{path}: line {k + 1}"
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{where}: {exc}")
        if not isinstance(snap, dict):
            fail(f"{where}: not an object")
        ts = snap.get("ts_ms")
        if not isinstance(ts, int) or isinstance(ts, bool):
            fail(f"{where}: ts_ms is {ts!r}")
        if prev_ts is not None and ts < prev_ts:
            fail(f"{where}: ts_ms {ts} goes backwards (previous {prev_ts})")
        prev_ts = ts
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snap.get(section), dict):
                fail(f"{where}: '{section}' is not an object")
        for name, hist in snap["histograms"].items():
            for key in ("count", "mean", "p50", "p90", "p99", "p999", "max"):
                if key not in hist:
                    fail(f"{where}: histogram {name!r} missing '{key}'")
                check_number(hist[key], f"{where}: {name}.{key}")
    print(f"check-trace: {path}: {len(lines)} metrics snapshots — OK")


SEVERITIES = ("info", "warning", "critical")


def check_events(path, min_log_events):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(f"{path}: {exc}")
    if len(lines) < min_log_events:
        fail(f"{path}: {len(lines)} events, expected >= {min_log_events}")
    prev_seq = None
    for k, line in enumerate(lines):
        where = f"{path}: line {k + 1}"
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{where}: {exc}")
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("ts_ms", "seq"):
            if not isinstance(ev.get(key), int) or isinstance(ev.get(key),
                                                              bool):
                fail(f"{where}: {key} is {ev.get(key)!r}")
        if ev.get("severity") not in SEVERITIES:
            fail(f"{where}: severity is {ev.get('severity')!r}, expected "
                 f"one of {SEVERITIES}")
        for key in ("rule", "metric", "message"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                fail(f"{where}: {key} is {ev.get(key)!r}")
        for key in ("value", "threshold"):
            check_number(ev.get(key), f"{where}: {key}")
        if prev_seq is not None and ev["seq"] <= prev_seq:
            fail(f"{where}: seq {ev['seq']} not increasing "
                 f"(previous {prev_seq})")
        prev_seq = ev["seq"]
    print(f"check-trace: {path}: {len(lines)} watchdog events — OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON from --trace-out")
    ap.add_argument("--metrics", help="metrics JSONL from --metrics-out")
    ap.add_argument("--events", help="EventLog JSONL from --events-out")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum traceEvents required (default 1)")
    ap.add_argument("--min-snapshots", type=int, default=1,
                    help="minimum metrics lines required (default 1)")
    ap.add_argument("--min-flows", type=int, default=0,
                    help="minimum flow (s/f) pairs required (default 0)")
    ap.add_argument("--min-log-events", type=int, default=0,
                    help="minimum EventLog lines required (default 0)")
    args = ap.parse_args()
    check_trace(args.trace, args.min_events, args.min_flows)
    if args.metrics:
        check_metrics(args.metrics, args.min_snapshots)
    if args.events is not None:
        check_events(args.events, args.min_log_events)
    print("check-trace: PASSED")


if __name__ == "__main__":
    main()
