#!/usr/bin/env python3
"""Validates a --trace-out file (Chrome trace-event JSON) and, optionally,
a --metrics-out JSONL file, as produced by the observability layer
(src/obs/). Run in CI after a short instrumented example run:

    scripts/check-trace.py trace.json [--metrics metrics.jsonl]
                           [--min-events N] [--min-snapshots N]

Checks on the trace:
  - the file is one JSON object with a "traceEvents" list;
  - every event is a complete event (ph "X") carrying name/ts/dur/pid/tid
    and an args object with integer epoch and rank tags;
  - timestamps and durations are finite and non-negative, and within each
    (pid, tid) track the start timestamps are monotone non-decreasing
    (the exporter sorts spans; a violation means ring corruption);
  - pid == rank + 1 (rank -1 spans group under pid 0);
  - otherData.dropped_spans is a non-negative integer.

Checks on the metrics JSONL:
  - every line parses as a standalone JSON object with an integer ts_ms and
    counters/gauges/histograms objects (so a SIGKILL-interrupted file still
    validates line by line);
  - ts_ms is monotone non-decreasing across lines;
  - histogram entries carry count/mean/p50/p90/p99/p999/max.
"""
import argparse
import json
import math
import sys


def fail(msg):
    print(f"check-trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(value, what, allow_float=True):
    if isinstance(value, bool) or not isinstance(
            value, (int, float) if allow_float else int):
        fail(f"{what} is not a number: {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        fail(f"{what} is not finite: {value!r}")
    return value


def check_trace(path, min_events):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    if len(events) < min_events:
        fail(f"{path}: {len(events)} events, expected >= {min_events}")

    last_ts = {}  # (pid, tid) -> last start ts
    for k, ev in enumerate(events):
        where = f"{path}: event {k}"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in ev:
                fail(f"{where} missing '{key}'")
        if ev["ph"] != "X":
            fail(f"{where}: ph is {ev['ph']!r}, expected 'X'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: empty or non-string name")
        ts = check_number(ev["ts"], f"{where}: ts")
        dur = check_number(ev["dur"], f"{where}: dur")
        if ts < 0:
            fail(f"{where}: negative ts {ts}")
        if dur < 0:
            fail(f"{where}: negative dur {dur}")
        args = ev["args"]
        if not isinstance(args, dict):
            fail(f"{where}: args is not an object")
        for key in ("epoch", "rank"):
            if key not in args:
                fail(f"{where}: args missing '{key}'")
            check_number(args[key], f"{where}: args.{key}",
                         allow_float=False)
        pid = check_number(ev["pid"], f"{where}: pid", allow_float=False)
        if pid != args["rank"] + 1:
            fail(f"{where}: pid {pid} != rank {args['rank']} + 1")
        track = (pid, ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            fail(f"{where}: ts {ts} goes backwards on track {track} "
                 f"(previous {last_ts[track]})")
        last_ts[track] = ts

    other = doc.get("otherData", {})
    dropped = other.get("dropped_spans")
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        fail(f"{path}: otherData.dropped_spans is {dropped!r}")
    print(f"check-trace: {path}: {len(events)} events on "
          f"{len(last_ts)} tracks, {dropped} dropped — OK")


def check_metrics(path, min_snapshots):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(f"{path}: {exc}")
    if len(lines) < min_snapshots:
        fail(f"{path}: {len(lines)} snapshots, expected >= {min_snapshots}")
    prev_ts = None
    for k, line in enumerate(lines):
        where = f"{path}: line {k + 1}"
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{where}: {exc}")
        if not isinstance(snap, dict):
            fail(f"{where}: not an object")
        ts = snap.get("ts_ms")
        if not isinstance(ts, int) or isinstance(ts, bool):
            fail(f"{where}: ts_ms is {ts!r}")
        if prev_ts is not None and ts < prev_ts:
            fail(f"{where}: ts_ms {ts} goes backwards (previous {prev_ts})")
        prev_ts = ts
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snap.get(section), dict):
                fail(f"{where}: '{section}' is not an object")
        for name, hist in snap["histograms"].items():
            for key in ("count", "mean", "p50", "p90", "p99", "p999", "max"):
                if key not in hist:
                    fail(f"{where}: histogram {name!r} missing '{key}'")
                check_number(hist[key], f"{where}: {name}.{key}")
    print(f"check-trace: {path}: {len(lines)} metrics snapshots — OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON from --trace-out")
    ap.add_argument("--metrics", help="metrics JSONL from --metrics-out")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum traceEvents required (default 1)")
    ap.add_argument("--min-snapshots", type=int, default=1,
                    help="minimum metrics lines required (default 1)")
    args = ap.parse_args()
    check_trace(args.trace, args.min_events)
    if args.metrics:
        check_metrics(args.metrics, args.min_snapshots)
    print("check-trace: PASSED")


if __name__ == "__main__":
    main()
