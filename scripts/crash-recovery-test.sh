#!/usr/bin/env bash
# Crash-recovery integration drill, run in CI and usable locally:
#
#   1. start the durable streaming example (write-ahead op log +
#      epoch-consistent checkpoints under a scratch directory);
#   2. SIGKILL it mid-run — no shutdown path of any kind runs;
#   3. restart with --restore and assert that recovery succeeds and the
#      resumed run completes.
#
#   scripts/crash-recovery-test.sh [path/to/example_streaming_ingest]
#
# The binary defaults to build/examples/example_streaming_ingest.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=${1:-build/examples/example_streaming_ingest}
if [[ ! -x "$bin" ]]; then
    echo "crash-recovery-test: $bin not built" >&2
    exit 1
fi

dir=$(mktemp -d)
log=$(mktemp)
trap 'rm -rf "$dir" "$log"' EXIT

# 1. A run sized to take far longer than the kill delay. The metrics
#    exporter appends + flushes one JSONL snapshot per tick, so the file
#    must survive the SIGKILL with parseable lines (asserted below).
metrics="$dir/metrics.jsonl"
"$bin" --checkpoint-dir="$dir" --writes=500000 \
    --metrics-out="$metrics" --metrics-interval=200 >"$log" 2>&1 &
pid=$!

# 2. Let it stream long enough to cut at least one checkpoint + log tail,
#    then kill it dead. Wait for the first checkpoint manifest so the kill
#    always lands mid-stream, not before durability started.
for _ in $(seq 1 120); do
    [[ -e "$dir/MANIFEST" ]] && break
    sleep 0.25
done
sleep 1
kill -9 "$pid" 2>/dev/null || {
    echo "crash-recovery-test: run finished before the kill; raise --writes" >&2
    cat "$log" >&2
    exit 1
}
wait "$pid" 2>/dev/null || true
if [[ ! -e "$dir/MANIFEST" ]]; then
    echo "crash-recovery-test: no checkpoint manifest before the kill" >&2
    exit 1
fi
echo "killed pid $pid; durable state:"
ls -l "$dir"

# The SIGKILLed process must leave a metrics file whose final snapshot is
# still parseable — the exporter's append-and-flush-per-tick contract.
python3 - "$metrics" <<'EOF'
import json, sys
lines = [ln for ln in open(sys.argv[1]).read().splitlines() if ln.strip()]
ok = 0
for ln in lines:
    snap = json.loads(ln)  # every flushed line must parse standalone
    assert isinstance(snap.get("ts_ms"), int), "snapshot missing ts_ms"
    assert isinstance(snap.get("counters"), dict), "snapshot missing counters"
    ok += 1
assert ok >= 1, "no metrics snapshot survived the SIGKILL"
print(f"crash-recovery-test: {ok} metrics snapshots survived the kill")
EOF

# 3. Recovery + resumed run must succeed — with the introspection plane
#    up: /readyz must answer 503 while the recovery replay (plus the
#    --induce-stall-ms post-recovery hold) keeps the readiness gate down,
#    and flip to 200 once the restored engine is serving.
restore_log="$dir/restore.log"
"$bin" --checkpoint-dir="$dir" --restore --writes=5000 \
    --http-port=0 --induce-stall-ms=2000 >"$restore_log" 2>&1 &
restore_pid=$!

port=""
for _ in $(seq 1 100); do
    port=$(grep -oE 'rank 0 serving http://127\.0\.0\.1:[0-9]+' \
        "$restore_log" | grep -oE '[0-9]+$' || true)
    [[ -n "$port" ]] && break
    sleep 0.1
done
if [[ -z "$port" ]]; then
    echo "crash-recovery-test: no introspection port in the restore run" >&2
    cat "$restore_log" >&2
    exit 1
fi

python3 - "$port" <<'EOF'
import sys, time, urllib.error, urllib.request

def readyz(port):
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/readyz", timeout=2) as resp:
            return resp.status
    except urllib.error.HTTPError as e:
        return e.code
    except OSError:
        return None

port = sys.argv[1]
# The gate starts down (recovery replay + the induced hold): the FIRST
# reachable answer must be 503.
first = None
deadline = time.monotonic() + 10.0
while time.monotonic() < deadline and first is None:
    first = readyz(port)
    if first is None:
        time.sleep(0.05)
assert first == 503, f"expected 503 during recovery replay, got {first}"
# ...and must flip to 200 once the restored engine serves.
deadline = time.monotonic() + 30.0
status = first
while time.monotonic() < deadline and status != 200:
    time.sleep(0.05)
    status = readyz(port)
assert status == 200, f"/readyz never reached 200 after recovery ({status})"
print("crash-recovery-test: /readyz held 503 through replay, then 200")
EOF

wait "$restore_pid"
out=$(cat "$restore_log")
echo "$out"
grep -q "recovery OK" <<<"$out"
grep -q "durable run OK" <<<"$out"
echo "crash-recovery-test: PASSED"
