#!/usr/bin/env python3
"""Gates CI on the DSG_BENCH_JSON records of bench_slo_serving.

    scripts/slo-gate.py bench.json [--baseline BENCH_9.json]
                        [--max-violation-rate R] [--max-p99-ms MS]

Validates every record with mode == "slo" (there must be at least one):
  - the SLO schema fields are present with the right types: target_qps,
    slo_ms, arrivals, served, ok, shed, expired, on_arrival_p50/p99/
    p999/max_ms, slo_violations, violation_rate, achieved_qps,
    max_submit_lateness_ms, and at least one slo_violations_<class>
    per-class count;
  - accounting is exact: served + shed + expired == arrivals, and the
    per-class violation counts sum to slo_violations;
  - percentiles are ordered: p50 <= p99 <= p999 <= max;
  - violation_rate <= --max-violation-rate (default 0.9: CI runners are
    1-2 cores, so the default only catches a serving tier that answers
    essentially nothing within the SLO — the trend lives in the
    baseline comparison);
  - if --max-p99-ms is given, on-arrival p99 must stay under it.

With --baseline, also shells out to scripts/bench-compare.py with
order-of-magnitude --fail-over factors on p99 and violation_rate, so a
gross regression against the committed BENCH_9.json fails the job even
when the absolute ceilings pass.
"""
import argparse
import json
import os
import subprocess
import sys

REQUIRED_NUMBERS = (
    "target_qps", "slo_ms", "arrivals", "served", "ok", "shed", "expired",
    "cache_hits", "on_arrival_p50_ms", "on_arrival_p99_ms",
    "on_arrival_p999_ms", "on_arrival_max_ms", "slo_violations",
    "violation_rate", "achieved_qps", "max_submit_lateness_ms",
)


def fail(msg):
    print(f"slo-gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("bench", help="DSG_BENCH_JSON output to gate")
    ap.add_argument("--baseline",
                    help="committed bench JSON to diff against via "
                         "bench-compare.py")
    ap.add_argument("--max-violation-rate", type=float, default=0.9)
    ap.add_argument("--max-p99-ms", type=float, default=None)
    args = ap.parse_args()

    try:
        with open(args.bench, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{args.bench}: {exc}")
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list):
        fail(f"{args.bench}: expected a JSON array of bench records")

    slo_records = [r for r in doc if isinstance(r, dict)
                   and r.get("mode") == "slo"]
    if not slo_records:
        fail(f"{args.bench}: no records with mode == 'slo'")

    for k, rec in enumerate(slo_records):
        where = f"{args.bench}: slo record {k}"
        for key in REQUIRED_NUMBERS:
            if not is_number(rec.get(key)):
                fail(f"{where}: field {key!r} missing or non-numeric "
                     f"({rec.get(key)!r})")
        per_class = {key: v for key, v in rec.items()
                     if key.startswith("slo_violations_")}
        if not per_class:
            fail(f"{where}: no slo_violations_<class> fields")
        for key, v in per_class.items():
            if not is_number(v):
                fail(f"{where}: field {key!r} non-numeric ({v!r})")
        if rec["served"] + rec["shed"] + rec["expired"] != rec["arrivals"]:
            fail(f"{where}: served {rec['served']} + shed {rec['shed']} + "
                 f"expired {rec['expired']} != arrivals {rec['arrivals']}")
        if sum(per_class.values()) != rec["slo_violations"]:
            fail(f"{where}: per-class violations sum "
                 f"{sum(per_class.values())} != slo_violations "
                 f"{rec['slo_violations']}")
        p50, p99 = rec["on_arrival_p50_ms"], rec["on_arrival_p99_ms"]
        p999, pmax = rec["on_arrival_p999_ms"], rec["on_arrival_max_ms"]
        if not p50 <= p99 <= p999 <= pmax:
            fail(f"{where}: percentiles out of order "
                 f"({p50} / {p99} / {p999} / max {pmax})")
        if rec["violation_rate"] > args.max_violation_rate:
            fail(f"{where}: violation_rate {rec['violation_rate']:.3f} > "
                 f"ceiling {args.max_violation_rate}")
        if args.max_p99_ms is not None and p99 > args.max_p99_ms:
            fail(f"{where}: on-arrival p99 {p99:.2f} ms > ceiling "
                 f"{args.max_p99_ms} ms")
        print(f"slo-gate: record {k}: target {rec['target_qps']:.0f} qps, "
              f"p99 {p99:.2f} ms, violation rate "
              f"{rec['violation_rate']:.3f} — OK")

    if args.baseline:
        compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "bench-compare.py")
        cmd = [sys.executable, compare, args.baseline, args.bench,
               "--fail-over", "on_arrival_p99_ms:10",
               "--fail-over", "violation_rate:10"]
        print(f"slo-gate: running {' '.join(cmd)}")
        if subprocess.run(cmd, check=False).returncode != 0:
            fail(f"baseline comparison against {args.baseline} failed")

    print("slo-gate: PASSED")


if __name__ == "__main__":
    main()
