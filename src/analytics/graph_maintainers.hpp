// Adapters porting the dynamic graph-algorithm classes of
// src/graph/algorithms.hpp onto the analytics Maintainer interface, so a
// stream of raw ADD/MERGE/MASK ops keeps their derived values live:
//
//  - LiveTriangleMaintainer   — DynamicTriangleCounter over the undirected
//    simple graph induced by the stream (ADD inserts an edge, MASK removes
//    it); robust to duplicate ADDs, re-ADDs of live edges, MASKs of absent
//    edges, and insert-then-delete of the same edge within one epoch;
//  - LiveDistanceMaintainer   — DynamicMultiSourceProduct over (min,+):
//    ADDs are algebraic weight decreases / edge insertions;
//  - LiveContractionMaintainer — DynamicContraction: every ADD contributes
//    its weight to the (cluster(i), cluster(j)) cell.
//
// Each adapter maintains its OWN distributed matrices (the graph classes
// own their state); the engine's matrix is the raw op log's image, the
// maintainers are derived views of the same op stream. Ops a maintainer
// cannot fold (MERGEs everywhere; MASKs for the non-ring (min,+) product
// and the insertion-only contraction) are counted, not silently dropped —
// ops_skipped() makes the divergence observable.
//
// All on_epoch bodies are collective on every rank of every applied epoch,
// including ranks whose delta is empty (each maintainer issues a fixed
// sequence of collective rounds per epoch).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analytics/maintainer.hpp"
#include "core/redistribute.hpp"
#include "graph/algorithms.hpp"

namespace dsg::analytics {

namespace detail {

/// Canonical pair key for dedup maps; indices fit 32 bits (the adjacency
/// dimension n bounds both coordinates, and streamed graphs here are far
/// below 2^32 vertices).
inline std::uint64_t pair_key(sparse::index_t i, sparse::index_t j) {
    assert(i >= 0 && j >= 0 && i < (sparse::index_t{1} << 32) &&
           j < (sparse::index_t{1} << 32));
    return (static_cast<std::uint64_t>(i) << 32) |
           static_cast<std::uint64_t>(j);
}
inline sparse::index_t key_row(std::uint64_t key) {
    return static_cast<sparse::index_t>(key >> 32);
}
inline sparse::index_t key_col(std::uint64_t key) {
    return static_cast<sparse::index_t>(key & 0xffffffffu);
}

/// Expands canonical undirected edges into the both-directions, weight-1.0
/// form DynamicTriangleCounter expects.
inline std::vector<sparse::Triple<double>> both_directions(
    const std::vector<sparse::Triple<double>>& edges) {
    std::vector<sparse::Triple<double>> out;
    out.reserve(edges.size() * 2);
    for (const auto& e : edges) {
        out.push_back({e.row, e.col, 1.0});
        out.push_back({e.col, e.row, 1.0});
    }
    return out;
}

}  // namespace detail

/// Live triangle count of the undirected simple graph induced by the
/// ADD/MASK stream. Per epoch:
///   1. local normalization over canonical pairs {min(i,j), max(i,j)}:
///      self-loops are dropped; a pair MASKed anywhere in the epoch nets to
///      a delete candidate (the engine applies ADDs before MASKs, so a MASK
///      wins over same-epoch ADDs of the same coordinate), otherwise to one
///      insert candidate regardless of duplicate count;
///   2. a collective membership round: candidates travel to the rank owning
///      the pair's canonical direction in the maintained adjacency (value
///      +1 = insert, -1 = delete share one redistribution); the owner
///      dedupes candidates arriving from different ranks (mask wins again)
///      and filters against current membership — inserts of live edges and
///      deletes of absent edges dissolve here, which is what upholds
///      DynamicTriangleCounter's "new edges only" / "existing edges only"
///      preconditions under arbitrary streams;
///   3. the surviving edges feed insert_edges/remove_edges (both
///      directions), and the refreshed count is published.
/// MERGEs have no structural meaning for an unweighted graph and are
/// counted into ops_skipped().
class LiveTriangleMaintainer final : public Maintainer<double> {
public:
    LiveTriangleMaintainer(core::ProcessGrid& grid, sparse::index_t n,
                           par::ThreadPool* pool = nullptr)
        : counter_(grid, n, pool) {}

    [[nodiscard]] const char* name() const override { return "triangles"; }

    /// Seeds the graph from arbitrary edge tuples (collective): the batch
    /// runs through the same normalization + membership path as an epoch of
    /// ADDs, so duplicates and either-direction tuples are fine.
    void seed(std::vector<sparse::Triple<double>> edges) {
        stream::EpochDelta<double> delta;
        delta.adds = std::move(edges);
        on_epoch(delta);
    }

    void on_epoch(const stream::EpochDelta<double>& delta) override {
        skipped_ += delta.merges.size();

        // 1. Local per-epoch normalization (mask wins over add).
        std::unordered_map<std::uint64_t, bool> net;  // pair -> saw a MASK
        net.reserve(delta.adds.size() + delta.masks.size());
        auto fold = [&](const std::vector<sparse::Triple<double>>& ops,
                        bool is_mask) {
            for (const auto& t : ops) {
                if (t.row == t.col) {
                    ++skipped_;  // self-loops: not edges of a simple graph
                    continue;
                }
                const auto key = detail::pair_key(std::min(t.row, t.col),
                                                  std::max(t.row, t.col));
                auto [it, inserted] = net.try_emplace(key, is_mask);
                if (!inserted && is_mask) it->second = true;
            }
        };
        fold(delta.adds, false);
        fold(delta.masks, true);

        std::vector<sparse::Triple<double>> candidates;
        candidates.reserve(net.size());
        for (const auto& [key, masked] : net)
            candidates.push_back(
                {detail::key_row(key), detail::key_col(key),
                 masked ? -1.0 : 1.0});

        // 2. Collective membership resolution at the pair's owner rank.
        const auto& shape = counter_.adjacency().shape();
        auto mine = core::redistribute_tuples(shape.grid(), shape,
                                              std::move(candidates));
        std::unordered_map<std::uint64_t, bool> owner_net;
        owner_net.reserve(mine.size());
        for (const auto& t : mine) {
            auto [it, inserted] =
                owner_net.try_emplace(detail::pair_key(t.row, t.col),
                                      t.value < 0.0);
            if (!inserted && t.value < 0.0) it->second = true;
        }
        std::vector<sparse::Triple<double>> inserts, removes;
        for (const auto& [key, masked] : owner_net) {
            const sparse::index_t i = detail::key_row(key);
            const sparse::index_t j = detail::key_col(key);
            const bool present =
                counter_.adjacency().local().find(shape.local_row(i),
                                                  shape.local_col(j)) !=
                nullptr;
            if (masked) {
                if (present) removes.push_back({i, j, 1.0});
            } else if (!present) {
                inserts.push_back({i, j, 1.0});
            }
        }

        // 3. Both collective rounds run every epoch (possibly with empty
        //    batches) so ranks stay in lockstep.
        counter_.insert_edges(detail::both_directions(inserts));
        counter_.remove_edges(detail::both_directions(removes));
        publish();
    }

    [[nodiscard]] double snapshot() const override {
        return count_.load(std::memory_order_acquire);
    }

    /// MERGE ops and self-loops this rank could not fold into the graph.
    [[nodiscard]] std::uint64_t ops_skipped() const { return skipped_; }
    [[nodiscard]] const graph::DynamicTriangleCounter& counter() const {
        return counter_;
    }

    void save_state(par::Buffer& out) const override {
        par::BufferWriter w(out);
        w.write<std::uint64_t>(skipped_);
        w.write<double>(count_.load(std::memory_order_acquire));
        counter_.save(out);
    }
    void load_state(par::BufferReader& in) override {
        skipped_ = in.read<std::uint64_t>();
        count_.store(in.read<double>(), std::memory_order_release);
        counter_.load(in);
    }

private:
    // Collective: one scalar all-reduce over an O(local nnz) rescan of the
    // derived state — simple over incremental, and the cost is what
    // bench_analytics_latency measures (same tradeoff in all maintainers).
    void publish() {
        count_.store(counter_.count(), std::memory_order_release);
    }

    graph::DynamicTriangleCounter counter_;
    std::atomic<double> count_{0.0};
    std::uint64_t skipped_ = 0;
};

/// Live multi-source one-hop (min,+) product D = S·A: every ADD is folded
/// as an algebraic update (edge insertion or weight decrease — duplicates
/// and re-ADDs are harmless because min is idempotent, and a higher re-ADD
/// weight simply loses the min). The published scalar is the sum of all
/// finite distance entries; reached_pairs() counts them. MERGEs and MASKs
/// can increase values, which (min,+) cannot express algebraically
/// (Algorithm 2 territory) — they are counted into ops_skipped().
class LiveDistanceMaintainer final : public Maintainer<double> {
public:
    LiveDistanceMaintainer(core::ProcessGrid& grid, sparse::index_t n,
                           const std::vector<sparse::index_t>& sources,
                           par::ThreadPool* pool = nullptr)
        : product_(grid, n, sources, pool) {}

    [[nodiscard]] const char* name() const override { return "distance-sum"; }

    /// Seeds the graph (collective); edge values are (min,+) weights.
    void seed(std::vector<sparse::Triple<double>> edges) {
        product_.initialize(std::move(edges));
        publish();
    }

    void on_epoch(const stream::EpochDelta<double>& delta) override {
        skipped_ += delta.merges.size() + delta.masks.size();
        product_.apply_decreases(delta.adds);  // collective
        publish();
    }

    [[nodiscard]] double snapshot() const override {
        return sum_.load(std::memory_order_acquire);
    }

    /// Number of (source, vertex) pairs currently reached in one hop.
    [[nodiscard]] std::uint64_t reached_pairs() const {
        return reached_.load(std::memory_order_acquire);
    }
    /// MERGE/MASK ops the (min,+) algebra cannot fold.
    [[nodiscard]] std::uint64_t ops_skipped() const { return skipped_; }
    [[nodiscard]] const graph::DynamicMultiSourceProduct& product() const {
        return product_;
    }

    void save_state(par::Buffer& out) const override {
        par::BufferWriter w(out);
        w.write<std::uint64_t>(skipped_);
        w.write<double>(sum_.load(std::memory_order_acquire));
        w.write<std::uint64_t>(reached_.load(std::memory_order_acquire));
        product_.save(out);
    }
    void load_state(par::BufferReader& in) override {
        skipped_ = in.read<std::uint64_t>();
        sum_.store(in.read<double>(), std::memory_order_release);
        reached_.store(in.read<std::uint64_t>(), std::memory_order_release);
        product_.load(in);
    }

private:
    void publish() {  // collective: struct all-reduce over a local rescan
        struct Agg {
            double sum;
            std::uint64_t reached;
        };
        Agg local{0.0, 0};
        product_.distances().local().for_each(
            [&](sparse::index_t, sparse::index_t, double v) {
                local.sum += v;
                ++local.reached;
            });
        const Agg g =
            product_.distances().shape().grid().world().allreduce(
                local, [](Agg a, Agg b) {
                    return Agg{a.sum + b.sum, a.reached + b.reached};
                });
        sum_.store(g.sum, std::memory_order_release);
        reached_.store(g.reached, std::memory_order_release);
    }

    graph::DynamicMultiSourceProduct product_;
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> reached_{0};
    std::uint64_t skipped_ = 0;
};

/// Live cluster contraction C = Sᵀ A S: every ADD contributes its weight to
/// the (cluster(row), cluster(col)) cell, so duplicate coordinates are
/// well-defined (weights accumulate). The published scalar is the total
/// contracted weight (sum over all cells). DynamicContraction is
/// insertion-only, so MERGEs and MASKs are counted into ops_skipped().
class LiveContractionMaintainer final : public Maintainer<double> {
public:
    LiveContractionMaintainer(core::ProcessGrid& grid, sparse::index_t n,
                              sparse::index_t clusters,
                              const std::vector<sparse::index_t>& assignment,
                              par::ThreadPool* pool = nullptr)
        : contraction_(grid, n, clusters, assignment, pool) {}

    [[nodiscard]] const char* name() const override {
        return "contraction-weight";
    }

    /// Seeds the graph (collective); same semantics as an epoch of ADDs.
    void seed(std::vector<sparse::Triple<double>> edges) {
        contraction_.insert_edges(std::move(edges));
        publish();
    }

    void on_epoch(const stream::EpochDelta<double>& delta) override {
        skipped_ += delta.merges.size() + delta.masks.size();
        contraction_.insert_edges(delta.adds);  // collective
        publish();
    }

    [[nodiscard]] double snapshot() const override {
        return weight_.load(std::memory_order_acquire);
    }

    /// MERGE/MASK ops the insertion-only contraction cannot fold.
    [[nodiscard]] std::uint64_t ops_skipped() const { return skipped_; }
    [[nodiscard]] const graph::DynamicContraction& contraction() const {
        return contraction_;
    }

    void save_state(par::Buffer& out) const override {
        par::BufferWriter w(out);
        w.write<std::uint64_t>(skipped_);
        w.write<double>(weight_.load(std::memory_order_acquire));
        contraction_.save(out);
    }
    void load_state(par::BufferReader& in) override {
        skipped_ = in.read<std::uint64_t>();
        weight_.store(in.read<double>(), std::memory_order_release);
        contraction_.load(in);
    }

private:
    void publish() {  // collective: scalar all-reduce over a local rescan
        double local = 0.0;
        contraction_.contracted().local().for_each(
            [&](sparse::index_t, sparse::index_t, double v) { local += v; });
        const double total =
            contraction_.contracted().shape().grid().world().allreduce<double>(
                local, [](double a, double b) { return a + b; });
        weight_.store(total, std::memory_order_release);
    }

    graph::DynamicContraction contraction_;
    std::atomic<double> weight_{0.0};
    std::uint64_t skipped_ = 0;
};

}  // namespace dsg::analytics
