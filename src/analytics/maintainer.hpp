// The live analytics layer: incremental maintainers subscribed to epoch
// boundaries of the streaming engine (docs/ARCHITECTURE.md, "The live
// analytics layer").
//
// A Maintainer owns one derived value (a triangle count, a distance table, a
// contraction) and keeps it consistent with the stream: at every *applied*
// epoch the engine hands it the rank's drained ops (stream::EpochDelta) via
// on_epoch(), which runs collectively on every rank — after the epoch's ops
// were applied to the matrix and before the engine's reader lock is
// released. snapshot() is the other half of the contract: a lock-free read
// of the most recently published derived scalar, callable from any thread at
// any time (reader threads poll it while epochs are being applied).
//
// The AnalyticsHub composes maintainers: it registers any number of them,
// drives them in registration order from a single engine epoch hook
// (attach()), and accounts per-maintainer latency so benchmarks can
// attribute epoch-boundary cost (bench_analytics_latency). Registration
// order is part of the collective contract — every rank must register the
// same maintainers in the same order, exactly like issuing collectives.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "par/buffer.hpp"
#include "stream/epoch_engine.hpp"

namespace dsg::analytics {

/// One incrementally maintained derived value (see the header comment for
/// the on_epoch/snapshot contract).
template <typename T>
class Maintainer {
public:
    virtual ~Maintainer() = default;

    /// Stable display name (also the key in AnalyticsHub::snapshots()).
    [[nodiscard]] virtual const char* name() const = 0;

    /// Collective: folds one applied epoch's local ops into the derived
    /// value and publishes the new snapshot. Called on every rank of the
    /// epoch, under the engine's writer lock; delta lists may be empty on
    /// ranks that drained nothing.
    virtual void on_epoch(const stream::EpochDelta<T>& delta) = 0;

    /// Lock-free read of the most recently published derived scalar; safe
    /// from any thread, any time.
    [[nodiscard]] virtual double snapshot() const = 0;

    /// Serializes this rank's share of the maintainer's state (derived
    /// matrices, published scalars, skip counters) so the durability layer
    /// (src/persist/) can include it in epoch-consistent checkpoints.
    /// Rank-local — no collectives. Default: stateless.
    virtual void save_state(par::Buffer& out) const { (void)out; }
    /// Restores what save_state wrote, called at the same epoch boundary
    /// semantics (before any post-checkpoint epoch is replayed). Must not
    /// issue collectives and must leave snapshot() returning the restored
    /// published value. Default: stateless.
    virtual void load_state(par::BufferReader& in) { (void)in; }
};

/// Per-maintainer epoch-hook accounting of one rank.
struct MaintainerStats {
    std::uint64_t epochs = 0;  ///< on_epoch invocations
    double total_ms = 0;
    double max_ms = 0;

    [[nodiscard]] double mean_ms() const {
        return epochs > 0 ? total_ms / static_cast<double>(epochs) : 0.0;
    }
};

/// Registry + dispatcher for a rank's maintainers. One hub per rank, driven
/// by that rank's engine; every rank must build an identical hub (same
/// maintainer types, same order) because on_epoch bodies issue collectives.
template <typename T>
class AnalyticsHub {
public:
    AnalyticsHub() = default;
    AnalyticsHub(const AnalyticsHub&) = delete;
    AnalyticsHub& operator=(const AnalyticsHub&) = delete;

    /// Constructs a maintainer in place; returns a typed reference for
    /// seeding and typed reads.
    template <typename M, typename... Args>
    M& emplace(Args&&... args) {
        return static_cast<M&>(
            add(std::make_unique<M>(std::forward<Args>(args)...)));
    }

    /// Registers an externally constructed maintainer.
    Maintainer<T>& add(std::unique_ptr<Maintainer<T>> m) {
        maintainers_.push_back(std::move(m));
        stats_.emplace_back();
        // Per-maintainer epoch latency, merged across ranks (on_epoch is
        // collective). Fetched here, once per registration.
        obs_epoch_ns_.push_back(&obs::registry().histogram(
            "analytics_epoch_ns",
            {{"maintainer", std::string(maintainers_.back()->name())}}));
        return *maintainers_.back();
    }

    [[nodiscard]] std::size_t size() const { return maintainers_.size(); }
    [[nodiscard]] Maintainer<T>& operator[](std::size_t k) {
        return *maintainers_[k];
    }
    [[nodiscard]] const Maintainer<T>& operator[](std::size_t k) const {
        return *maintainers_[k];
    }
    [[nodiscard]] const MaintainerStats& stats(std::size_t k) const {
        return stats_[k];
    }

    /// The epoch-hook body: drives every maintainer in registration order
    /// and records per-maintainer latency. Collective (maintainers issue
    /// collectives); invoked by the engine under its writer lock, so it must
    /// not be called concurrently with itself.
    void on_epoch(const stream::EpochDelta<T>& delta) {
        using Clock = std::chrono::steady_clock;
        for (std::size_t k = 0; k < maintainers_.size(); ++k) {
            const auto t0 = Clock::now();
            maintainers_[k]->on_epoch(delta);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
            ++stats_[k].epochs;
            stats_[k].total_ms += ms;
            stats_[k].max_ms = std::max(stats_[k].max_ms, ms);
            obs_epoch_ns_[k]->record_ms(ms);
        }
    }

    /// Subscribes this hub to an engine's epoch boundary. Call on every rank
    /// (with that rank's engine and hub) before pumping starts; the hub must
    /// outlive the engine's run.
    template <typename Engine>
    void attach(Engine& engine) {
        engine.set_epoch_hook(
            [this](const stream::EpochDelta<T>& delta) { on_epoch(delta); });
    }

    /// Serializes every maintainer's rank-local state in registration order
    /// (name-tagged, length-framed) — the hub's contribution to a
    /// checkpoint. Rank-local; no collectives.
    void save_state(par::Buffer& out) const {
        par::BufferWriter w(out);
        w.write<std::uint64_t>(maintainers_.size());
        for (const auto& m : maintainers_) {
            const std::string_view name = m->name();
            w.write_span(std::span<const char>(name.data(), name.size()));
            par::Buffer state;
            m->save_state(state);
            w.write_vector(state);
        }
    }

    /// Restores a blob produced by save_state into this hub, which must
    /// hold the same maintainers in the same order (the collective
    /// registration contract already requires exactly that). Throws
    /// std::runtime_error on any mismatch.
    void load_state(par::BufferReader& in) {
        const auto count = in.read<std::uint64_t>();
        if (count != maintainers_.size())
            throw std::runtime_error(
                "AnalyticsHub::load_state: checkpoint holds " +
                std::to_string(count) + " maintainers, hub has " +
                std::to_string(maintainers_.size()));
        for (const auto& m : maintainers_) {
            const auto name = in.read_vector<char>();
            if (std::string_view(name.data(), name.size()) != m->name())
                throw std::runtime_error(
                    "AnalyticsHub::load_state: maintainer order mismatch ("
                    "checkpoint has '" +
                    std::string(name.data(), name.size()) + "', hub has '" +
                    m->name() + "')");
            const auto state = in.read_vector<std::byte>();
            par::BufferReader sub(state);
            m->load_state(sub);
        }
    }

    /// (name, snapshot) of every maintainer, in registration order. Reads
    /// are lock-free; safe from any thread. This is also the hub's frozen
    /// readout: taken under the engine's writer lock (where every
    /// maintainer is quiescent and published), the returned vector is an
    /// immutable, mutually consistent copy of all derived values — the
    /// serving layer (src/serve/) embeds exactly this in each published
    /// snapshot so analytics reads never touch the live hub.
    [[nodiscard]] std::vector<std::pair<std::string, double>> snapshots()
        const {
        std::vector<std::pair<std::string, double>> out;
        out.reserve(maintainers_.size());
        for (const auto& m : maintainers_)
            out.emplace_back(m->name(), m->snapshot());
        return out;
    }

private:
    std::vector<std::unique_ptr<Maintainer<T>>> maintainers_;
    std::vector<MaintainerStats> stats_;
    // Parallel to maintainers_: registry instruments (fetched in add()).
    std::vector<obs::Histogram*> obs_epoch_ns_;
};

}  // namespace dsg::analytics
