// Competitor stand-ins for the paper's evaluation (Section VII).
//
// The paper benchmarks against CombBLAS 2.0, CTF 1.35 and PETSc 3.17. Those
// frameworks store distributed sparse matrices in *static* layouts, so every
// update batch forces a redistribution (comparison sort + one global
// alltoallv) followed by a full rebuild of the local structure. The three
// classes below reproduce exactly those cost structures (the mapping is
// spelled out per class below); their results are bit-identical to the
// dynamic path, which the tests verify — only the work differs.
//
//  - StaticRebuildMatrix (CombBLAS-like): local block kept as a fully sorted
//    (DCSC-style column-major) array; a batch is sorted and merge-rebuilt
//    into a fresh array.
//  - SortedTupleMatrix (CTF-like): local block kept as a globally sorted
//    tuple list; a batch triggers a re-sort of the *entire* list.
//  - PreallocCsrMatrix (PETSc-like): local block kept as CSR; a batch
//    recounts all row sizes and reconstructs the CSR arrays; deletion is
//    unsupported (as in PETSc).
#pragma once

#include <algorithm>
#include <vector>

#include "core/dist_matrix.hpp"
#include "core/redistribute.hpp"
#include "sparse/csr.hpp"
#include "sparse/semiring.hpp"

namespace dsg::baseline {

using core::DistShape;
using core::ProcessGrid;
using core::RedistMode;
using sparse::index_t;
using sparse::Triple;

namespace detail {

template <typename T>
bool col_major_less(const Triple<T>& a, const Triple<T>& b) {
    return std::tie(a.col, a.row) < std::tie(b.col, b.row);
}

template <typename T>
bool row_major_less(const Triple<T>& a, const Triple<T>& b) {
    return std::tie(a.row, a.col) < std::tie(b.row, b.col);
}

}  // namespace detail

/// CombBLAS-like distributed matrix: static DCSC blocks, rebuilt per batch.
template <typename T>
class StaticRebuildMatrix {
public:
    StaticRebuildMatrix(ProcessGrid& grid, index_t nrows, index_t ncols)
        : shape_(grid, nrows, ncols) {}

    [[nodiscard]] const DistShape& shape() const { return shape_; }
    [[nodiscard]] std::size_t local_nnz() const { return entries_.size(); }
    [[nodiscard]] std::size_t global_nnz() const {
        return shape_.grid().world().template allreduce<std::uint64_t>(
            entries_.size(),
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }

    /// Builds from scratch: redistribute (sort + global alltoallv, the
    /// CombBLAS strategy) and sort the local block column-major. Collective.
    template <sparse::Semiring SR>
    void construct(std::vector<Triple<T>> tuples) {
        auto mine = core::redistribute_tuples(shape_.grid(), shape_,
                                              std::move(tuples),
                                              RedistMode::DirectSort);
        to_local(mine);
        std::sort(mine.begin(), mine.end(), detail::col_major_less<T>);
        combine_sorted<SR>(mine);
        entries_ = std::move(mine);
    }

    /// Inserts a batch: redistribute, sort the batch, merge-rebuild the
    /// whole local array (the static-storage penalty). Collective.
    template <sparse::Semiring SR>
    void insert_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        to_local(batch);
        std::sort(batch.begin(), batch.end(), detail::col_major_less<T>);
        combine_sorted<SR>(batch);
        std::vector<Triple<T>> merged;
        merged.resize(entries_.size() + batch.size());
        std::merge(entries_.begin(), entries_.end(), batch.begin(), batch.end(),
                   merged.begin(), detail::col_major_less<T>);
        combine_sorted<SR>(merged);
        entries_ = std::move(merged);
    }

    /// Replaces values of existing coordinates (and inserts new ones);
    /// requires the same full rebuild. Collective.
    void update_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        to_local(batch);
        std::sort(batch.begin(), batch.end(), detail::col_major_less<T>);
        std::vector<Triple<T>> merged;
        merged.reserve(entries_.size() + batch.size());
        // Values from the batch win on coordinate collision.
        std::size_t a = 0, b = 0;
        while (a < entries_.size() || b < batch.size()) {
            if (b == batch.size()) {
                merged.push_back(entries_[a++]);
            } else if (a == entries_.size()) {
                merged.push_back(batch[b++]);
            } else if (detail::col_major_less(entries_[a], batch[b])) {
                merged.push_back(entries_[a++]);
            } else if (detail::col_major_less(batch[b], entries_[a])) {
                merged.push_back(batch[b++]);
            } else {
                merged.push_back(batch[b++]);
                ++a;
            }
        }
        entries_ = std::move(merged);
    }

    /// Deletes all coordinates present in the batch (MASK); full rebuild.
    /// Collective.
    void delete_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        to_local(batch);
        std::sort(batch.begin(), batch.end(), detail::col_major_less<T>);
        std::vector<Triple<T>> kept;
        kept.reserve(entries_.size());
        std::size_t b = 0;
        for (const auto& e : entries_) {
            while (b < batch.size() && detail::col_major_less(batch[b], e)) ++b;
            const bool doomed = b < batch.size() &&
                                batch[b].row == e.row && batch[b].col == e.col;
            if (!doomed) kept.push_back(e);
        }
        entries_ = std::move(kept);
    }

    /// Local entries (block-local coordinates), column-major sorted.
    [[nodiscard]] const std::vector<Triple<T>>& local_entries() const {
        return entries_;
    }

    /// Collective: all entries with global coordinates, on every rank.
    [[nodiscard]] std::vector<Triple<T>> gather_global() const {
        par::Buffer mine;
        par::BufferWriter w(mine);
        std::vector<Triple<T>> ts;
        ts.reserve(entries_.size());
        for (const auto& e : entries_)
            ts.push_back({shape_.global_row(e.row), shape_.global_col(e.col),
                          e.value});
        w.write_vector(ts);
        auto all = shape_.grid().world().allgather(std::move(mine));
        std::vector<Triple<T>> out;
        for (auto& buf : all) {
            par::BufferReader r(buf);
            auto part = r.template read_vector<Triple<T>>();
            out.insert(out.end(), part.begin(), part.end());
        }
        return out;
    }

private:
    void to_local(std::vector<Triple<T>>& ts) const {
        for (auto& t : ts) {
            t.row = shape_.local_row(t.row);
            t.col = shape_.local_col(t.col);
        }
    }

    template <sparse::Semiring SR>
    static void combine_sorted(std::vector<Triple<T>>& ts) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < ts.size(); ++r) {
            if (w > 0 && ts[w - 1].row == ts[r].row &&
                ts[w - 1].col == ts[r].col) {
                ts[w - 1].value = SR::add(ts[w - 1].value, ts[r].value);
            } else {
                ts[w++] = ts[r];
            }
        }
        ts.resize(w);
    }

    DistShape shape_;
    std::vector<Triple<T>> entries_;  // column-major sorted (DCSC order)
};

/// CTF-like distributed matrix: sorted tuple list, fully re-sorted per batch.
template <typename T>
class SortedTupleMatrix {
public:
    SortedTupleMatrix(ProcessGrid& grid, index_t nrows, index_t ncols)
        : shape_(grid, nrows, ncols) {}

    [[nodiscard]] const DistShape& shape() const { return shape_; }
    [[nodiscard]] std::size_t local_nnz() const { return entries_.size(); }

    template <sparse::Semiring SR>
    void construct(std::vector<Triple<T>> tuples) {
        entries_.clear();
        insert_batch<SR>(std::move(tuples));
    }

    /// Appends the redistributed batch, then re-sorts and re-combines the
    /// *entire* local tuple list (the CTF write-path cost model).
    template <sparse::Semiring SR>
    void insert_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        for (auto& t : batch) {
            t.row = shape_.local_row(t.row);
            t.col = shape_.local_col(t.col);
        }
        entries_.insert(entries_.end(), batch.begin(), batch.end());
        std::stable_sort(entries_.begin(), entries_.end(),
                         detail::row_major_less<T>);
        std::size_t w = 0;
        for (std::size_t r = 0; r < entries_.size(); ++r) {
            if (w > 0 && entries_[w - 1].row == entries_[r].row &&
                entries_[w - 1].col == entries_[r].col) {
                entries_[w - 1].value =
                    SR::add(entries_[w - 1].value, entries_[r].value);
            } else {
                entries_[w++] = entries_[r];
            }
        }
        entries_.resize(w);
    }

    /// Value updates and deletions also re-sort everything.
    void update_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        for (auto& t : batch) {
            t.row = shape_.local_row(t.row);
            t.col = shape_.local_col(t.col);
        }
        std::stable_sort(batch.begin(), batch.end(), detail::row_major_less<T>);
        std::stable_sort(entries_.begin(), entries_.end(),
                         detail::row_major_less<T>);
        for (auto& e : entries_) {
            auto it = std::lower_bound(batch.begin(), batch.end(), e,
                                       detail::row_major_less<T>);
            if (it != batch.end() && it->row == e.row && it->col == e.col)
                e.value = it->value;
        }
    }

    void delete_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        for (auto& t : batch) {
            t.row = shape_.local_row(t.row);
            t.col = shape_.local_col(t.col);
        }
        std::stable_sort(batch.begin(), batch.end(), detail::row_major_less<T>);
        std::stable_sort(entries_.begin(), entries_.end(),
                         detail::row_major_less<T>);
        std::vector<Triple<T>> kept;
        kept.reserve(entries_.size());
        for (const auto& e : entries_) {
            auto it = std::lower_bound(batch.begin(), batch.end(), e,
                                       detail::row_major_less<T>);
            if (!(it != batch.end() && it->row == e.row && it->col == e.col))
                kept.push_back(e);
        }
        entries_ = std::move(kept);
    }

    [[nodiscard]] const std::vector<Triple<T>>& local_entries() const {
        return entries_;
    }

private:
    DistShape shape_;
    std::vector<Triple<T>> entries_;  // row-major sorted
};

/// PETSc-like distributed matrix: CSR rebuilt from scratch every batch; no
/// deletion support (the paper omits PETSc from deletion experiments).
template <typename T>
class PreallocCsrMatrix {
public:
    PreallocCsrMatrix(ProcessGrid& grid, index_t nrows, index_t ncols)
        : shape_(grid, nrows, ncols),
          csr_(shape_.local_rows(), shape_.local_cols()) {}

    [[nodiscard]] const DistShape& shape() const { return shape_; }
    [[nodiscard]] std::size_t local_nnz() const { return csr_.nnz(); }

    template <sparse::Semiring SR>
    void construct(std::vector<Triple<T>> tuples) {
        csr_ = sparse::Csr<T>(shape_.local_rows(), shape_.local_cols());
        insert_batch<SR>(std::move(tuples));
    }

    /// MatSetValues + MatAssembly cost model: dump the current CSR to
    /// triples, append the batch, sort everything, rebuild the CSR.
    template <sparse::Semiring SR>
    void insert_batch(std::vector<Triple<T>> tuples) {
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        auto all = csr_.to_triples();
        all.reserve(all.size() + batch.size());
        for (const auto& t : batch)
            all.push_back({shape_.local_row(t.row), shape_.local_col(t.col),
                           t.value});
        std::stable_sort(all.begin(), all.end(), detail::row_major_less<T>);
        std::size_t w = 0;
        for (std::size_t r = 0; r < all.size(); ++r) {
            if (w > 0 && all[w - 1].row == all[r].row &&
                all[w - 1].col == all[r].col) {
                all[w - 1].value = SR::add(all[w - 1].value, all[r].value);
            } else {
                all[w++] = all[r];
            }
        }
        all.resize(w);
        csr_ = sparse::Csr<T>::from_triples(shape_.local_rows(),
                                            shape_.local_cols(), all);
    }

    void update_batch(std::vector<Triple<T>> tuples) {
        // Same rebuild; batch values overwrite.
        auto batch = core::redistribute_tuples(shape_.grid(), shape_,
                                               std::move(tuples),
                                               RedistMode::DirectSort);
        auto all = csr_.to_triples();
        std::stable_sort(all.begin(), all.end(), detail::row_major_less<T>);
        std::vector<Triple<T>> local_batch;
        local_batch.reserve(batch.size());
        for (const auto& t : batch)
            local_batch.push_back({shape_.local_row(t.row),
                                   shape_.local_col(t.col), t.value});
        std::stable_sort(local_batch.begin(), local_batch.end(),
                         detail::row_major_less<T>);
        for (auto& e : all) {
            auto it = std::lower_bound(local_batch.begin(), local_batch.end(),
                                       e, detail::row_major_less<T>);
            if (it != local_batch.end() && it->row == e.row && it->col == e.col)
                e.value = it->value;
        }
        csr_ = sparse::Csr<T>::from_triples(shape_.local_rows(),
                                            shape_.local_cols(), all);
    }

    [[nodiscard]] const sparse::Csr<T>& local_csr() const { return csr_; }

private:
    DistShape shape_;
    sparse::Csr<T> csr_;
};

}  // namespace dsg::baseline
