// Distributed sparse matrices in the 2D block distribution (Section IV).
//
// Each rank of the rows x cols grid owns one block; blocks store LOCAL
// indices (global index minus the block offset). Two flavours exist:
//  - DistDynamicMatrix: the DHB-backed dynamic matrix supporting in-place
//    updates (the paper's dynamic storage);
//  - DistDcsr: a static hypersparse block (update matrices A*, B*).
//
// These are SPMD objects: every rank constructs its own instance inside a
// World::run body, and methods marked "collective" must be called by all
// ranks together.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/process_grid.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/types.hpp"

namespace dsg::core {

using sparse::Dcsr;
using sparse::DynamicMatrix;
using sparse::Triple;

/// Shape/distribution information shared by both matrix flavours.
class DistShape {
public:
    DistShape() = default;
    DistShape(ProcessGrid& grid, index_t nrows, index_t ncols)
        : grid_(&grid),
          nrows_(nrows),
          ncols_(ncols),
          rp_(grid.row_partition(nrows)),
          cp_(grid.col_partition(ncols)) {}

    [[nodiscard]] ProcessGrid& grid() const { return *grid_; }
    [[nodiscard]] index_t nrows() const { return nrows_; }
    [[nodiscard]] index_t ncols() const { return ncols_; }
    [[nodiscard]] const BlockPartition& row_partition() const { return rp_; }
    [[nodiscard]] const BlockPartition& col_partition() const { return cp_; }

    /// Rows/cols of the block at grid position (i, j).
    [[nodiscard]] index_t block_rows(int i) const { return rp_.size(i); }
    [[nodiscard]] index_t block_cols(int j) const { return cp_.size(j); }
    /// Rows/cols of this rank's block.
    [[nodiscard]] index_t local_rows() const {
        return rp_.size(grid_->grid_row());
    }
    [[nodiscard]] index_t local_cols() const {
        return cp_.size(grid_->grid_col());
    }

    /// World rank owning global coordinate (i, j).
    [[nodiscard]] int owner_rank(index_t i, index_t j) const {
        return grid_->rank_of(rp_.owner(i), cp_.owner(j));
    }
    /// Global -> local coordinates (valid on the owner).
    [[nodiscard]] index_t local_row(index_t i) const { return rp_.to_local(i); }
    [[nodiscard]] index_t local_col(index_t j) const { return cp_.to_local(j); }
    /// Local -> global coordinates on this rank.
    [[nodiscard]] index_t global_row(index_t i) const {
        return rp_.to_global(grid_->grid_row(), i);
    }
    [[nodiscard]] index_t global_col(index_t j) const {
        return cp_.to_global(grid_->grid_col(), j);
    }

private:
    ProcessGrid* grid_ = nullptr;
    index_t nrows_ = 0;
    index_t ncols_ = 0;
    BlockPartition rp_;
    BlockPartition cp_;
};

/// Distributed dynamic matrix: one DHB block per rank.
template <typename T>
class DistDynamicMatrix {
public:
    DistDynamicMatrix(ProcessGrid& grid, index_t nrows, index_t ncols)
        : shape_(grid, nrows, ncols),
          local_(shape_.local_rows(), shape_.local_cols()) {}

    [[nodiscard]] const DistShape& shape() const { return shape_; }
    [[nodiscard]] DynamicMatrix<T>& local() { return local_; }
    [[nodiscard]] const DynamicMatrix<T>& local() const { return local_; }

    /// Collective: total non-zeros across all blocks.
    [[nodiscard]] std::size_t global_nnz() const {
        return shape_.grid().world().template allreduce<std::uint64_t>(
            local_.nnz(), [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }

    /// Freezes this rank's block as an immutable DCSR tile (local indices,
    /// rows ascending) — the extraction step of snapshot publication
    /// (src/serve/). O(local nnz); rank-local. The caller must hold the
    /// block quiescent (the serving layer runs this under the epoch
    /// engine's writer lock, where the matrix cannot change).
    [[nodiscard]] Dcsr<T> freeze_tile() const { return local_.to_dcsr(); }

    /// Collective: gathers every entry (with global coordinates) on every
    /// rank. Testing/debugging helper; O(global nnz) everywhere.
    [[nodiscard]] std::vector<Triple<T>> gather_global() const
        requires std::is_trivially_copyable_v<T>
    {
        par::Buffer mine;
        par::BufferWriter w(mine);
        std::vector<Triple<T>> ts;
        ts.reserve(local_.nnz());
        local_.for_each([&](index_t i, index_t j, const T& v) {
            ts.push_back({shape_.global_row(i), shape_.global_col(j), v});
        });
        w.write_vector(ts);
        auto all = shape_.grid().world().allgather(std::move(mine));
        std::vector<Triple<T>> out;
        for (auto& buf : all) {
            par::BufferReader r(buf);
            auto part = r.template read_vector<Triple<T>>();
            out.insert(out.end(), part.begin(), part.end());
        }
        return out;
    }

private:
    DistShape shape_;
    DynamicMatrix<T> local_;
};

/// Read-only point-query surface over one rank's block of a distributed
/// dynamic matrix, in GLOBAL coordinates. This is what the streaming engine
/// hands to reader threads between epochs (src/stream/epoch_engine.hpp owns
/// the locking protocol that makes concurrent use data-race free); `version`
/// identifies the epoch the view observes, so readers can detect staleness.
template <typename T>
class SnapshotView {
public:
    SnapshotView(const DistDynamicMatrix<T>& m, std::uint64_t version)
        : m_(&m), version_(version) {}

    /// Epoch counter at snapshot time (monotone per engine).
    [[nodiscard]] std::uint64_t version() const { return version_; }
    [[nodiscard]] const DistShape& shape() const { return m_->shape(); }

    /// True when global (i, j) falls inside this rank's block — the only
    /// coordinates this rank can answer queries about.
    [[nodiscard]] bool owns(index_t i, index_t j) const {
        const auto& s = m_->shape();
        return s.row_partition().owner(i) == s.grid().grid_row() &&
               s.col_partition().owner(j) == s.grid().grid_col();
    }
    /// Stored value at global (i, j), or nullptr when absent. Pre: owns(i, j).
    [[nodiscard]] const T* find(index_t i, index_t j) const {
        assert(owns(i, j));
        return m_->local().find(m_->shape().local_row(i),
                                m_->shape().local_col(j));
    }
    /// Whether (i, j) is a stored non-zero of this rank's block.
    [[nodiscard]] bool contains(index_t i, index_t j) const {
        return owns(i, j) && find(i, j) != nullptr;
    }
    [[nodiscard]] std::size_t local_nnz() const { return m_->local().nnz(); }

private:
    const DistDynamicMatrix<T>* m_;
    std::uint64_t version_;
};

/// Distributed static hypersparse matrix: one DCSR block per rank.
template <typename T>
class DistDcsr {
public:
    DistDcsr(ProcessGrid& grid, index_t nrows, index_t ncols)
        : shape_(grid, nrows, ncols),
          local_(shape_.local_rows(), shape_.local_cols()) {}

    [[nodiscard]] const DistShape& shape() const { return shape_; }
    [[nodiscard]] Dcsr<T>& local() { return local_; }
    [[nodiscard]] const Dcsr<T>& local() const { return local_; }

    [[nodiscard]] std::size_t global_nnz() const {
        return shape_.grid().world().template allreduce<std::uint64_t>(
            local_.nnz(), [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }

private:
    DistShape shape_;
    Dcsr<T> local_;
};

}  // namespace dsg::core
