// Dynamic distributed SpGEMM for algebraic updates — Algorithm 1 of the
// paper — plus the COMPUTEPATTERN variant that Algorithm 2 builds on.
//
// Given C = AB and hypersparse update matrices A*, B* with A' = A + A*,
// B' = B + B* (semiring addition), distributivity gives
//     C' = C + C*,   C* = A* B' + A B*.                            (Eq. 1)
//
// Instead of SUMMA (which would broadcast blocks of the *large* operands A
// and B'), the algorithm broadcasts only the hypersparse blocks of A* and B*
// and pays for that with a non-local aggregation of the partial results:
//
//   round k (of sqrt(p)):
//     - A*_{k,i} is broadcast along grid row i (it was moved to rank (i,k)
//       by one initial transpose send/receive), B*_{j,k} along grid col j;
//     - rank (i,j) computes X^i_{k,j} = A*_{k,i} B'_{i,j} and
//       Y^j_{i,k} = A_{i,j} B*_{j,k} locally;
//     - X^i_{k,j} is tree-reduced over grid column j onto rank (k,j), and
//       Y^j_{i,k} over grid row i onto rank (i,k) (sparse reduce, Sec. VI-A).
//
// Communication volume is O((nnz(A*) + nnz(B*) + nnz(C*)) / sqrt(p)) versus
// SUMMA's O((nnz(A) + nnz(B')) / sqrt(p)).
#pragma once

#include "core/dist_matrix.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"
#include "sparse/transposed_spgemm.hpp"

namespace dsg::core {

struct DynamicSpgemmOptions {
    par::ThreadPool* pool = nullptr;
};

namespace detail {

/// The communication skeleton shared by the algebraic algorithm and
/// COMPUTEPATTERN. MultX(a_star_ki, k) and MultY(b_star_jk, k) produce the
/// local partial products (Dcsr<V>); AddV combines overlapping entries in the
/// tree reduction; AbsorbX/AbsorbY consume the fully reduced X_{i,j} / Y_{i,j}
/// on their owner rank.
template <typename T, typename V, typename MultX, typename MultY,
          typename AddV, typename AbsorbX, typename AbsorbY>
void algebraic_rounds(ProcessGrid& grid, const Dcsr<T>& astar_local,
                      const Dcsr<T>& bstar_local, MultX&& mult_x,
                      MultY&& mult_y, AddV&& add_v, AbsorbX&& absorb_x,
                      AbsorbY&& absorb_y) {
    using par::Phase;
    using par::Profiler;
    constexpr int kTagA = 101;
    constexpr int kTagB = 102;
    const int q = grid.q();
    const int i = grid.grid_row();
    const int j = grid.grid_col();

    // Initial transpose exchange: rank (i,j) sends its A*_{i,j} and B*_{i,j}
    // to rank (j,i); afterwards it holds A*_{j,i} and B*_{j,i}, which makes
    // all q broadcasts of a round run in parallel (Fig. 1a).
    Dcsr<T> astar_t;
    Dcsr<T> bstar_t;
    {
        Profiler::Scope scope(Phase::SendRecv);
        const int peer = grid.transposed_rank();
        astar_t = Dcsr<T>::deserialize(
            grid.world().sendrecv(peer, kTagA, astar_local.serialize()));
        bstar_t = Dcsr<T>::deserialize(
            grid.world().sendrecv(peer, kTagB, bstar_local.serialize()));
    }

    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<V>::deserialize(a);
        auto mb = Dcsr<V>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add_v).serialize();
    };

    for (int k = 0; k < q; ++k) {
        // Broadcast A*_{k,i} along row i (root: column k holds it after the
        // transpose exchange) and B*_{j,k} along column j (root: row k).
        Dcsr<T> astar_ki;
        Dcsr<T> bstar_jk;
        {
            Profiler::Scope scope(Phase::Bcast);
            par::Buffer abuf;
            if (j == k) abuf = astar_t.serialize();
            astar_ki =
                Dcsr<T>::deserialize(grid.row_comm().bcast(k, std::move(abuf)));
            par::Buffer bbuf;
            if (i == k) bbuf = bstar_t.serialize();
            bstar_jk =
                Dcsr<T>::deserialize(grid.col_comm().bcast(k, std::move(bbuf)));
        }

        Dcsr<V> x_part;
        Dcsr<V> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            x_part = mult_x(astar_ki, k);
            y_part = mult_y(bstar_jk, k);
        }

        par::Buffer x_wire;
        par::Buffer y_wire;
        {
            // Packing the partial results for the tree reduction (the
            // "Scatter" bar of Fig. 12).
            Profiler::Scope scope(Phase::Scatter);
            x_wire = x_part.serialize();
            y_wire = y_part.serialize();
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            // X^i_{k,j} -> rank (k,j): reduce over this grid column, root k.
            par::Buffer xr = grid.col_comm().reduce_merge(
                k, std::move(x_wire), merge_buffers);
            if (i == k) absorb_x(Dcsr<V>::deserialize(xr));
            // Y^j_{i,k} -> rank (i,k): reduce over this grid row, root k.
            par::Buffer yr = grid.row_comm().reduce_merge(
                k, std::move(y_wire), merge_buffers);
            if (j == k) absorb_y(Dcsr<V>::deserialize(yr));
        }
    }
}

}  // namespace detail

/// Algorithm 1: C <- C + A* B' + A B* over SR. A is the matrix *before* the
/// update, Bprime the one *after*; Astar/Bstar are the hypersparse update
/// matrices (semiring addition semantics). Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic(DistDynamicMatrix<T>& C,
                              const DistDynamicMatrix<T>& A,
                              const DistDcsr<T>& Astar,
                              const DistDynamicMatrix<T>& Bprime,
                              const DistDcsr<T>& Bstar,
                              const DynamicSpgemmOptions& opts = {},
                              DistDynamicMatrix<T>* cstar_out = nullptr) {
    ProcessGrid& grid = C.shape().grid();
    const auto& rp = C.shape().row_partition();
    const auto& cp = C.shape().col_partition();
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto absorb = [&](const Dcsr<T>& reduced) {
        par::Profiler::Scope scope(par::Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, const T& x) {
            C.local().insert_or_add(u, v, x, SR::add);
            // Optionally collect C* itself (distributed), e.g. to feed the
            // next stage of a chained product (graph contraction).
            if (cstar_out != nullptr)
                cstar_out->local().insert_or_add(u, v, x, SR::add);
        });
    };
    detail::algebraic_rounds<T, T>(
        grid, Astar.local(), Bstar.local(),
        // X^i_{k,j} = A*_{k,i} · B'_{i,j}
        [&](const Dcsr<T>& astar_ki, int k) {
            return sparse::spgemm<SR>(rp.size(k), C.shape().local_cols(),
                                      sparse::as_left(astar_ki),
                                      sparse::as_right(Bprime.local()), sopts);
        },
        // Y^j_{i,k} = A_{i,j} · B*_{j,k}
        [&](const Dcsr<T>& bstar_jk, int k) {
            return sparse::spgemm<SR>(C.shape().local_rows(), cp.size(k),
                                      sparse::as_left(A.local()),
                                      sparse::as_right(bstar_jk), sopts);
        },
        [](const T& a, const T& b) { return SR::add(a, b); }, absorb, absorb);
}

/// Algorithm 1 with a transposed left operand (Section V-C):
/// C <- C + A*^T B' + A^T B*, where A and A* are (inner x n) and C is n x m.
///
/// Differences from the untransposed flow, exactly as the paper describes:
///  - no initial transpose send/receive is needed for A*: block A*_{i,r} is
///    broadcast along grid row i directly from its owner (i, r), locally
///    pre-transposed (hypersparse, O(nnz));
///  - B* is broadcast over *rows* instead of columns;
///  - the Y-term partial (A_{i,j})^T B*_{i,r} is computed against the stored
///    (row-major) A block by pairing the few non-empty rows of B* with the
///    matching rows of A (sparse/transposed_spgemm.hpp), and the reduced
///    block is forwarded to its owner with one transposed-rank message (the
///    send/receive that disappeared at the start reappears here).
/// Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic_transA(DistDynamicMatrix<T>& C,
                                     const DistDynamicMatrix<T>& A,
                                     const DistDcsr<T>& Astar,
                                     const DistDynamicMatrix<T>& Bprime,
                                     const DistDcsr<T>& Bstar,
                                     const DynamicSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    constexpr int kTagY = 105;
    ProcessGrid& grid = C.shape().grid();
    const int q = grid.q();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    // C rows are partitioned like A's columns (nu), C cols like B's (mu).
    const auto& nu = C.shape().row_partition();
    const auto& mu = C.shape().col_partition();
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto add = [](const T& a, const T& b) { return SR::add(a, b); };
    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<T>::deserialize(a);
        auto mb = Dcsr<T>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add).serialize();
    };
    auto absorb = [&](const Dcsr<T>& reduced) {
        Profiler::Scope scope(Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, const T& x) {
            C.local().insert_or_add(u, v, x, SR::add);
        });
    };

    for (int r = 0; r < q; ++r) {
        // X-term: (A*_{i,r})^T broadcast along grid row i, root column r.
        Dcsr<T> astar_t;
        {
            Profiler::Scope scope(Phase::Bcast);
            par::Buffer abuf;
            if (j == r) abuf = sparse::dcsr_transpose(Astar.local()).serialize();
            astar_t =
                Dcsr<T>::deserialize(grid.row_comm().bcast(r, std::move(abuf)));
        }
        Dcsr<T> x_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            // (A*_{i,r})^T is nu_r x kappa_i; B'_{i,j} is kappa_i x mu_j.
            x_part = sparse::spgemm<SR>(nu.size(r), C.shape().local_cols(),
                                        sparse::as_left(astar_t),
                                        sparse::as_right(Bprime.local()), sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer xr = grid.col_comm().reduce_merge(
                r, x_part.serialize(), merge_buffers);
            if (i == r) absorb(Dcsr<T>::deserialize(xr));
        }

        // Y-term: B*_{i,r} broadcast along grid row i, root column r.
        Dcsr<T> bstar_ir;
        {
            Profiler::Scope scope(Phase::Bcast);
            par::Buffer bbuf;
            if (j == r) bbuf = Bstar.local().serialize();
            bstar_ir =
                Dcsr<T>::deserialize(grid.row_comm().bcast(r, std::move(bbuf)));
        }
        Dcsr<T> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            // (A_{i,j})^T B*_{i,r} -> block (j, r) of C: nu_j x mu_r.
            y_part = sparse::spgemm_transposed_left<SR>(
                A.shape().local_cols(), mu.size(r), A.local(), bstar_ir);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            // Partials for block (j, r) live on grid column j; reduce to the
            // rank in grid row r, then forward to the owner (j, r) with one
            // transposed-rank message.
            par::Buffer yr = grid.col_comm().reduce_merge(
                r, y_part.serialize(), merge_buffers);
            if (i == r && j == r) {
                absorb(Dcsr<T>::deserialize(yr));
            } else if (i == r) {
                grid.world().send(grid.transposed_rank(), kTagY + r,
                                  std::move(yr));
            }
            if (j == r && i != r) {
                par::Buffer in =
                    grid.world().recv(grid.transposed_rank(), kTagY + r);
                absorb(Dcsr<T>::deserialize(in));
            }
        }
    }
}

/// Algorithm 1 with a transposed right operand (Section V-C):
/// C <- C + A* B'^T + A B*^T, where B and B* are (m x inner), A and A* are
/// (n x inner) and C is n x m.
///
/// As the paper notes, A* is now broadcast over *columns* of the grid (no
/// initial transpose exchange), and so is B*. Local multiplications against
/// transposed right operands are rewritten to keep both operands streamable:
///  - X-term: A*_{k,c} (B'_{j,c})^T = (B'_{j,c} (A*_{k,c})^T)^T — one
///    ordinary Gustavson multiply against the locally transposed hypersparse
///    A* block, plus a transpose of the (small) partial result;
///  - Y-term: A_{i,c} (B*_{k,c})^T multiplies the stored A block against the
///    locally transposed hypersparse B* block directly.
/// X partials are reduced along grid rows and forwarded to the owner with a
/// transposed-rank message; Y partials reduce along grid rows straight onto
/// their owner. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic_transB(DistDynamicMatrix<T>& C,
                                     const DistDynamicMatrix<T>& A,
                                     const DistDcsr<T>& Astar,
                                     const DistDynamicMatrix<T>& Bprime,
                                     const DistDcsr<T>& Bstar,
                                     const DynamicSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    constexpr int kTagX = 107;
    ProcessGrid& grid = C.shape().grid();
    const int q = grid.q();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    // C rows partition like A's rows (n), C cols like B's rows (m).
    const auto& rp = C.shape().row_partition();
    const auto& mp = C.shape().col_partition();
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto add = [](const T& a, const T& b) { return SR::add(a, b); };
    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<T>::deserialize(a);
        auto mb = Dcsr<T>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add).serialize();
    };
    auto absorb = [&](const Dcsr<T>& reduced) {
        Profiler::Scope scope(Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, const T& x) {
            C.local().insert_or_add(u, v, x, SR::add);
        });
    };

    for (int k = 0; k < q; ++k) {
        // Both update blocks of grid row k travel down their columns.
        Dcsr<T> astar_kc;
        Dcsr<T> bstar_kc;
        {
            Profiler::Scope scope(Phase::Bcast);
            par::Buffer abuf;
            par::Buffer bbuf;
            if (i == k) {
                abuf = Astar.local().serialize();
                bbuf = Bstar.local().serialize();
            }
            astar_kc =
                Dcsr<T>::deserialize(grid.col_comm().bcast(k, std::move(abuf)));
            bstar_kc =
                Dcsr<T>::deserialize(grid.col_comm().bcast(k, std::move(bbuf)));
        }

        // X-term partial for output block (k, j), computed transposed:
        // W = B'_{j,c} (A*_{k,c})^T, then X = W^T.
        Dcsr<T> x_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto astar_t = sparse::dcsr_transpose(astar_kc);
            auto w = sparse::spgemm<SR>(
                Bprime.shape().local_rows(), rp.size(k),
                sparse::as_left(Bprime.local()), sparse::as_right(astar_t),
                sopts);
            x_part = sparse::dcsr_transpose(w);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            // Partials live on grid row j's ranks; reduce to column k, then
            // forward (j, k) -> (k, j).
            par::Buffer xr = grid.row_comm().reduce_merge(
                k, x_part.serialize(), merge_buffers);
            if (j == k && i == k) {
                absorb(Dcsr<T>::deserialize(xr));
            } else if (j == k) {
                grid.world().send(grid.transposed_rank(), kTagX + k,
                                  std::move(xr));
            }
            if (i == k && j != k) {
                par::Buffer in =
                    grid.world().recv(grid.transposed_rank(), kTagX + k);
                absorb(Dcsr<T>::deserialize(in));
            }
        }

        // Y-term partial for output block (i, k):
        // A_{i,c} (B*_{k,c})^T via the locally transposed B* block.
        Dcsr<T> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto bstar_t = sparse::dcsr_transpose(bstar_kc);
            y_part = sparse::spgemm<SR>(C.shape().local_rows(), mp.size(k),
                                        sparse::as_left(A.local()),
                                        sparse::as_right(bstar_t), sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer yr = grid.row_comm().reduce_merge(
                k, y_part.serialize(), merge_buffers);
            if (j == k) absorb(Dcsr<T>::deserialize(yr));
        }
    }
}

/// COMPUTEPATTERN (Section V-B): the sparsity structure of
/// C* = A* B' + A B*, with each entry carrying the F* Bloom bitfield (bit
/// (k mod 64) set iff inner index k contributes). Numerical values of the
/// operands are ignored. Returns the distributed pattern matrix. Collective.
template <typename T>
DistDynamicMatrix<std::uint64_t> compute_pattern(
    const DistDynamicMatrix<T>& A, const DistDcsr<T>& Astar,
    const DistDynamicMatrix<T>& Bprime, const DistDcsr<T>& Bstar,
    const DynamicSpgemmOptions& opts = {}) {
    ProcessGrid& grid = A.shape().grid();
    DistDynamicMatrix<std::uint64_t> cstar(grid, A.shape().nrows(),
                                           Bprime.shape().ncols());
    const auto& rp = cstar.shape().row_partition();
    const auto& cp = cstar.shape().col_partition();
    const BlockPartition ip = grid.partition(A.shape().ncols());
    auto bits_or = [](std::uint64_t a, std::uint64_t b) { return a | b; };

    auto absorb = [&](const Dcsr<std::uint64_t>& reduced) {
        par::Profiler::Scope scope(par::Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, std::uint64_t bits) {
            cstar.local().insert_or_add(u, v, bits, bits_or);
        });
    };
    detail::algebraic_rounds<T, std::uint64_t>(
        grid, Astar.local(), Bstar.local(),
        [&](const Dcsr<T>& astar_ki, int k) {
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            // Columns of A*_{k,i} live in inner block i of this grid row.
            sopts.inner_offset = ip.offset(grid.grid_row());
            return sparse::spgemm_pattern(rp.size(k),
                                          cstar.shape().local_cols(),
                                          sparse::as_left(astar_ki),
                                          sparse::as_right(Bprime.local()),
                                          sopts);
        },
        [&](const Dcsr<T>& bstar_jk, int k) {
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            // Columns of A_{i,j} live in inner block j.
            sopts.inner_offset = ip.offset(grid.grid_col());
            return sparse::spgemm_pattern(cstar.shape().local_rows(),
                                          cp.size(k),
                                          sparse::as_left(A.local()),
                                          sparse::as_right(bstar_jk), sopts);
        },
        bits_or, absorb, absorb);
    return cstar;
}

}  // namespace dsg::core
