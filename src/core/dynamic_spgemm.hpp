// Dynamic distributed SpGEMM for algebraic updates — Algorithm 1 of the
// paper — plus the COMPUTEPATTERN variant that Algorithm 2 builds on.
//
// Given C = AB and hypersparse update matrices A*, B* with A' = A + A*,
// B' = B + B* (semiring addition), distributivity gives
//     C' = C + C*,   C* = A* B' + A B*.                            (Eq. 1)
//
// Instead of SUMMA (which would broadcast blocks of the *large* operands A
// and B'), the algorithm moves only the hypersparse A* and B* and pays for
// that with a non-local aggregation of the partial results. On a rows x cols
// grid the inner dimension K carries two partitions (K^r over grid rows from
// B's distribution, K^c over grid cols from A's), so the blocks of A* and B*
// are first *re-slabbed* to the partition of the operand they multiply:
//
//   - A* is exchanged into column slabs A*[:, K^r_i] (an alltoallv down each
//     process column followed by an allgather along the process row);
//   - B* into row slabs B*[K^c_j, :] (alltoallv along rows, allgather down
//     columns).
//   On a square grid this degenerates to the paper's single transpose
//   send/receive plus the per-round broadcasts (same bytes, same O(nnz/
//   sqrt(p)) per-rank volume).
//
//   X rounds (one per grid row a):   rank (i,j) multiplies the N^r_a row
//     slice of its A* slab with B'_{i,j} and tree-reduces the partial over
//     its process column onto rank (a,j) (sparse reduce, Sec. VI-A).
//   Y rounds (one per grid col b):   A_{i,j} times the M^c_b column slice of
//     the B* slab, tree-reduced over the process row onto rank (i,b).
//
// Communication volume is O((nnz(A*) + nnz(B*) + nnz(C*)) / sqrt(p)) versus
// SUMMA's O((nnz(A) + nnz(B')) / sqrt(p)).
#pragma once

#include <utility>
#include <vector>

#include "core/dist_matrix.hpp"
#include "core/redistribute.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"
#include "sparse/transposed_spgemm.hpp"

namespace dsg::core {

struct DynamicSpgemmOptions {
    par::ThreadPool* pool = nullptr;
    /// Async posts the two slab-exchange alltoallvs together so they overlap
    /// each other in flight. Bit-identical results either way.
    par::CommMode comm_mode = par::CommMode::Sync;
};

namespace detail {

/// Buckets triples by key into `buckets` packed wire buffers (the tuples are
/// reordered in place by the counting sort).
template <typename T, typename Key>
std::vector<par::Buffer> bucket_triples(std::vector<Triple<T>>& ts,
                                        int buckets, Key&& key) {
    auto offsets = sparse::counting_sort(
        ts, static_cast<std::size_t>(buckets), std::forward<Key>(key));
    std::vector<par::Buffer> send(static_cast<std::size_t>(buckets));
    for (int d = 0; d < buckets; ++d)
        send[static_cast<std::size_t>(d)] = pack_triples(
            ts.data() + offsets[static_cast<std::size_t>(d)],
            offsets[static_cast<std::size_t>(d) + 1] -
                offsets[static_cast<std::size_t>(d)]);
    return send;
}

/// Allgathers this rank's triples over `comm` and concatenates (coordinates
/// stay as passed in; callers localize afterwards).
template <typename T>
std::vector<Triple<T>> allgather_triples(par::Comm& comm,
                                         std::vector<Triple<T>> mine) {
    par::Buffer buf = pack_triples(mine.data(), mine.size());
    auto all = comm.allgather(std::move(buf));
    std::vector<Triple<T>> out;
    for (int s = 0; s < comm.size(); ++s) {
        if (s == comm.rank()) continue;
        unpack_triples(all[static_cast<std::size_t>(s)], out);
    }
    out.insert(out.end(), mine.begin(), mine.end());
    return out;
}

/// The communication skeleton shared by the algebraic algorithm and
/// COMPUTEPATTERN. MultX(a_slice, a) receives the N^r_a x K^r_i slice of the
/// A* slab; MultY(b_slice, b) the K^c_j x M^c_b slice of the B* slab; both
/// produce local partial products (Dcsr<V>). AddV combines overlapping
/// entries in the tree reduction; AbsorbX/AbsorbY consume the fully reduced
/// X_{a,j} / Y_{i,b} on their owner rank.
template <typename T, typename V, typename MultX, typename MultY,
          typename AddV, typename AbsorbX, typename AbsorbY>
void algebraic_rounds(ProcessGrid& grid, const DistDcsr<T>& Astar,
                      const DistDcsr<T>& Bstar, MultX&& mult_x,
                      MultY&& mult_y, AddV&& add_v, AbsorbX&& absorb_x,
                      AbsorbY&& absorb_y,
                      par::CommMode comm_mode = par::CommMode::Sync) {
    using par::Phase;
    using par::Profiler;
    const int rows = grid.rows();
    const int cols = grid.cols();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const index_t n = Astar.shape().nrows();
    const index_t K = Astar.shape().ncols();
    const index_t m = Bstar.shape().ncols();
    const BlockPartition nr = grid.row_partition(n);
    const BlockPartition mc = grid.col_partition(m);
    const BlockPartition kr = grid.row_partition(K);
    const BlockPartition kc = grid.col_partition(K);

    // ---- Slab exchange (replaces the square grid's transpose exchange).
    Dcsr<T> aslab;  // A*[:, K^r_i] — global rows, K^r_i-local cols
    Dcsr<T> bslab;  // B*[K^c_j, :] — K^c_j-local rows, global cols
    {
        Profiler::Scope scope(Phase::SendRecv);
        std::vector<Triple<T>> atrip;
        atrip.reserve(Astar.local().nnz());
        Astar.local().for_each([&](index_t u, index_t v, const T& x) {
            atrip.push_back({u + nr.offset(i), v + kc.offset(j), x});
        });
        std::vector<Triple<T>> btrip;
        btrip.reserve(Bstar.local().nnz());
        Bstar.local().for_each([&](index_t u, index_t v, const T& x) {
            btrip.push_back({u + kr.offset(i), v + mc.offset(j), x});
        });
        auto asend = bucket_triples(
            atrip, rows, [&](const Triple<T>& t) { return kr.owner(t.col); });
        auto bsend = bucket_triples(
            btrip, cols, [&](const Triple<T>& t) { return kc.owner(t.row); });
        std::vector<par::Buffer> arecv;
        std::vector<par::Buffer> brecv;
        if (comm_mode == par::CommMode::Async) {
            // Both exchanges in flight at once — the overlap of this path.
            auto pa = grid.col_comm().ialltoallv(std::move(asend));
            auto pb = grid.row_comm().ialltoallv(std::move(bsend));
            arecv = pa.wait();
            brecv = pb.wait();
        } else {
            arecv = grid.col_comm().alltoallv(std::move(asend));
            brecv = grid.row_comm().alltoallv(std::move(bsend));
        }
        atrip.clear();
        for (const auto& buf : arecv) unpack_triples(buf, atrip);
        btrip.clear();
        for (const auto& buf : brecv) unpack_triples(buf, btrip);
        atrip = allgather_triples(grid.row_comm(), std::move(atrip));
        btrip = allgather_triples(grid.col_comm(), std::move(btrip));
        for (auto& t : atrip) t.col -= kr.offset(i);
        for (auto& t : btrip) t.row -= kc.offset(j);
        aslab = sparse::dcsr_from_unique_triples(n, kr.size(i),
                                                 std::move(atrip));
        bslab = sparse::dcsr_from_unique_triples(kc.size(j), m,
                                                 std::move(btrip));
    }

    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<V>::deserialize(a);
        auto mb = Dcsr<V>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add_v).serialize();
    };

    // ---- X rounds: one per grid row (output row block).
    for (int a = 0; a < rows; ++a) {
        Dcsr<V> x_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            x_part = mult_x(
                sparse::dcsr_row_block(aslab, nr.offset(a), nr.offset(a + 1)),
                a);
        }
        par::Buffer x_wire;
        {
            Profiler::Scope scope(Phase::Scatter);
            x_wire = x_part.serialize();
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer xr = grid.col_comm().reduce_merge(
                a, std::move(x_wire), merge_buffers);
            if (i == a) absorb_x(Dcsr<V>::deserialize(xr));
        }
    }
    // ---- Y rounds: one per grid column (output column block).
    for (int b = 0; b < cols; ++b) {
        Dcsr<V> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            y_part = mult_y(
                sparse::dcsr_col_block(bslab, mc.offset(b), mc.offset(b + 1)),
                b);
        }
        par::Buffer y_wire;
        {
            Profiler::Scope scope(Phase::Scatter);
            y_wire = y_part.serialize();
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer yr = grid.row_comm().reduce_merge(
                b, std::move(y_wire), merge_buffers);
            if (j == b) absorb_y(Dcsr<V>::deserialize(yr));
        }
    }
}

/// Scatters a reduced partial block whose rows or columns follow the "wrong"
/// partition to the owners of the output blocks. `pieces[d]` must hold the
/// triples for destination d in the destination's local coordinates; every
/// piece is sent (empty included) so receivers match deterministically.
template <typename T>
void send_pieces(ProcessGrid& grid,
                 std::vector<std::vector<Triple<T>>>& pieces, int tag,
                 const std::function<int(int)>& dest_rank) {
    for (std::size_t d = 0; d < pieces.size(); ++d)
        grid.world().send(dest_rank(static_cast<int>(d)), tag,
                          pack_triples(pieces[d].data(), pieces[d].size()));
}

}  // namespace detail

/// Algorithm 1: C <- C + A* B' + A B* over SR. A is the matrix *before* the
/// update, Bprime the one *after*; Astar/Bstar are the hypersparse update
/// matrices (semiring addition semantics). Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic(DistDynamicMatrix<T>& C,
                              const DistDynamicMatrix<T>& A,
                              const DistDcsr<T>& Astar,
                              const DistDynamicMatrix<T>& Bprime,
                              const DistDcsr<T>& Bstar,
                              const DynamicSpgemmOptions& opts = {},
                              DistDynamicMatrix<T>* cstar_out = nullptr) {
    ProcessGrid& grid = C.shape().grid();
    const auto& rp = C.shape().row_partition();
    const auto& cp = C.shape().col_partition();
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto absorb = [&](const Dcsr<T>& reduced) {
        par::Profiler::Scope scope(par::Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, const T& x) {
            C.local().insert_or_add(u, v, x, SR::add);
            // Optionally collect C* itself (distributed), e.g. to feed the
            // next stage of a chained product (graph contraction).
            if (cstar_out != nullptr)
                cstar_out->local().insert_or_add(u, v, x, SR::add);
        });
    };
    detail::algebraic_rounds<T, T>(
        grid, Astar, Bstar,
        // X_{a,j} partial: A*[N^r_a, K^r_i] · B'_{i,j}
        [&](const Dcsr<T>& a_slice, int a) {
            return sparse::spgemm<SR>(rp.size(a), C.shape().local_cols(),
                                      sparse::as_left(a_slice),
                                      sparse::as_right(Bprime.local()), sopts);
        },
        // Y_{i,b} partial: A_{i,j} · B*[K^c_j, M^c_b]
        [&](const Dcsr<T>& b_slice, int b) {
            return sparse::spgemm<SR>(C.shape().local_rows(), cp.size(b),
                                      sparse::as_left(A.local()),
                                      sparse::as_right(b_slice), sopts);
        },
        [](const T& a, const T& b) { return SR::add(a, b); }, absorb, absorb,
        opts.comm_mode);
}

/// Algorithm 1 with a transposed left operand (Section V-C):
/// C <- C + A*^T B' + A^T B*, where A and A* are (inner x n) and C is n x m.
///
/// Differences from the untransposed flow, exactly as the paper describes:
///  - no re-slab of A* is needed: its blocks already sit on the inner-row
///    partition, so one allgather along each process row assembles the full
///    row slab A*[K^r_i, :], and the X partial transposes a hypersparse
///    column slice locally (O(nnz));
///  - B* is likewise assembled along *rows* (slab B*[K^r_i, :]);
///  - the Y-term partial (A_{i,j})^T B* has rows on A's *column* partition
///    (a c-way split), which on a rectangular grid does not coincide with
///    C's r-way row partition: after the reduction the root re-splits the
///    block by C's row owners and forwards each piece with one
///    point-to-point message (the transposed-rank message of the square
///    grid, generalized).
/// Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic_transA(DistDynamicMatrix<T>& C,
                                     const DistDynamicMatrix<T>& A,
                                     const DistDcsr<T>& Astar,
                                     const DistDynamicMatrix<T>& Bprime,
                                     const DistDcsr<T>& Bstar,
                                     const DynamicSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    constexpr int kTagY = 105;
    ProcessGrid& grid = C.shape().grid();
    const int rows = grid.rows();
    const int cols = grid.cols();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const index_t n = C.shape().nrows();
    const index_t m = C.shape().ncols();
    // C rows are partitioned r-ways (nrp); A's columns c-ways (ncp).
    const auto& nrp = C.shape().row_partition();
    const auto& mcp = C.shape().col_partition();
    const BlockPartition ncp = grid.col_partition(n);
    const BlockPartition kr = grid.row_partition(Astar.shape().nrows());
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto add = [](const T& a, const T& b) { return SR::add(a, b); };
    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<T>::deserialize(a);
        auto mb = Dcsr<T>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add).serialize();
    };
    auto absorb = [&](const Dcsr<T>& reduced) {
        Profiler::Scope scope(Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, const T& x) {
            C.local().insert_or_add(u, v, x, SR::add);
        });
    };
    auto absorb_triples = [&](const std::vector<Triple<T>>& ts) {
        Profiler::Scope scope(Phase::LocalAddition);
        for (const auto& t : ts)
            C.local().insert_or_add(t.row, t.col, t.value, SR::add);
    };

    // Row slabs: A*[K^r_i, :] (n global cols) and B*[K^r_i, :] (m global
    // cols), assembled from the per-column blocks of this process row.
    auto gather_row_slab = [&](const Dcsr<T>& local, const BlockPartition& gc,
                               index_t global_cols) {
        Profiler::Scope scope(Phase::SendRecv);
        auto all = grid.row_comm().allgather(local.serialize());
        std::vector<Triple<T>> trips;
        for (int jp = 0; jp < cols; ++jp) {
            auto blk = Dcsr<T>::deserialize(all[static_cast<std::size_t>(jp)]);
            blk.for_each([&](index_t u, index_t v, const T& x) {
                trips.push_back({u, v + gc.offset(jp), x});
            });
        }
        return sparse::dcsr_from_unique_triples(kr.size(i), global_cols,
                                                std::move(trips));
    };
    const Dcsr<T> astar_slab = gather_row_slab(Astar.local(), ncp, n);
    const Dcsr<T> bstar_slab = gather_row_slab(Bstar.local(), mcp, m);

    // X rounds: (A*[K^r_i, N^r_a])^T · B'_{i,j}, reduced down the process
    // column onto the owner (a, j).
    for (int a = 0; a < rows; ++a) {
        Dcsr<T> x_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto a_t = sparse::dcsr_transpose(sparse::dcsr_col_block(
                astar_slab, nrp.offset(a), nrp.offset(a + 1)));
            x_part = sparse::spgemm<SR>(nrp.size(a), C.shape().local_cols(),
                                        sparse::as_left(a_t),
                                        sparse::as_right(Bprime.local()),
                                        sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer xr = grid.col_comm().reduce_merge(
                a, x_part.serialize(), merge_buffers);
            if (i == a) absorb(Dcsr<T>::deserialize(xr));
        }
    }

    // Y rounds: (A_{i,j})^T · B*[K^r_i, M^c_b] — rows follow A's column
    // partition (ncp), so the reduced block is re-split by C's row owners.
    for (int b = 0; b < cols; ++b) {
        const int root_row = b % rows;
        Dcsr<T> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto b_slice = sparse::dcsr_col_block(bstar_slab, mcp.offset(b),
                                                  mcp.offset(b + 1));
            y_part = sparse::spgemm_transposed_left<SR>(
                A.shape().local_cols(), mcp.size(b), A.local(), b_slice);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer yr = grid.col_comm().reduce_merge(
                root_row, y_part.serialize(), merge_buffers);
            if (i == root_row) {
                auto reduced = Dcsr<T>::deserialize(yr);
                std::vector<std::vector<Triple<T>>> pieces(
                    static_cast<std::size_t>(rows));
                reduced.for_each([&](index_t u, index_t v, const T& x) {
                    const index_t gu = u + ncp.offset(j);
                    const int a = nrp.owner(gu);
                    pieces[static_cast<std::size_t>(a)].push_back(
                        {gu - nrp.offset(a), v, x});
                });
                detail::send_pieces(grid, pieces, kTagY + b,
                                    [&](int a) { return grid.rank_of(a, b); });
            }
            if (j == b) {
                for (int jp = 0; jp < cols; ++jp) {
                    std::vector<Triple<T>> ts;
                    detail::unpack_triples(
                        grid.world().recv(grid.rank_of(root_row, jp),
                                          kTagY + b),
                        ts);
                    absorb_triples(ts);
                }
            }
        }
    }
}

/// Algorithm 1 with a transposed right operand (Section V-C):
/// C <- C + A* B'^T + A B*^T, where B and B* are (m x inner), A and A* are
/// (n x inner) and C is n x m.
///
/// As the paper notes, A* and B* are broadcast over *columns* of the grid
/// (one allgather down each process column — their blocks already align with
/// grid rows, so no re-slab or merge is needed). Local multiplications
/// against transposed right operands are rewritten to keep both operands
/// streamable:
///  - X-term: A*_u (B'_{i,j})^T = (B'_{i,j} (A*_u)^T)^T — one ordinary
///    Gustavson multiply against the locally transposed hypersparse A*
///    block, plus a transpose of the (small) partial result;
///  - Y-term: A_{i,j} (B*_u)^T multiplies the stored A block against the
///    locally transposed hypersparse B* block directly.
/// Both reduced partials have columns on B's r-way *row* partition, which a
/// rectangular grid's c-way output column partition does not match: the
/// reduction root re-splits each block by C's column owners and forwards the
/// pieces point-to-point (the transposed-rank messages of the square grid,
/// generalized). Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void dynamic_spgemm_algebraic_transB(DistDynamicMatrix<T>& C,
                                     const DistDynamicMatrix<T>& A,
                                     const DistDcsr<T>& Astar,
                                     const DistDynamicMatrix<T>& Bprime,
                                     const DistDcsr<T>& Bstar,
                                     const DynamicSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    constexpr int kTagX = 140;
    constexpr int kTagYB = 170;
    ProcessGrid& grid = C.shape().grid();
    const int rows = grid.rows();
    const int cols = grid.cols();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const index_t m = C.shape().ncols();
    // C rows partition like A's rows (nrp, r-way); C cols (mcp, c-way) do
    // NOT match B's r-way row partition (mrp) on a rectangular grid.
    const auto& nrp = C.shape().row_partition();
    const auto& mcp = C.shape().col_partition();
    const BlockPartition mrp = grid.row_partition(m);
    sparse::SpgemmOptions sopts;
    sopts.pool = opts.pool;

    auto add = [](const T& a, const T& b) { return SR::add(a, b); };
    auto merge_buffers = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<T>::deserialize(a);
        auto mb = Dcsr<T>::deserialize(b);
        return sparse::dcsr_add(ma, mb, add).serialize();
    };
    auto absorb_triples = [&](const std::vector<Triple<T>>& ts) {
        Profiler::Scope scope(Phase::LocalAddition);
        for (const auto& t : ts)
            C.local().insert_or_add(t.row, t.col, t.value, SR::add);
    };
    // Splits a reduced block whose columns live in B's row block u (global
    // offset mrp.offset(u)) by C's column owners and forwards the pieces to
    // this grid row's owners (dest_row, b) — dest_row depends on the term.
    auto scatter_cols = [&](par::Buffer reduced_wire, int u, int tag,
                            const std::function<int(int)>& dest_rank) {
        auto reduced = Dcsr<T>::deserialize(reduced_wire);
        std::vector<std::vector<Triple<T>>> pieces(
            static_cast<std::size_t>(cols));
        reduced.for_each([&](index_t uu, index_t v, const T& x) {
            const index_t gv = v + mrp.offset(u);
            const int b = mcp.owner(gv);
            pieces[static_cast<std::size_t>(b)].push_back(
                {uu, gv - mcp.offset(b), x});
        });
        detail::send_pieces(grid, pieces, tag, dest_rank);
    };

    // Column slabs: every rank learns all r blocks of its process column —
    // A*[N^r_u, K^c_j] and B*[M^r_u, K^c_j] for u in [0, rows). The blocks
    // stay separate; each drives one round.
    auto gather_col_blocks = [&](const Dcsr<T>& local) {
        Profiler::Scope scope(Phase::SendRecv);
        auto all = grid.col_comm().allgather(local.serialize());
        std::vector<Dcsr<T>> blocks;
        blocks.reserve(all.size());
        for (auto& buf : all) blocks.push_back(Dcsr<T>::deserialize(buf));
        return blocks;
    };
    const auto astar_blocks = gather_col_blocks(Astar.local());
    const auto bstar_blocks = gather_col_blocks(Bstar.local());

    // X rounds: partial for output rows N^r_a, computed transposed:
    // W = B'_{i,j} (A*_a)^T, then X = W^T (columns on M^r_i).
    for (int a = 0; a < rows; ++a) {
        const int root_col = a % cols;
        Dcsr<T> x_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto astar_t = sparse::dcsr_transpose(
                astar_blocks[static_cast<std::size_t>(a)]);
            auto w = sparse::spgemm<SR>(
                Bprime.shape().local_rows(), nrp.size(a),
                sparse::as_left(Bprime.local()), sparse::as_right(astar_t),
                sopts);
            x_part = sparse::dcsr_transpose(w);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer xr = grid.row_comm().reduce_merge(
                root_col, x_part.serialize(), merge_buffers);
            if (j == root_col)
                scatter_cols(std::move(xr), i, kTagX + a,
                             [&](int b) { return grid.rank_of(a, b); });
            if (i == a) {
                for (int ip = 0; ip < rows; ++ip) {
                    std::vector<Triple<T>> ts;
                    detail::unpack_triples(
                        grid.world().recv(grid.rank_of(ip, root_col),
                                          kTagX + a),
                        ts);
                    absorb_triples(ts);
                }
            }
        }
    }

    // Y rounds: A_{i,j} (B*_u)^T — output rows stay on this grid row, so
    // the re-split pieces travel within the process row.
    for (int u = 0; u < rows; ++u) {
        const int root_col = u % cols;
        Dcsr<T> y_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            auto bstar_t = sparse::dcsr_transpose(
                bstar_blocks[static_cast<std::size_t>(u)]);
            y_part = sparse::spgemm<SR>(C.shape().local_rows(), mrp.size(u),
                                        sparse::as_left(A.local()),
                                        sparse::as_right(bstar_t), sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer yr = grid.row_comm().reduce_merge(
                root_col, y_part.serialize(), merge_buffers);
            if (j == root_col)
                scatter_cols(std::move(yr), u, kTagYB + u,
                             [&](int b) { return grid.rank_of(i, b); });
            std::vector<Triple<T>> ts;
            detail::unpack_triples(
                grid.world().recv(grid.rank_of(i, root_col), kTagYB + u), ts);
            absorb_triples(ts);
        }
    }
}

/// COMPUTEPATTERN (Section V-B): the sparsity structure of
/// C* = A* B' + A B*, with each entry carrying the F* Bloom bitfield (bit
/// (k mod 64) set iff inner index k contributes). Numerical values of the
/// operands are ignored. Returns the distributed pattern matrix. Collective.
template <typename T>
DistDynamicMatrix<std::uint64_t> compute_pattern(
    const DistDynamicMatrix<T>& A, const DistDcsr<T>& Astar,
    const DistDynamicMatrix<T>& Bprime, const DistDcsr<T>& Bstar,
    const DynamicSpgemmOptions& opts = {}) {
    ProcessGrid& grid = A.shape().grid();
    DistDynamicMatrix<std::uint64_t> cstar(grid, A.shape().nrows(),
                                           Bprime.shape().ncols());
    const auto& rp = cstar.shape().row_partition();
    const auto& cp = cstar.shape().col_partition();
    const BlockPartition kr = grid.row_partition(A.shape().ncols());
    const BlockPartition kc = grid.col_partition(A.shape().ncols());
    auto bits_or = [](std::uint64_t a, std::uint64_t b) { return a | b; };

    auto absorb = [&](const Dcsr<std::uint64_t>& reduced) {
        par::Profiler::Scope scope(par::Phase::LocalAddition);
        reduced.for_each([&](index_t u, index_t v, std::uint64_t bits) {
            cstar.local().insert_or_add(u, v, bits, bits_or);
        });
    };
    detail::algebraic_rounds<T, std::uint64_t>(
        grid, Astar, Bstar,
        [&](const Dcsr<T>& a_slice, int a) {
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            // Columns of the A* slab slice live in inner row block K^r_i.
            sopts.inner_offset = kr.offset(grid.grid_row());
            return sparse::spgemm_pattern(rp.size(a),
                                          cstar.shape().local_cols(),
                                          sparse::as_left(a_slice),
                                          sparse::as_right(Bprime.local()),
                                          sopts);
        },
        [&](const Dcsr<T>& b_slice, int b) {
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            // Columns of A_{i,j} live in inner column block K^c_j.
            sopts.inner_offset = kc.offset(grid.grid_col());
            return sparse::spgemm_pattern(cstar.shape().local_rows(),
                                          cp.size(b),
                                          sparse::as_left(A.local()),
                                          sparse::as_right(b_slice), sopts);
        },
        bits_or, absorb, absorb, opts.comm_mode);
    return cstar;
}

}  // namespace dsg::core
