// Element-wise operations on distributed matrices (Section IV: dynamic
// matrices "support efficient in-place operations (such as insertions,
// deletions, matrix addition or other element-wise transformations)").
// All of them are local-only: the 2D distribution aligns blocks, so no
// communication is ever needed.
#pragma once

#include "core/dist_matrix.hpp"
#include "sparse/semiring.hpp"

namespace dsg::core {

/// A <- A (+) B element-wise with add(old, new); structural union. Shapes
/// and grids must match. Local-only.
template <typename T, typename AddFn>
void ewise_add(DistDynamicMatrix<T>& A, const DistDynamicMatrix<T>& B,
               AddFn&& add) {
    B.local().for_each([&](index_t i, index_t j, const T& v) {
        A.local().insert_or_add(i, j, v, add);
    });
}

/// In-place value transform: a_{ij} <- fn(i_global, j_global, a_{ij}).
/// The structure is unchanged (structural non-zeros may become numerical
/// zeros, per the paper's zero semantics). Local-only.
template <typename T, typename Fn>
void ewise_apply(DistDynamicMatrix<T>& A, Fn&& fn) {
    auto& local = A.local();
    for (index_t i = 0; i < local.nrows(); ++i) {
        const index_t gi = A.shape().global_row(i);
        for (const auto& e : local.row(i)) {
            const T updated = fn(gi, A.shape().global_col(e.col), e.value);
            if (T* slot = local.find(i, e.col)) *slot = updated;
        }
    }
}

/// Removes every entry for which pred(i_global, j_global, value) holds
/// (e.g. dropping numerical zeros after a ring cancellation). Returns the
/// number of local entries removed. Local-only.
template <typename T, typename Pred>
std::size_t ewise_prune(DistDynamicMatrix<T>& A, Pred&& pred) {
    auto& local = A.local();
    std::size_t removed = 0;
    for (index_t i = 0; i < local.nrows(); ++i) {
        const index_t gi = A.shape().global_row(i);
        // Collect first: erase invalidates row iteration (swap-remove).
        std::vector<index_t> doomed;
        for (const auto& e : local.row(i))
            if (pred(gi, A.shape().global_col(e.col), e.value))
                doomed.push_back(e.col);
        for (index_t j : doomed) removed += local.erase(i, j) ? 1 : 0;
    }
    return removed;
}

/// Keeps only entries also present in the mask (structural intersection);
/// shapes and grids must match. Returns local entries removed. Local-only.
template <typename T, typename U>
std::size_t ewise_mask_keep(DistDynamicMatrix<T>& A,
                            const DistDynamicMatrix<U>& mask) {
    auto& local = A.local();
    std::size_t removed = 0;
    for (index_t i = 0; i < local.nrows(); ++i) {
        std::vector<index_t> doomed;
        for (const auto& e : local.row(i))
            if (!mask.local().contains(i, e.col)) doomed.push_back(e.col);
        for (index_t j : doomed) removed += local.erase(i, j) ? 1 : 0;
    }
    return removed;
}

/// Fold over all local entries combined globally with a commutative op
/// (e.g. total weight, max entry). Collective.
template <typename T, typename Acc, typename Fold, typename Combine>
Acc ewise_reduce(const DistDynamicMatrix<T>& A, Acc init, Fold&& fold,
                 Combine&& combine)
    requires std::is_trivially_copyable_v<Acc>
{
    Acc acc = init;
    A.local().for_each([&](index_t i, index_t j, const T& v) {
        acc = fold(acc, A.shape().global_row(i), A.shape().global_col(j), v);
    });
    return A.shape().grid().world().template allreduce<Acc>(acc, combine);
}

}  // namespace dsg::core
