// Dynamic distributed SpGEMM for general updates — Algorithm 2 of the paper.
//
// General updates (e.g. value increases under (min,+), deletions in
// non-rings) cannot be folded into C via semiring addition; the affected
// entries of C must be *recomputed* from A' and B'. The affected set is the
// pattern of C* = A* B' + A B* (computed structurally by COMPUTEPATTERN).
// Recomputation is a masked SpGEMM, and the Bloom filter matrix F — bit
// (k mod 64) of f_{uv} records that inner index k contributed to c_{uv} —
// lets each rank send only the rows *and columns* of A' that can contribute:
//
//   E   = (F | F*) masked at C*            (locally)
//   R_u = OR over v of e_{uv}              (or-reduce along the grid row)
//   A^R = rows u of A' with r_u != 0, keeping only columns k with
//         bit (k mod 64) set in r_u
//   then: re-slab A^R onto the inner *row* partition K^r (alltoallv down the
//   process column + allgather along the row, as for A* in Algorithm 1; on a
//   square grid this is the paper's transpose exchange), and for each grid
//   row a: broadcast the C*_{a,j} mask down the column; masked local multiply
//   Z,H = A^R[N^r_a, K^r_i] B'_{i,j} masked at C*_{a,j}; tree-reduce Z
//   (semiring add) and H (bitwise or) onto (a,j); finally merge Z into C and
//   H into F at mask positions — entries of the mask that received no value
//   become structural zeros.
//
// The Bloom filter trades false positives (superfluous columns kept) for
// communication volume; it never loses a contribution (tested property).
// With comm_mode == Async the mask broadcast of round a+1 is posted before
// round a's masked multiply (and the slab exchange uses the post/wait path);
// bytes and reduction order are unchanged, so results are bit-identical.
#pragma once

#include <optional>
#include <vector>

#include "core/dist_matrix.hpp"
#include "core/dynamic_spgemm.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"

namespace dsg::core {

struct GeneralSpgemmOptions {
    par::ThreadPool* pool = nullptr;
    /// Disables the Bloom *column* filter (rows are still selected by the
    /// mask); measured by bench_ablation_bloom.
    bool use_bloom_filter = true;
    /// Async overlaps the next round's mask broadcast with this round's
    /// masked multiply. Bit-identical results either way.
    par::CommMode comm_mode = par::CommMode::Sync;
};

/// Volume diagnostics of one general-update pass.
struct GeneralSpgemmStats {
    std::size_t aprime_nnz_global = 0;  ///< nnz(A')
    std::size_t ar_nnz_global = 0;      ///< nnz(A^R) actually communicated
    std::size_t cstar_nnz_global = 0;   ///< recomputed entries
};

/// Algorithm 2. C and F are the result and Bloom filter of the previous
/// multiplication (from summa with bloom_out, or maintained by prior calls);
/// Aprime/Bprime are the post-update inputs; Cstar is the pattern+F* matrix
/// from compute_pattern(). On return C == A' B' at every position (entries
/// outside the mask were already correct) and F is a valid filter for C.
/// Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
GeneralSpgemmStats general_dynamic_spgemm(
    DistDynamicMatrix<T>& C, DistDynamicMatrix<std::uint64_t>& F,
    const DistDynamicMatrix<T>& Aprime, const DistDynamicMatrix<T>& Bprime,
    const DistDynamicMatrix<std::uint64_t>& Cstar,
    const GeneralSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    using VB = sparse::ValueBits<T>;
    ProcessGrid& grid = C.shape().grid();
    const int rows = grid.rows();
    const int i = grid.grid_row();
    const index_t n = Aprime.shape().nrows();
    const BlockPartition kr = grid.row_partition(Aprime.shape().ncols());
    const BlockPartition kc = grid.col_partition(Aprime.shape().ncols());
    const auto& rp = C.shape().row_partition();
    const bool async = opts.comm_mode == par::CommMode::Async;

    // E = (F | F*) masked at C*, reduced over the grid row into the
    // row-filter vector R (one 64-bit word per local row of this block row).
    std::vector<std::uint64_t> r_vec(
        static_cast<std::size_t>(C.shape().local_rows()), 0);
    {
        Profiler::Scope scope(Phase::LocalMult);
        Cstar.local().for_each([&](index_t u, index_t v, std::uint64_t fstar) {
            const std::uint64_t* f = F.local().find(u, v);
            r_vec[static_cast<std::size_t>(u)] |=
                fstar | (f != nullptr ? *f : 0);
        });
    }
    grid.row_comm().allreduce_or(r_vec);

    // A^R: the filtered left operand (rows by R, columns by Bloom bits).
    Dcsr<T> ar(Aprime.shape().local_rows(), Aprime.shape().local_cols());
    {
        Profiler::Scope scope(Phase::LocalConstruct);
        const index_t col_off = kc.offset(grid.grid_col());
        for (index_t u = 0; u < Aprime.shape().local_rows(); ++u) {
            const std::uint64_t bits = r_vec[static_cast<std::size_t>(u)];
            if (bits == 0) continue;
            const auto row = Aprime.local().row(u);
            if (row.empty()) continue;
            ar.begin_row(u);
            for (const auto& e : row) {
                if (opts.use_bloom_filter &&
                    (bits & sparse::bloom_bit(col_off + e.col)) == 0)
                    continue;
                ar.push_entry(e.col, e.value);
            }
            ar.end_row();
        }
    }

    GeneralSpgemmStats stats;
    auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
    stats.aprime_nnz_global = grid.world().template allreduce<std::uint64_t>(
        Aprime.local().nnz(), sum);
    stats.ar_nnz_global =
        grid.world().template allreduce<std::uint64_t>(ar.nnz(), sum);
    stats.cstar_nnz_global = grid.world().template allreduce<std::uint64_t>(
        Cstar.local().nnz(), sum);

    // Re-slab A^R onto the inner row partition: this rank ends up with
    // A^R[:, K^r_i] in full (the Algorithm 1 slab exchange; degenerates to
    // the transpose exchange on a square grid).
    Dcsr<T> ar_slab;
    {
        Profiler::Scope scope(Phase::SendRecv);
        std::vector<Triple<T>> trips;
        trips.reserve(ar.nnz());
        const index_t row_off = Aprime.shape().row_partition().offset(i);
        const index_t col_off = kc.offset(grid.grid_col());
        ar.for_each([&](index_t u, index_t v, const T& x) {
            trips.push_back({u + row_off, v + col_off, x});
        });
        auto send = detail::bucket_triples(
            trips, rows, [&](const Triple<T>& t) { return kr.owner(t.col); });
        auto recv = detail::exchange(grid.col_comm(), std::move(send),
                                     opts.comm_mode);
        trips.clear();
        for (const auto& buf : recv) detail::unpack_triples(buf, trips);
        trips = detail::allgather_triples(grid.row_comm(), std::move(trips));
        for (auto& t : trips) t.col -= kr.offset(i);
        ar_slab =
            sparse::dcsr_from_unique_triples(n, kr.size(i), std::move(trips));
    }
    par::Buffer mask_snapshot;
    {
        Profiler::Scope scope(Phase::LocalConstruct);
        mask_snapshot = Cstar.local().to_dcsr().serialize();
    }

    auto merge_vb = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<VB>::deserialize(a);
        auto mb = Dcsr<VB>::deserialize(b);
        return sparse::dcsr_add(ma, mb,
                                [](const VB& x, const VB& y) {
                                    return VB{SR::add(x.value, y.value),
                                              x.bits | y.bits};
                                })
            .serialize();
    };

    // One round per grid row a: mask C*_{a,j} comes down the process column;
    // the A^R rows for output block a are already local in the slab. In
    // async mode round a+1's mask is posted before round a's multiply.
    auto post_mask = [&](int a) {
        Profiler::Scope scope(Phase::Bcast);
        par::Buffer mbuf;
        if (i == a) mbuf = mask_snapshot;  // copy: broadcast consumes it
        return grid.col_comm().ibcast(a, std::move(mbuf));
    };
    std::optional<par::Comm::PendingBcast> inflight;
    if (async && rows > 0) inflight.emplace(post_mask(0));

    Dcsr<VB> z_mine(C.shape().local_rows(), C.shape().local_cols());
    for (int a = 0; a < rows; ++a) {
        Dcsr<std::uint64_t> cstar_aj;
        {
            Profiler::Scope scope(Phase::Bcast);
            if (async) {
                cstar_aj = Dcsr<std::uint64_t>::deserialize(inflight->wait());
                inflight.reset();
            } else {
                par::Buffer mbuf;
                if (i == a) mbuf = mask_snapshot;
                cstar_aj = Dcsr<std::uint64_t>::deserialize(
                    grid.col_comm().bcast(a, std::move(mbuf)));
            }
        }
        if (async && a + 1 < rows) inflight.emplace(post_mask(a + 1));

        Dcsr<VB> z_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            // Each rank rebuilds the mask hash locally: faster than
            // broadcasting the hash table itself (Section VI-B).
            const sparse::PairSet mask = sparse::dcsr_pattern(cstar_aj);
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            sopts.mask = &mask;
            sopts.inner_offset = kr.offset(i);
            auto ar_slice = sparse::dcsr_row_block(ar_slab, rp.offset(a),
                                                   rp.offset(a + 1));
            z_part = sparse::spgemm_with_bloom<SR>(
                rp.size(a), C.shape().local_cols(), sparse::as_left(ar_slice),
                sparse::as_right(Bprime.local()), sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer zr =
                grid.col_comm().reduce_merge(a, z_part.serialize(), merge_vb);
            if (i == a) z_mine = Dcsr<VB>::deserialize(zr);
        }
    }

    // Final local merge, masked at C*: recomputed entries replace C and F;
    // mask positions with no surviving value become structural zeros.
    {
        Profiler::Scope scope(Phase::LocalAddition);
        sparse::PairSet alive(C.shape().local_cols(), z_mine.nnz());
        z_mine.for_each([&](index_t u, index_t v, const VB& vb) {
            C.local().insert_or_assign(u, v, vb.value);
            F.local().insert_or_assign(u, v, vb.bits);
            alive.insert(u, v);
        });
        Cstar.local().for_each([&](index_t u, index_t v, std::uint64_t) {
            if (!alive.contains(u, v)) {
                C.local().erase(u, v);
                F.local().erase(u, v);
            }
        });
    }
    return stats;
}

}  // namespace dsg::core
