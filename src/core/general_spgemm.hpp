// Dynamic distributed SpGEMM for general updates — Algorithm 2 of the paper.
//
// General updates (e.g. value increases under (min,+), deletions in
// non-rings) cannot be folded into C via semiring addition; the affected
// entries of C must be *recomputed* from A' and B'. The affected set is the
// pattern of C* = A* B' + A B* (computed structurally by COMPUTEPATTERN).
// Recomputation is a masked SpGEMM, and the Bloom filter matrix F — bit
// (k mod 64) of f_{uv} records that inner index k contributed to c_{uv} —
// lets each rank send only the rows *and columns* of A' that can contribute:
//
//   E   = (F | F*) masked at C*            (locally)
//   R_u = OR over v of e_{uv}              (or-reduce along the grid row)
//   A^R = rows u of A' with r_u != 0, keeping only columns k with
//         bit (k mod 64) set in r_u
//   then: broadcast A^R_{k,i} along rows and the C*_{k,j} mask along
//   columns; masked local multiply Z,H = A^R_{k,i} B'_{i,j} masked at
//   C*_{k,j}; tree-reduce Z (semiring add) and H (bitwise or) onto (k,j);
//   finally merge Z into C and H into F at mask positions — entries of the
//   mask that received no value become structural zeros.
//
// The Bloom filter trades false positives (superfluous columns kept) for
// communication volume; it never loses a contribution (tested property).
#pragma once

#include <vector>

#include "core/dist_matrix.hpp"
#include "core/dynamic_spgemm.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"

namespace dsg::core {

struct GeneralSpgemmOptions {
    par::ThreadPool* pool = nullptr;
    /// Disables the Bloom *column* filter (rows are still selected by the
    /// mask); measured by bench_ablation_bloom.
    bool use_bloom_filter = true;
};

/// Volume diagnostics of one general-update pass.
struct GeneralSpgemmStats {
    std::size_t aprime_nnz_global = 0;  ///< nnz(A')
    std::size_t ar_nnz_global = 0;      ///< nnz(A^R) actually communicated
    std::size_t cstar_nnz_global = 0;   ///< recomputed entries
};

/// Algorithm 2. C and F are the result and Bloom filter of the previous
/// multiplication (from summa with bloom_out, or maintained by prior calls);
/// Aprime/Bprime are the post-update inputs; Cstar is the pattern+F* matrix
/// from compute_pattern(). On return C == A' B' at every position (entries
/// outside the mask were already correct) and F is a valid filter for C.
/// Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
GeneralSpgemmStats general_dynamic_spgemm(
    DistDynamicMatrix<T>& C, DistDynamicMatrix<std::uint64_t>& F,
    const DistDynamicMatrix<T>& Aprime, const DistDynamicMatrix<T>& Bprime,
    const DistDynamicMatrix<std::uint64_t>& Cstar,
    const GeneralSpgemmOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    using VB = sparse::ValueBits<T>;
    constexpr int kTagAr = 103;
    ProcessGrid& grid = C.shape().grid();
    const int q = grid.q();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const BlockPartition ip = grid.partition(Aprime.shape().ncols());
    const auto& rp = C.shape().row_partition();

    // E = (F | F*) masked at C*, reduced over the grid row into the
    // row-filter vector R (one 64-bit word per local row of this block row).
    std::vector<std::uint64_t> r_vec(
        static_cast<std::size_t>(C.shape().local_rows()), 0);
    {
        Profiler::Scope scope(Phase::LocalMult);
        Cstar.local().for_each([&](index_t u, index_t v, std::uint64_t fstar) {
            const std::uint64_t* f = F.local().find(u, v);
            r_vec[static_cast<std::size_t>(u)] |=
                fstar | (f != nullptr ? *f : 0);
        });
    }
    grid.row_comm().allreduce_or(r_vec);

    // A^R: the filtered left operand (rows by R, columns by Bloom bits).
    Dcsr<T> ar(Aprime.shape().local_rows(), Aprime.shape().local_cols());
    {
        Profiler::Scope scope(Phase::LocalConstruct);
        const index_t col_off = ip.offset(j);
        for (index_t u = 0; u < Aprime.shape().local_rows(); ++u) {
            const std::uint64_t bits = r_vec[static_cast<std::size_t>(u)];
            if (bits == 0) continue;
            const auto row = Aprime.local().row(u);
            if (row.empty()) continue;
            ar.begin_row(u);
            for (const auto& e : row) {
                if (opts.use_bloom_filter &&
                    (bits & sparse::bloom_bit(col_off + e.col)) == 0)
                    continue;
                ar.push_entry(e.col, e.value);
            }
            ar.end_row();
        }
    }

    GeneralSpgemmStats stats;
    auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
    stats.aprime_nnz_global = grid.world().template allreduce<std::uint64_t>(
        Aprime.local().nnz(), sum);
    stats.ar_nnz_global =
        grid.world().template allreduce<std::uint64_t>(ar.nnz(), sum);
    stats.cstar_nnz_global = grid.world().template allreduce<std::uint64_t>(
        Cstar.local().nnz(), sum);

    // Transpose exchange of A^R (as for A* in Algorithm 1) and the local C*
    // mask snapshot to broadcast along columns.
    Dcsr<T> ar_t;
    {
        Profiler::Scope scope(Phase::SendRecv);
        ar_t = Dcsr<T>::deserialize(
            grid.world().sendrecv(grid.transposed_rank(), kTagAr, ar.serialize()));
    }
    par::Buffer mask_snapshot;
    {
        Profiler::Scope scope(Phase::LocalConstruct);
        mask_snapshot = Cstar.local().to_dcsr().serialize();
    }

    auto merge_vb = [&](par::Buffer a, par::Buffer b) {
        auto ma = Dcsr<VB>::deserialize(a);
        auto mb = Dcsr<VB>::deserialize(b);
        return sparse::dcsr_add(ma, mb,
                                [](const VB& x, const VB& y) {
                                    return VB{SR::add(x.value, y.value),
                                              x.bits | y.bits};
                                })
            .serialize();
    };

    Dcsr<VB> z_mine(C.shape().local_rows(), C.shape().local_cols());
    for (int k = 0; k < q; ++k) {
        Dcsr<T> ar_ki;
        Dcsr<std::uint64_t> cstar_kj;
        {
            Profiler::Scope scope(Phase::Bcast);
            par::Buffer abuf;
            if (j == k) abuf = ar_t.serialize();
            ar_ki = Dcsr<T>::deserialize(grid.row_comm().bcast(k, std::move(abuf)));
            par::Buffer mbuf;
            if (i == k) mbuf = mask_snapshot;  // copy: broadcast consumes it
            cstar_kj = Dcsr<std::uint64_t>::deserialize(
                grid.col_comm().bcast(k, std::move(mbuf)));
        }

        Dcsr<VB> z_part;
        {
            Profiler::Scope scope(Phase::LocalMult);
            // Each rank rebuilds the mask hash locally: faster than
            // broadcasting the hash table itself (Section VI-B).
            const sparse::PairSet mask = sparse::dcsr_pattern(cstar_kj);
            sparse::SpgemmOptions sopts;
            sopts.pool = opts.pool;
            sopts.mask = &mask;
            sopts.inner_offset = ip.offset(i);
            z_part = sparse::spgemm_with_bloom<SR>(
                rp.size(k), C.shape().local_cols(), sparse::as_left(ar_ki),
                sparse::as_right(Bprime.local()), sopts);
        }
        {
            Profiler::Scope scope(Phase::ReduceScatter);
            par::Buffer zr =
                grid.col_comm().reduce_merge(k, z_part.serialize(), merge_vb);
            if (i == k) z_mine = Dcsr<VB>::deserialize(zr);
        }
    }

    // Final local merge, masked at C*: recomputed entries replace C and F;
    // mask positions with no surviving value become structural zeros.
    {
        Profiler::Scope scope(Phase::LocalAddition);
        sparse::PairSet alive(C.shape().local_cols(), z_mine.nnz());
        z_mine.for_each([&](index_t u, index_t v, const VB& vb) {
            C.local().insert_or_assign(u, v, vb.value);
            F.local().insert_or_assign(u, v, vb.bits);
            alive.insert(u, v);
        });
        Cstar.local().for_each([&](index_t u, index_t v, std::uint64_t) {
            if (!alive.contains(u, v)) {
                C.local().erase(u, v);
                F.local().erase(u, v);
            }
        });
    }
    return stats;
}

}  // namespace dsg::core
