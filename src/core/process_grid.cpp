#include "core/process_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace dsg::core {

bool ProcessGrid::is_square(int p) {
    const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
    return q * q == p;
}

ProcessGrid::ProcessGrid(par::Comm world) : world_(world) {
    const int p = world_.size();
    if (!is_square(p))
        throw std::invalid_argument(
            "ProcessGrid requires a square number of ranks");
    q_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
    row_ = world_.rank() / q_;
    col_ = world_.rank() % q_;
    row_comm_ = world_.split(/*color=*/row_, /*key=*/col_);
    col_comm_ = world_.split(/*color=*/col_, /*key=*/row_);
}

}  // namespace dsg::core
