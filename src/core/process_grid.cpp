#include "core/process_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace dsg::core {

bool ProcessGrid::is_square(int p) {
    const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
    return q * q == p;
}

std::pair<int, int> ProcessGrid::default_shape(int p) {
    int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
    while (r > 1 && p % r != 0) --r;
    return {r, p / r};
}

ProcessGrid::ProcessGrid(par::Comm world)
    : ProcessGrid(world, default_shape(world.size()).first,
                  default_shape(world.size()).second) {}

ProcessGrid::ProcessGrid(par::Comm world, int rows, int cols)
    : world_(std::move(world)), rows_(rows), cols_(cols) {
    if (rows_ <= 0 || cols_ <= 0 || rows_ * cols_ != world_.size())
        throw std::invalid_argument(
            "ProcessGrid: rows * cols must equal the world size");
    row_ = world_.rank() / cols_;
    col_ = world_.rank() % cols_;
    row_comm_ = world_.split(/*color=*/row_, /*key=*/col_);
    col_comm_ = world_.split(/*color=*/col_, /*key=*/row_);
}

}  // namespace dsg::core
