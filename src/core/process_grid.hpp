// The sqrt(p) x sqrt(p) process grid and the 2D block distribution
// (Section IV): rank r owns grid position (r / q, r % q); dimension n is cut
// into q contiguous blocks of ceil(n/q) indices. Row and column communicators
// carry the broadcasts/reductions of SUMMA and of Algorithms 1 and 2.
#pragma once

#include <memory>

#include "par/comm.hpp"
#include "sparse/types.hpp"

namespace dsg::core {

using sparse::index_t;

/// Partition of [0, n) into q contiguous blocks of size ceil(n/q) (the last
/// block may be short or empty).
class BlockPartition {
public:
    BlockPartition() = default;
    BlockPartition(index_t n, int q)
        : n_(n), q_(q), block_((n + q - 1) / q) {}

    [[nodiscard]] index_t n() const { return n_; }
    [[nodiscard]] int blocks() const { return q_; }

    /// Index of the block containing global index g.
    [[nodiscard]] int owner(index_t g) const {
        return block_ == 0 ? 0 : static_cast<int>(g / block_);
    }
    /// First global index of block b.
    [[nodiscard]] index_t offset(int b) const {
        return std::min<index_t>(static_cast<index_t>(b) * block_, n_);
    }
    /// Number of indices in block b.
    [[nodiscard]] index_t size(int b) const {
        return offset(b + 1) - offset(b);
    }
    /// Global index -> index within its block.
    [[nodiscard]] index_t to_local(index_t g) const {
        return g - offset(owner(g));
    }
    /// (block, local index) -> global index.
    [[nodiscard]] index_t to_global(int b, index_t local) const {
        return offset(b) + local;
    }

private:
    index_t n_ = 0;
    int q_ = 1;
    index_t block_ = 0;
};

/// Square process grid over a communicator whose size must be a perfect
/// square. Constructing one is a collective operation (it splits the world
/// into row and column communicators).
class ProcessGrid {
public:
    explicit ProcessGrid(par::Comm world);

    [[nodiscard]] int q() const { return q_; }          ///< grid side length
    [[nodiscard]] int grid_row() const { return row_; } ///< this rank's i
    [[nodiscard]] int grid_col() const { return col_; } ///< this rank's j

    /// World rank of grid position (i, j).
    [[nodiscard]] int rank_of(int i, int j) const { return i * q_ + j; }
    /// World rank of the transposed position (j, i) — the peer of the initial
    /// send/receive round of Algorithms 1 and 2.
    [[nodiscard]] int transposed_rank() const { return rank_of(col_, row_); }

    [[nodiscard]] par::Comm& world() { return world_; }
    /// Communicator over the q ranks of this grid row; rank within it is the
    /// grid column.
    [[nodiscard]] par::Comm& row_comm() { return row_comm_; }
    /// Communicator over the q ranks of this grid column; rank within it is
    /// the grid row.
    [[nodiscard]] par::Comm& col_comm() { return col_comm_; }

    /// Partition of a global dimension across the grid side.
    [[nodiscard]] BlockPartition partition(index_t n) const {
        return BlockPartition(n, q_);
    }

    static bool is_square(int p);

private:
    par::Comm world_;
    int q_;
    int row_;
    int col_;
    par::Comm row_comm_;
    par::Comm col_comm_;
};

}  // namespace dsg::core
