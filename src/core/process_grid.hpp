// The r x c process grid and the 2D block distribution (Section IV): rank r
// owns grid position (r / cols, r % cols); the row dimension is cut into
// `rows` contiguous blocks, the column dimension into `cols` blocks. Row and
// column communicators carry the broadcasts/reductions of SUMMA and of
// Algorithms 1 and 2. The paper assumes a square sqrt(p) x sqrt(p) grid; the
// generalization here factors any p into the most-square r x c shape (r <= c)
// so every rank count forms a grid, and keeps the square case bit-identical.
#pragma once

#include <memory>
#include <utility>

#include "par/comm.hpp"
#include "sparse/types.hpp"

namespace dsg::core {

using sparse::index_t;

/// Partition of [0, n) into q contiguous blocks of size ceil(n/q) (the last
/// block may be short or empty).
class BlockPartition {
public:
    BlockPartition() = default;
    BlockPartition(index_t n, int q)
        : n_(n), q_(q), block_((n + q - 1) / q) {}

    [[nodiscard]] index_t n() const { return n_; }
    [[nodiscard]] int blocks() const { return q_; }

    /// Index of the block containing global index g.
    [[nodiscard]] int owner(index_t g) const {
        return block_ == 0 ? 0 : static_cast<int>(g / block_);
    }
    /// First global index of block b.
    [[nodiscard]] index_t offset(int b) const {
        return std::min<index_t>(static_cast<index_t>(b) * block_, n_);
    }
    /// Number of indices in block b.
    [[nodiscard]] index_t size(int b) const {
        return offset(b + 1) - offset(b);
    }
    /// Global index -> index within its block.
    [[nodiscard]] index_t to_local(index_t g) const {
        return g - offset(owner(g));
    }
    /// (block, local index) -> global index.
    [[nodiscard]] index_t to_global(int b, index_t local) const {
        return offset(b) + local;
    }

private:
    index_t n_ = 0;
    int q_ = 1;
    index_t block_ = 0;
};

/// Rectangular rows x cols process grid over a communicator. Constructing one
/// is a collective operation (it splits the world into row and column
/// communicators). The one-argument constructor factors the world size into
/// the most-square shape with rows <= cols; the explicit-shape constructor
/// accepts any factorization of the world size.
class ProcessGrid {
public:
    explicit ProcessGrid(par::Comm world);
    ProcessGrid(par::Comm world, int rows, int cols);

    [[nodiscard]] int rows() const { return rows_; }    ///< grid row count
    [[nodiscard]] int cols() const { return cols_; }    ///< grid column count
    [[nodiscard]] int grid_row() const { return row_; } ///< this rank's i
    [[nodiscard]] int grid_col() const { return col_; } ///< this rank's j

    /// World rank of grid position (i, j).
    [[nodiscard]] int rank_of(int i, int j) const { return i * cols_ + j; }

    [[nodiscard]] par::Comm& world() { return world_; }
    /// Communicator over the `cols` ranks of this grid row; rank within it is
    /// the grid column.
    [[nodiscard]] par::Comm& row_comm() { return row_comm_; }
    /// Communicator over the `rows` ranks of this grid column; rank within it
    /// is the grid row.
    [[nodiscard]] par::Comm& col_comm() { return col_comm_; }

    /// Partition of a global row dimension across the grid's rows.
    [[nodiscard]] BlockPartition row_partition(index_t n) const {
        return BlockPartition(n, rows_);
    }
    /// Partition of a global column dimension across the grid's columns.
    [[nodiscard]] BlockPartition col_partition(index_t n) const {
        return BlockPartition(n, cols_);
    }

    static bool is_square(int p);
    /// Most-square factorization of p: the pair (r, c) with r * c == p,
    /// r <= c, and r as large as possible.
    static std::pair<int, int> default_shape(int p);

private:
    par::Comm world_;
    int rows_;
    int cols_;
    int row_;
    int col_;
    par::Comm row_comm_;
    par::Comm col_comm_;
};

}  // namespace dsg::core
