// Redistribution of update tuples to their owner ranks (Section IV-B).
//
// Ranks generate updates independently, with no knowledge of the data
// distribution. The paper's two-phase routine moves each tuple first to the
// correct grid *row* (an alltoallv within the tuple's process column, over
// `rows` buckets), then to the correct grid *column* (an alltoallv within the
// process row, over `cols` buckets). Each phase groups tuples with a counting
// sort over only one grid dimension's worth of buckets, and each alltoallv
// involves only that many peers (sqrt(p) on a square grid).
//
// RedistMode::DirectSort is the competitor strategy the paper measures
// against (CombBLAS-style): one comparison sort by destination rank followed
// by a single global alltoallv over all p ranks.
#pragma once

#include <algorithm>
#include <vector>

#include "core/dist_matrix.hpp"
#include "core/process_grid.hpp"
#include "par/profiler.hpp"
#include "sparse/coo.hpp"

namespace dsg::core {

enum class RedistMode {
    TwoPhase,    ///< the paper's algorithm (counting sort, sqrt(p) peers)
    DirectSort,  ///< baseline: comparison sort + one global alltoallv
};

namespace detail {

template <typename T>
par::Buffer pack_triples(const Triple<T>* data, std::size_t count) {
    par::Buffer buf;
    par::BufferWriter w(buf);
    w.write_span(std::span<const Triple<T>>(data, count));
    return buf;
}

template <typename T>
void unpack_triples(const par::Buffer& buf, std::vector<Triple<T>>& out) {
    par::BufferReader r(buf);
    auto part = r.template read_vector<Triple<T>>();
    out.insert(out.end(), part.begin(), part.end());
}

/// alltoallv through either the blocking or the post/wait path. Redistribution
/// has no local work to overlap, so async mode here exists to exercise the
/// same code path the overlapped algorithms use — byte-identical either way.
inline std::vector<par::Buffer> exchange(par::Comm& comm,
                                         std::vector<par::Buffer> send,
                                         par::CommMode mode) {
    if (mode == par::CommMode::Async)
        return comm.ialltoallv(std::move(send)).wait();
    return comm.alltoallv(std::move(send));
}

}  // namespace detail

/// Routes tuples (global coordinates) to the rank owning their block; returns
/// the tuples this rank owns, still in global coordinates. Collective.
template <typename T>
std::vector<Triple<T>> redistribute_tuples(ProcessGrid& grid,
                                           const DistShape& shape,
                                           std::vector<Triple<T>> tuples,
                                           RedistMode mode = RedistMode::TwoPhase,
                                           par::CommMode comm_mode = par::CommMode::Sync) {
    using par::Phase;
    using par::Profiler;
    const int rows = grid.rows();
    const int cols = grid.cols();
    const auto& rp = shape.row_partition();
    const auto& cp = shape.col_partition();

    if (mode == RedistMode::DirectSort) {
        // Competitor path: sort by destination world rank, one global
        // exchange over all p ranks.
        {
            Profiler::Scope scope(Phase::RedistSort);
            std::sort(tuples.begin(), tuples.end(),
                      [&](const Triple<T>& a, const Triple<T>& b) {
                          const int ra = shape.owner_rank(a.row, a.col);
                          const int rb = shape.owner_rank(b.row, b.col);
                          if (ra != rb) return ra < rb;
                          return std::tie(a.row, a.col) < std::tie(b.row, b.col);
                      });
        }
        const int p = grid.world().size();
        std::vector<par::Buffer> send(static_cast<std::size_t>(p));
        {
            Profiler::Scope scope(Phase::RedistSort);
            std::size_t begin = 0;
            for (int dest = 0; dest < p; ++dest) {
                std::size_t end = begin;
                while (end < tuples.size() &&
                       shape.owner_rank(tuples[end].row, tuples[end].col) == dest)
                    ++end;
                send[static_cast<std::size_t>(dest)] =
                    detail::pack_triples(tuples.data() + begin, end - begin);
                begin = end;
            }
        }
        std::vector<par::Buffer> recv;
        {
            Profiler::Scope scope(Phase::RedistComm);
            recv = detail::exchange(grid.world(), std::move(send), comm_mode);
        }
        std::vector<Triple<T>> out;
        {
            Profiler::Scope scope(Phase::MemManagement);
            for (const auto& buf : recv) detail::unpack_triples(buf, out);
        }
        return out;
    }

    // Phase 1: to the correct grid row, exchanging within this process
    // column. col_comm ranks are ordered by grid row (`rows` buckets).
    std::vector<std::size_t> offsets;
    {
        Profiler::Scope scope(Phase::RedistSort);
        offsets = sparse::counting_sort(
            tuples, static_cast<std::size_t>(rows),
            [&](const Triple<T>& t) { return rp.owner(t.row); });
    }
    {
        std::vector<par::Buffer> send(static_cast<std::size_t>(rows));
        for (int dest = 0; dest < rows; ++dest)
            send[static_cast<std::size_t>(dest)] = detail::pack_triples(
                tuples.data() + offsets[static_cast<std::size_t>(dest)],
                offsets[static_cast<std::size_t>(dest) + 1] -
                    offsets[static_cast<std::size_t>(dest)]);
        std::vector<par::Buffer> recv;
        {
            Profiler::Scope scope(Phase::RedistComm);
            recv = detail::exchange(grid.col_comm(), std::move(send), comm_mode);
        }
        tuples.clear();
        {
            Profiler::Scope scope(Phase::MemManagement);
            for (const auto& buf : recv) detail::unpack_triples(buf, tuples);
        }
    }

    // Phase 2: to the correct grid column, exchanging within this process
    // row. row_comm ranks are ordered by grid column (`cols` buckets).
    {
        Profiler::Scope scope(Phase::RedistSort);
        offsets = sparse::counting_sort(
            tuples, static_cast<std::size_t>(cols),
            [&](const Triple<T>& t) { return cp.owner(t.col); });
    }
    {
        std::vector<par::Buffer> send(static_cast<std::size_t>(cols));
        for (int dest = 0; dest < cols; ++dest)
            send[static_cast<std::size_t>(dest)] = detail::pack_triples(
                tuples.data() + offsets[static_cast<std::size_t>(dest)],
                offsets[static_cast<std::size_t>(dest) + 1] -
                    offsets[static_cast<std::size_t>(dest)]);
        std::vector<par::Buffer> recv;
        {
            Profiler::Scope scope(Phase::RedistComm);
            recv = detail::exchange(grid.row_comm(), std::move(send), comm_mode);
        }
        tuples.clear();
        {
            Profiler::Scope scope(Phase::MemManagement);
            for (const auto& buf : recv) detail::unpack_triples(buf, tuples);
        }
    }
    return tuples;
}

}  // namespace dsg::core
