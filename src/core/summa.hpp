// Sparse SUMMA (Buluc & Gilbert [20]): the static distributed SpGEMM.
//
// This implementation serves three roles:
//  1. the initial computation of C = AB (optionally producing the Bloom
//     filter matrix F needed by the general dynamic algorithm, Section V-B);
//  2. the CombBLAS-style *competitor* that the dynamic algorithms are
//     benchmarked against (static recomputation, Figs. 9/10);
//  3. a masked variant used by the algebraic graph algorithms (e.g. triangle
//     counting computes A·A masked at A).
//
// On a rows x cols grid the inner dimension K is partitioned two ways: into
// `cols` blocks by A's column distribution and into `rows` blocks by B's row
// distribution. A stage is one segment of the common refinement of the two
// partitions (at most rows + cols - 1 segments; exactly q of them on a
// square q x q grid, where the refinement IS the classic round structure).
// In each stage the grid column owning the A-columns of the segment
// broadcasts its slice along the grid row, the grid row owning the matching
// B-rows broadcasts along the grid column, and every rank multiplies
// locally; aggregation is entirely local, but *all* non-zeros of A and B
// travel, which is exactly the cost the dynamic algorithms avoid.
//
// With SummaOptions::comm_mode == Async the two broadcasts of stage k+1 are
// posted before stage k's local multiply starts (DistEmbed-style pipelining),
// so communication overlaps compute. The bytes and the reduction order are
// identical to sync mode — results are bit-identical.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/dist_matrix.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"

namespace dsg::core {

struct SummaOptions {
    par::ThreadPool* pool = nullptr;
    /// When set, also accumulates the Bloom filter matrix F: bit (k mod 64)
    /// of f_{ij} is set iff term a_{ik} b_{kj} contributed to c_{ij}.
    DistDynamicMatrix<std::uint64_t>* bloom_out = nullptr;
    /// When set, only entries present in the mask's local blocks are
    /// produced (masked SpGEMM).
    const sparse::PairSet* local_mask = nullptr;
    /// Sync: broadcast-then-multiply per stage. Async: stage k+1's
    /// broadcasts are posted before stage k's multiply (overlap).
    par::CommMode comm_mode = par::CommMode::Sync;
};

namespace detail {

/// One stage of the rectangular-grid SUMMA: the inner-index range [lo, hi)
/// lies inside a single block of A's column partition (owned by grid column
/// a_root) and a single block of B's row partition (owned by grid row
/// b_root).
struct SummaStage {
    index_t lo, hi;
    int a_root, b_root;
};

/// Common refinement of A's column partition (over grid cols) and B's row
/// partition (over grid rows) of the inner dimension [0, K).
inline std::vector<SummaStage> summa_stages(const BlockPartition& kc,
                                            const BlockPartition& kr) {
    std::vector<index_t> cuts;
    for (int b = 0; b <= kc.blocks(); ++b) cuts.push_back(kc.offset(b));
    for (int b = 0; b <= kr.blocks(); ++b) cuts.push_back(kr.offset(b));
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    std::vector<SummaStage> stages;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
        if (cuts[s + 1] == cuts[s]) continue;
        stages.push_back(
            {cuts[s], cuts[s + 1], kc.owner(cuts[s]), kr.owner(cuts[s])});
    }
    return stages;
}

}  // namespace detail

/// C <- C (+) A · B over SR (C is usually empty on entry). Requires
/// A.ncols == B.nrows and matching grids. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void summa(DistDynamicMatrix<T>& C, const DistDynamicMatrix<T>& A,
           const DistDynamicMatrix<T>& B, const SummaOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    ProcessGrid& grid = C.shape().grid();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const BlockPartition kc = grid.col_partition(A.shape().ncols());
    const BlockPartition kr = grid.row_partition(B.shape().nrows());
    const auto stages = detail::summa_stages(kc, kr);

    // Freeze the local blocks once; stages then slice out of the frozen
    // copies (on a square grid each rank's block is sliced exactly once).
    const Dcsr<T> a_loc = A.local().to_dcsr();
    const Dcsr<T> b_loc = B.local().to_dcsr();

    // Serializes this rank's slices for one stage (empty buffers on
    // non-roots, which the broadcasts ignore).
    auto slices = [&](const detail::SummaStage& st) {
        Profiler::Scope scope(Phase::LocalConstruct);
        std::pair<par::Buffer, par::Buffer> out;
        if (j == st.a_root)
            out.first = sparse::dcsr_col_block(a_loc,
                                               st.lo - kc.offset(st.a_root),
                                               st.hi - kc.offset(st.a_root))
                            .serialize();
        if (i == st.b_root)
            out.second = sparse::dcsr_row_block(b_loc,
                                                st.lo - kr.offset(st.b_root),
                                                st.hi - kr.offset(st.b_root))
                             .serialize();
        return out;
    };

    const bool async = opts.comm_mode == par::CommMode::Async;
    using Posted =
        std::pair<par::Comm::PendingBcast, par::Comm::PendingBcast>;
    auto post = [&](const detail::SummaStage& st) {
        auto [abuf, bbuf] = slices(st);
        Profiler::Scope scope(Phase::Bcast);
        return Posted{grid.row_comm().ibcast(st.a_root, std::move(abuf)),
                      grid.col_comm().ibcast(st.b_root, std::move(bbuf))};
    };
    std::vector<Posted> inflight;  // at most one outstanding stage
    if (async && !stages.empty()) inflight.push_back(post(stages[0]));

    for (std::size_t k = 0; k < stages.size(); ++k) {
        const auto& st = stages[k];
        Dcsr<T> a_ik;
        Dcsr<T> b_kj;
        if (async) {
            {
                Profiler::Scope scope(Phase::Bcast);
                a_ik = Dcsr<T>::deserialize(inflight.back().first.wait());
                b_kj = Dcsr<T>::deserialize(inflight.back().second.wait());
                inflight.pop_back();
            }
            // Overlap: next stage's broadcasts ride under this multiply.
            if (k + 1 < stages.size()) inflight.push_back(post(stages[k + 1]));
        } else {
            auto [abuf, bbuf] = slices(st);
            Profiler::Scope scope(Phase::Bcast);
            a_ik = Dcsr<T>::deserialize(
                grid.row_comm().bcast(st.a_root, std::move(abuf)));
            b_kj = Dcsr<T>::deserialize(
                grid.col_comm().bcast(st.b_root, std::move(bbuf)));
        }

        sparse::SpgemmOptions sopts;
        sopts.pool = opts.pool;
        sopts.mask = opts.local_mask;
        sopts.inner_offset = st.lo;
        if (opts.bloom_out != nullptr) {
            Dcsr<sparse::ValueBits<T>> part;
            {
                Profiler::Scope scope(Phase::LocalMult);
                part = sparse::spgemm_with_bloom<SR>(
                    C.shape().local_rows(), C.shape().local_cols(),
                    sparse::as_left(a_ik), sparse::as_right(b_kj), sopts);
            }
            Profiler::Scope scope(Phase::LocalAddition);
            part.for_each([&](index_t u, index_t v,
                              const sparse::ValueBits<T>& vb) {
                C.local().insert_or_add(u, v, vb.value, SR::add);
                opts.bloom_out->local().insert_or_add(
                    u, v, vb.bits,
                    [](std::uint64_t a, std::uint64_t b) { return a | b; });
            });
        } else {
            Dcsr<T> part;
            {
                Profiler::Scope scope(Phase::LocalMult);
                part = sparse::spgemm<SR>(C.shape().local_rows(),
                                          C.shape().local_cols(),
                                          sparse::as_left(a_ik),
                                          sparse::as_right(b_kj), sopts);
            }
            Profiler::Scope scope(Phase::LocalAddition);
            part.for_each([&](index_t u, index_t v, const T& x) {
                C.local().insert_or_add(u, v, x, SR::add);
            });
        }
    }
}

/// Convenience: freshly computed C = A · B. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
DistDynamicMatrix<T> summa_multiply(const DistDynamicMatrix<T>& A,
                                    const DistDynamicMatrix<T>& B,
                                    const SummaOptions& opts = {}) {
    DistDynamicMatrix<T> C(A.shape().grid(), A.shape().nrows(),
                           B.shape().ncols());
    summa<SR>(C, A, B, opts);
    return C;
}

}  // namespace dsg::core
