// Sparse SUMMA (Buluc & Gilbert [20]): the static distributed SpGEMM.
//
// This implementation serves three roles:
//  1. the initial computation of C = AB (optionally producing the Bloom
//     filter matrix F needed by the general dynamic algorithm, Section V-B);
//  2. the CombBLAS-style *competitor* that the dynamic algorithms are
//     benchmarked against (static recomputation, Figs. 9/10);
//  3. a masked variant used by the algebraic graph algorithms (e.g. triangle
//     counting computes A·A masked at A).
//
// In round k, block A_{i,k} is broadcast along grid row i and block B_{k,j}
// along grid column j; every rank multiplies locally and aggregates into its
// own output block — aggregation is entirely local, but *all* non-zeros of A
// and B travel, which is exactly the cost the dynamic algorithms avoid.
#pragma once

#include "core/dist_matrix.hpp"
#include "par/profiler.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"

namespace dsg::core {

struct SummaOptions {
    par::ThreadPool* pool = nullptr;
    /// When set, also accumulates the Bloom filter matrix F: bit (k mod 64)
    /// of f_{ij} is set iff term a_{ik} b_{kj} contributed to c_{ij}.
    DistDynamicMatrix<std::uint64_t>* bloom_out = nullptr;
    /// When set, only entries present in the mask's local blocks are
    /// produced (masked SpGEMM).
    const sparse::PairSet* local_mask = nullptr;
};

/// C <- C (+) A · B over SR (C is usually empty on entry). Requires
/// A.ncols == B.nrows and matching grids. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void summa(DistDynamicMatrix<T>& C, const DistDynamicMatrix<T>& A,
           const DistDynamicMatrix<T>& B, const SummaOptions& opts = {}) {
    using par::Phase;
    using par::Profiler;
    ProcessGrid& grid = C.shape().grid();
    const int q = grid.q();
    const int i = grid.grid_row();
    const int j = grid.grid_col();
    const BlockPartition ip = grid.partition(A.shape().ncols());

    for (int k = 0; k < q; ++k) {
        par::Buffer abuf;
        par::Buffer bbuf;
        {
            Profiler::Scope scope(Phase::LocalConstruct);
            if (j == k) abuf = A.local().to_dcsr().serialize();
            if (i == k) bbuf = B.local().to_dcsr().serialize();
        }
        Dcsr<T> a_ik;
        Dcsr<T> b_kj;
        {
            Profiler::Scope scope(Phase::Bcast);
            a_ik = Dcsr<T>::deserialize(grid.row_comm().bcast(k, std::move(abuf)));
            b_kj = Dcsr<T>::deserialize(grid.col_comm().bcast(k, std::move(bbuf)));
        }

        sparse::SpgemmOptions sopts;
        sopts.pool = opts.pool;
        sopts.mask = opts.local_mask;
        sopts.inner_offset = ip.offset(k);
        if (opts.bloom_out != nullptr) {
            Dcsr<sparse::ValueBits<T>> part;
            {
                Profiler::Scope scope(Phase::LocalMult);
                part = sparse::spgemm_with_bloom<SR>(
                    C.shape().local_rows(), C.shape().local_cols(),
                    sparse::as_left(a_ik), sparse::as_right(b_kj), sopts);
            }
            Profiler::Scope scope(Phase::LocalAddition);
            part.for_each([&](index_t u, index_t v,
                              const sparse::ValueBits<T>& vb) {
                C.local().insert_or_add(u, v, vb.value, SR::add);
                opts.bloom_out->local().insert_or_add(
                    u, v, vb.bits,
                    [](std::uint64_t a, std::uint64_t b) { return a | b; });
            });
        } else {
            Dcsr<T> part;
            {
                Profiler::Scope scope(Phase::LocalMult);
                part = sparse::spgemm<SR>(C.shape().local_rows(),
                                          C.shape().local_cols(),
                                          sparse::as_left(a_ik),
                                          sparse::as_right(b_kj), sopts);
            }
            Profiler::Scope scope(Phase::LocalAddition);
            part.for_each([&](index_t u, index_t v, const T& x) {
                C.local().insert_or_add(u, v, x, SR::add);
            });
        }
    }
}

/// Convenience: freshly computed C = A · B. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
DistDynamicMatrix<T> summa_multiply(const DistDynamicMatrix<T>& A,
                                    const DistDynamicMatrix<T>& B,
                                    const SummaOptions& opts = {}) {
    DistDynamicMatrix<T> C(A.shape().grid(), A.shape().nrows(),
                           B.shape().ncols());
    summa<SR>(C, A, B, opts);
    return C;
}

}  // namespace dsg::core
