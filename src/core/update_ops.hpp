// Dynamic update operations (Section IV-A):
//  - building a distributed hypersparse update matrix A* from locally
//    generated tuples (involves the redistribution of Section IV-B);
//  - ADD:   A <- A (+) A*   (semiring addition; algebraic updates);
//  - MERGE: replace the value of every (i, j) present in A*;
//  - MASK:  delete every (i, j) of A that is non-zero in A*.
//
// After A* is built, all three operations are purely local. Local application
// groups updates by (row mod T) with a counting sort and applies the groups
// on T threads in parallel — different threads then touch disjoint rows of
// the DHB block, exactly the scheme of Section IV-B.
#pragma once

#include <vector>

#include "core/dist_matrix.hpp"
#include "core/redistribute.hpp"
#include "par/profiler.hpp"
#include "par/thread_pool.hpp"
#include "sparse/semiring.hpp"

namespace dsg::core {

/// Builds the distributed update matrix from tuples generated anywhere:
/// redistributes them to owner ranks and assembles a local-index DCSR block
/// per rank. Collective.
template <typename T>
DistDcsr<T> build_update_matrix(ProcessGrid& grid, index_t nrows, index_t ncols,
                                std::vector<Triple<T>> tuples,
                                RedistMode mode = RedistMode::TwoPhase,
                                par::CommMode comm_mode = par::CommMode::Sync) {
    using par::Phase;
    using par::Profiler;
    DistDcsr<T> out(grid, nrows, ncols);
    auto mine = redistribute_tuples(grid, out.shape(), std::move(tuples), mode,
                                    comm_mode);

    Profiler::Scope scope(Phase::LocalConstruct);
    // Map to block-local coordinates.
    for (auto& t : mine) {
        t.row = out.shape().local_row(t.row);
        t.col = out.shape().local_col(t.col);
    }
    // Group by local row (counting sort over local rows) to form the DCSR.
    const auto local_rows = static_cast<std::size_t>(out.shape().local_rows());
    if (local_rows > 0) {
        sparse::counting_sort(mine, local_rows, [](const Triple<T>& t) {
            return static_cast<std::size_t>(t.row);
        });
    }
    out.local() = Dcsr<T>::from_row_grouped(out.shape().local_rows(),
                                            out.shape().local_cols(), mine);
    return out;
}

namespace detail {

/// Applies fn(row, col, value) to every entry of the update block, with rows
/// bucketed by (row mod T) across T threads so each row is touched by exactly
/// one thread.
template <typename T, typename Fn>
void apply_rowwise(const Dcsr<T>& update, par::ThreadPool* pool, Fn&& fn) {
    const int threads = pool != nullptr ? pool->thread_count() : 1;
    if (threads == 1) {
        update.for_each(fn);
        return;
    }
    pool->parallel_for(static_cast<std::size_t>(threads),
                       [&](int, std::size_t tb, std::size_t te) {
                           for (std::size_t t = tb; t < te; ++t) {
                               for (std::size_t r = 0; r < update.row_count(); ++r) {
                                   const index_t row = update.row_id(r);
                                   if (static_cast<std::size_t>(row) % threads != t)
                                       continue;
                                   auto cols = update.row_cols(r);
                                   auto vals = update.row_values(r);
                                   for (std::size_t x = 0; x < cols.size(); ++x)
                                       fn(row, cols[x], vals[x]);
                               }
                           }
                       });
}

}  // namespace detail

/// A <- A (+) A* with the semiring addition (insertions / algebraic updates).
/// Local-only; requires A* built by build_update_matrix.
template <sparse::Semiring SR, typename T = typename SR::value_type>
void add_update(DistDynamicMatrix<T>& A, const DistDcsr<T>& update,
                par::ThreadPool* pool = nullptr) {
    par::Profiler::Scope scope(par::Phase::LocalAddition);
    detail::apply_rowwise(update.local(), pool,
                          [&](index_t i, index_t j, const T& v) {
                              A.local().insert_or_add(i, j, v, SR::add);
                          });
}

/// MERGE(A, A*): replace (or insert) the value of every entry of A*
/// (general value updates, not expressible as semiring addition).
template <typename T>
void merge_update(DistDynamicMatrix<T>& A, const DistDcsr<T>& update,
                  par::ThreadPool* pool = nullptr) {
    par::Profiler::Scope scope(par::Phase::LocalAddition);
    detail::apply_rowwise(update.local(), pool,
                          [&](index_t i, index_t j, const T& v) {
                              A.local().insert_or_assign(i, j, v);
                          });
}

/// MASK(A, A*): remove every entry of A that is structurally non-zero in A*.
/// The values of the update matrix are irrelevant.
template <typename T, typename U>
void mask_delete(DistDynamicMatrix<T>& A, const DistDcsr<U>& update,
                 par::ThreadPool* pool = nullptr) {
    par::Profiler::Scope scope(par::Phase::LocalAddition);
    detail::apply_rowwise(update.local(), pool,
                          [&](index_t i, index_t j, const U&) {
                              A.local().erase(i, j);
                          });
}

/// Convenience: constructs a distributed dynamic matrix from tuples (the
/// paper's construction experiment): redistribute + bucketed local inserts.
/// Duplicates combine with the semiring addition. Collective.
template <sparse::Semiring SR, typename T = typename SR::value_type>
DistDynamicMatrix<T> build_dynamic_matrix(ProcessGrid& grid, index_t nrows,
                                          index_t ncols,
                                          std::vector<Triple<T>> tuples,
                                          RedistMode mode = RedistMode::TwoPhase,
                                          par::ThreadPool* pool = nullptr,
                                          par::CommMode comm_mode = par::CommMode::Sync) {
    DistDynamicMatrix<T> out(grid, nrows, ncols);
    auto mine = redistribute_tuples(grid, out.shape(), std::move(tuples), mode,
                                    comm_mode);
    par::Profiler::Scope scope(par::Phase::LocalAddition);
    const int threads = pool != nullptr ? pool->thread_count() : 1;
    auto insert_one = [&](const Triple<T>& t) {
        out.local().insert_or_add(out.shape().local_row(t.row),
                                  out.shape().local_col(t.col), t.value,
                                  SR::add);
    };
    if (threads == 1) {
        for (const auto& t : mine) insert_one(t);
    } else {
        // Bucket tuples by (local row mod T); each thread owns its buckets.
        std::vector<std::size_t> offsets;
        {
            par::Profiler::Scope sort_scope(par::Phase::RedistSort);
            offsets = sparse::counting_sort(
                mine, static_cast<std::size_t>(threads),
                [&](const Triple<T>& t) {
                    return static_cast<std::size_t>(
                               out.shape().local_row(t.row)) %
                           threads;
                });
        }
        pool->parallel_for(static_cast<std::size_t>(threads),
                           [&](int, std::size_t tb, std::size_t te) {
                               for (std::size_t t = tb; t < te; ++t)
                                   for (std::size_t x = offsets[t];
                                        x < offsets[t + 1]; ++x)
                                       insert_one(mine[x]);
                           });
    }
    return out;
}

}  // namespace dsg::core
