// Umbrella header: the full public API of the dynamic-spgemm library.
//
//   #include "dsg.hpp"
//
// pulls in the parallel runtime (dsg::par), the local sparse substrates
// (dsg::sparse), the distributed core (dsg::core — the paper's
// contribution), the streaming ingestion engine (dsg::stream), the live
// analytics layer (dsg::analytics), the durability layer (dsg::persist),
// the query serving layer (dsg::serve), the observability layer (dsg::obs),
// the competitor baselines (dsg::baseline)
// and the graph layer (dsg::graph). Individual headers remain includable on
// their own;
// see README.md for the module map and docs/ARCHITECTURE.md for the design
// of the runtime and the storage substrates.
#pragma once

#include "par/buffer.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"
#include "par/thread_pool.hpp"

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/flat_map.hpp"
#include "sparse/local_spgemm.hpp"
#include "sparse/semiring.hpp"
#include "sparse/spa.hpp"
#include "sparse/transposed_spgemm.hpp"
#include "sparse/types.hpp"

#include "core/dist_matrix.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/ewise.hpp"
#include "core/general_spgemm.hpp"
#include "core/process_grid.hpp"
#include "core/redistribute.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"

#include "stream/epoch_engine.hpp"
#include "stream/update_queue.hpp"
#include "stream/workloads.hpp"

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"

#include "persist/checkpoint.hpp"
#include "persist/durability.hpp"
#include "persist/op_log.hpp"
#include "persist/recovery.hpp"

#include "serve/query_executor.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/mirrors.hpp"
#include "obs/trace.hpp"

#include "baseline/static_rebuild.hpp"

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
