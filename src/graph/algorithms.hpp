// Algebraic graph algorithms on top of the distributed SpGEMM stack — the
// application classes the paper's introduction motivates, each in a static
// and a dynamic (incrementally maintained) variant:
//
//  - triangle_count / DynamicTriangleCounter — exact triangle counting via
//    masked SUMMA, maintained as C = A·A under batch edge insertions AND
//    deletions (deletions are algebraic in the (+,*) ring);
//  - khop_distances / DynamicMultiSourceProduct — multi-source (min,+)
//    shortest distances; the dynamic class maintains the one-hop product
//    D = S·A under algebraic updates (insertions / weight decreases);
//  - DynamicContraction — cluster contraction C = Sᵀ·A·S maintained under
//    batch edge insertions via the transposed variant of Algorithm 1.
//
// The free helpers (elementwise_combine, source_selector) are the small
// algebra the classes share. For continuously maintaining these values
// against a live op stream, see the adapters in
// src/analytics/graph_maintainers.hpp.
#pragma once

#include <stdexcept>
#include <vector>

#include "core/dynamic_spgemm.hpp"
#include "core/ewise.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "par/buffer.hpp"
#include "sparse/semiring.hpp"

namespace dsg::graph {

using core::DistDcsr;
using core::DistDynamicMatrix;
using core::ProcessGrid;

namespace detail {

/// Replaces a distributed matrix's local block with a tile deserialized
/// from a checkpoint blob (src/persist/), validating the block shape. The
/// distribution itself is not serialized — the caller reconstructs the
/// object on the same grid, which recovery verifies against the manifest.
inline void restore_local_block(DistDynamicMatrix<double>& m,
                                par::BufferReader& r) {
    auto tile = sparse::DynamicMatrix<double>::deserialize(r);
    if (tile.nrows() != m.local().nrows() || tile.ncols() != m.local().ncols())
        throw std::runtime_error(
            "restore_local_block: tile shape disagrees with this rank's "
            "block (was the checkpoint taken on a different grid?)");
    m.local() = tile;
}

}  // namespace detail

/// Element-wise combine of two identically distributed matrices:
/// A <- A (+) B with add(old, new). Local-only.
template <typename T, typename AddFn>
void elementwise_combine(DistDynamicMatrix<T>& A, const DistDynamicMatrix<T>& B,
                         AddFn&& add) {
    B.local().for_each([&](sparse::index_t i, sparse::index_t j, const T& v) {
        A.local().insert_or_add(i, j, v, add);
    });
}

/// Exact triangle count of an undirected simple graph given as a 0/1
/// adjacency matrix (both edge directions present, no self loops):
/// sum((A*A) .* A) = 6 * triangles. Uses masked SUMMA, so only the entries
/// under the mask are ever formed. Collective.
inline double triangle_count(const DistDynamicMatrix<double>& A,
                             par::ThreadPool* pool = nullptr) {
    sparse::PairSet mask(A.shape().local_cols(), A.local().nnz());
    A.local().for_each(
        [&](sparse::index_t i, sparse::index_t j, double) { mask.insert(i, j); });
    core::SummaOptions opts;
    opts.local_mask = &mask;
    opts.pool = pool;
    auto C = core::summa_multiply<sparse::PlusTimes<double>>(A, A, opts);
    double local = 0.0;
    C.local().for_each(
        [&](sparse::index_t, sparse::index_t, double v) { local += v; });
    const double total = A.shape().grid().world().allreduce<double>(
        local, [](double a, double b) { return a + b; });
    return total / 6.0;
}

/// Maintains A and C = A*A under batches of edge insertions, supporting an
/// O(batch)-communication triangle count after every batch.
///
/// Insertion uses the distributive expansion A'A' = AA + A A* + A* A' as two
/// passes of Algorithm 1 (first Y = A A* with the pre-update A, then apply
/// the update, then X = A* A' with the post-update A), avoiding a second
/// copy of A.
class DynamicTriangleCounter {
public:
    DynamicTriangleCounter(ProcessGrid& grid, sparse::index_t n,
                           par::ThreadPool* pool = nullptr)
        : a_(grid, n, n), c_(grid, n, n), pool_(pool) {}

    /// Seeds the graph (collective). Edge tuples must contain both directions
    /// of each undirected edge, value 1.0.
    void initialize(std::vector<sparse::Triple<double>> edges) {
        auto update = core::build_update_matrix(a_.shape().grid(),
                                                a_.shape().nrows(),
                                                a_.shape().ncols(),
                                                std::move(edges));
        core::add_update<sparse::PlusTimes<double>>(a_, update, pool_);
        c_ = core::summa_multiply<sparse::PlusTimes<double>>(a_, a_,
                                                             summa_opts());
    }

    /// Applies a batch of *new* edges (both directions, weight 1.0, not yet
    /// present in the graph) and updates C = A*A dynamically. Collective.
    void insert_edges(std::vector<sparse::Triple<double>> edges) {
        ProcessGrid& grid = a_.shape().grid();
        const auto n = a_.shape().nrows();
        auto astar = core::build_update_matrix(grid, n, n, std::move(edges));
        DistDcsr<double> empty(grid, n, n);
        core::DynamicSpgemmOptions opts;
        opts.pool = pool_;
        // Pass 1: C += A_old * A*   (left update matrix empty).
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
            c_, a_, empty, a_, astar, opts);
        // Apply the update: A <- A + A*.
        core::add_update<sparse::PlusTimes<double>>(a_, astar, pool_);
        // Pass 2: C += A* * A_new  (right update matrix empty).
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
            c_, a_, astar, a_, empty, opts);
    }

    /// Removes a batch of *existing* edges (both directions). In the (+,*)
    /// ring a deletion is the algebraic update a* = -1 (Section V: "A* can
    /// simply be computed as A' - A in rings"), so the same two-pass flow as
    /// insertion maintains C; the cancelled entries are then pruned so they
    /// do not accumulate as structural zeros. Collective.
    void remove_edges(std::vector<sparse::Triple<double>> edges) {
        for (auto& e : edges) e.value = -1.0;
        ProcessGrid& grid = a_.shape().grid();
        const auto n = a_.shape().nrows();
        auto astar = core::build_update_matrix(grid, n, n, std::move(edges));
        DistDcsr<double> empty(grid, n, n);
        core::DynamicSpgemmOptions opts;
        opts.pool = pool_;
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
            c_, a_, empty, a_, astar, opts);
        core::add_update<sparse::PlusTimes<double>>(a_, astar, pool_);
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
            c_, a_, astar, a_, empty, opts);
        // Drop the numerically cancelled entries of A (they must not count
        // as structural non-zeros of the graph); C's cancelled entries are
        // harmless for count() but pruned as well to keep it tight.
        core::ewise_prune(a_, [](sparse::index_t, sparse::index_t, double v) {
            return std::abs(v) < 1e-12;
        });
        core::ewise_prune(c_, [](sparse::index_t, sparse::index_t, double v) {
            return std::abs(v) < 1e-12;
        });
    }

    /// Current triangle count: sum of C under the mask A, divided by 6.
    /// Collective (one scalar all-reduce; no matrix communication).
    [[nodiscard]] double count() const {
        double local = 0.0;
        a_.local().for_each([&](sparse::index_t i, sparse::index_t j, double) {
            if (const double* v = c_.local().find(i, j)) local += *v;
        });
        const double total = a_.shape().grid().world().allreduce<double>(
            local, [](double x, double y) { return x + y; });
        return total / 6.0;
    }

    [[nodiscard]] const DistDynamicMatrix<double>& adjacency() const {
        return a_;
    }
    [[nodiscard]] const DistDynamicMatrix<double>& square() const { return c_; }

    /// Rank-local checkpoint of A and C = A·A (src/persist/); pair with
    /// load() on an identically constructed counter on the same grid.
    void save(par::Buffer& out) const {
        a_.local().serialize(out);
        c_.local().serialize(out);
    }
    void load(par::BufferReader& in) {
        detail::restore_local_block(a_, in);
        detail::restore_local_block(c_, in);
    }

private:
    core::SummaOptions summa_opts() const {
        core::SummaOptions opts;
        opts.pool = pool_;
        return opts;
    }

    DistDynamicMatrix<double> a_;
    DistDynamicMatrix<double> c_;
    par::ThreadPool* pool_;
};

/// Builds the source-selector matrix S (|sources| x n) over (min,+): row s
/// has a single entry one() = 0 at column sources[s]. Collective.
inline DistDynamicMatrix<double> source_selector(
    ProcessGrid& grid, sparse::index_t n,
    const std::vector<sparse::index_t>& sources) {
    DistDynamicMatrix<double> S(grid, static_cast<sparse::index_t>(sources.size()),
                                n);
    std::vector<sparse::Triple<double>> entries;
    if (grid.world().rank() == 0) {
        for (std::size_t s = 0; s < sources.size(); ++s)
            entries.push_back({static_cast<sparse::index_t>(s), sources[s],
                               sparse::MinPlus<double>::one()});
    }
    auto update = core::build_update_matrix(grid, S.shape().nrows(), n,
                                            std::move(entries));
    core::add_update<sparse::MinPlus<double>>(S, update);
    return S;
}

/// Multi-source shortest distances within at most `hops` hops over (min,+):
/// D = min(S A, S A^2, ..., S A^hops). Entry (s, v) is the length of the
/// shortest s -> v path using <= hops edges (absent = unreachable; a source
/// reaches itself only via an actual cycle, matching the algebraic product).
/// Collective.
inline DistDynamicMatrix<double> khop_distances(
    const DistDynamicMatrix<double>& A, DistDynamicMatrix<double>& S, int hops,
    par::ThreadPool* pool = nullptr) {
    core::SummaOptions opts;
    opts.pool = pool;
    auto D = core::summa_multiply<sparse::MinPlus<double>>(S, A, opts);
    auto frontier = D;  // S A^h
    for (int h = 2; h <= hops; ++h) {
        frontier =
            core::summa_multiply<sparse::MinPlus<double>>(frontier, A, opts);
        elementwise_combine(D, frontier,
                            [](double a, double b) { return std::min(a, b); });
    }
    return D;
}

/// Maintains the one-hop product D = S A over (min,+) under *algebraic*
/// updates of A (new edges or weight decreases): D' = D min S A*, a single
/// Algorithm 1 call in which only the right operand changed.
class DynamicMultiSourceProduct {
public:
    DynamicMultiSourceProduct(ProcessGrid& grid, sparse::index_t n,
                              const std::vector<sparse::index_t>& sources,
                              par::ThreadPool* pool = nullptr)
        : s_(source_selector(grid, n, sources)),
          a_(grid, n, n),
          d_(grid, static_cast<sparse::index_t>(sources.size()), n),
          pool_(pool) {}

    /// Seeds the graph (collective); edge values are (min,+) weights.
    void initialize(std::vector<sparse::Triple<double>> edges) {
        auto update = core::build_update_matrix(a_.shape().grid(),
                                                a_.shape().nrows(),
                                                a_.shape().ncols(),
                                                std::move(edges));
        core::add_update<sparse::MinPlus<double>>(a_, update, pool_);
        core::SummaOptions opts;
        opts.pool = pool_;
        d_ = core::summa_multiply<sparse::MinPlus<double>>(s_, a_, opts);
    }

    /// Algebraic batch: inserts edges / lowers weights; D is maintained with
    /// one dynamic SpGEMM round over the hypersparse A*. Collective.
    void apply_decreases(std::vector<sparse::Triple<double>> edges) {
        ProcessGrid& grid = a_.shape().grid();
        const auto n = a_.shape().nrows();
        auto astar = core::build_update_matrix(grid, n, n, std::move(edges));
        DistDcsr<double> s_empty(grid, s_.shape().nrows(), n);
        core::DynamicSpgemmOptions opts;
        opts.pool = pool_;
        // D' = D min (S A*): left operand S unchanged, right updated.
        core::add_update<sparse::MinPlus<double>>(a_, astar, pool_);
        core::dynamic_spgemm_algebraic<sparse::MinPlus<double>>(
            d_, s_, s_empty, a_, astar, opts);
    }

    [[nodiscard]] const DistDynamicMatrix<double>& distances() const {
        return d_;
    }
    [[nodiscard]] const DistDynamicMatrix<double>& adjacency() const {
        return a_;
    }
    [[nodiscard]] DistDynamicMatrix<double>& selector() { return s_; }

    /// Rank-local checkpoint of S, A, and D = S·A (src/persist/).
    void save(par::Buffer& out) const {
        s_.local().serialize(out);
        a_.local().serialize(out);
        d_.local().serialize(out);
    }
    void load(par::BufferReader& in) {
        detail::restore_local_block(s_, in);
        detail::restore_local_block(a_, in);
        detail::restore_local_block(d_, in);
    }

private:
    DistDynamicMatrix<double> s_;
    DistDynamicMatrix<double> a_;
    DistDynamicMatrix<double> d_;
    par::ThreadPool* pool_;
};

/// Maintains a graph contraction C = S^T A S under edge insertions — the
/// second application the paper's introduction motivates. S is the n x s
/// cluster-assignment selector (one 1 per row); entry C(a, b) accumulates
/// the total weight of edges from cluster a to cluster b.
///
/// Both stages stay dynamic: T = A S follows A* through Algorithm 1 (which
/// also emits T* = A* S), and C = S^T T follows T* through the transposed
/// variant of Algorithm 1 (Section V-C) — per batch, only hypersparse
/// matrices cross rank boundaries.
class DynamicContraction {
public:
    /// assignment[v] = cluster of vertex v (in [0, clusters)); identical on
    /// every rank. Collective.
    DynamicContraction(ProcessGrid& grid, sparse::index_t n,
                       sparse::index_t clusters,
                       const std::vector<sparse::index_t>& assignment,
                       par::ThreadPool* pool = nullptr)
        : a_(grid, n, n),
          s_(grid, n, clusters),
          t_(grid, n, clusters),
          c_(grid, clusters, clusters),
          pool_(pool) {
        std::vector<sparse::Triple<double>> entries;
        if (grid.world().rank() == 0) {
            entries.reserve(assignment.size());
            for (std::size_t v = 0; v < assignment.size(); ++v)
                entries.push_back({static_cast<sparse::index_t>(v),
                                   assignment[v], 1.0});
        }
        auto update = core::build_update_matrix(grid, n, clusters,
                                                std::move(entries));
        core::add_update<sparse::PlusTimes<double>>(s_, update, pool_);
    }

    /// Inserts weighted edges into A and updates T = A S and C = S^T A S
    /// dynamically. Collective.
    void insert_edges(std::vector<sparse::Triple<double>> edges) {
        ProcessGrid& grid = a_.shape().grid();
        const auto n = a_.shape().nrows();
        const auto s = s_.shape().ncols();
        auto astar = core::build_update_matrix(grid, n, n, std::move(edges));
        core::DynamicSpgemmOptions opts;
        opts.pool = pool_;

        // Stage 1: T += A* S, capturing T* = A* S for the next stage.
        DistDynamicMatrix<double> tstar_dyn(grid, n, s);
        core::DistDcsr<double> empty_ns(grid, n, s);
        core::dynamic_spgemm_algebraic<sparse::PlusTimes<double>>(
            t_, a_, astar, s_, empty_ns, opts, &tstar_dyn);
        core::add_update<sparse::PlusTimes<double>>(a_, astar, pool_);

        // Stage 2: C += S^T T* (transposed-left dynamic SpGEMM).
        core::DistDcsr<double> tstar(grid, n, s);
        tstar.local() = tstar_dyn.local().to_dcsr();
        core::DistDcsr<double> empty_sel(grid, n, s);
        core::dynamic_spgemm_algebraic_transA<sparse::PlusTimes<double>>(
            c_, s_, empty_sel, t_, tstar, opts);
    }

    [[nodiscard]] const DistDynamicMatrix<double>& contracted() const {
        return c_;
    }
    [[nodiscard]] const DistDynamicMatrix<double>& adjacency() const {
        return a_;
    }
    [[nodiscard]] const DistDynamicMatrix<double>& selector() const {
        return s_;
    }

    /// Rank-local checkpoint of A, S, T = A·S, C = SᵀAS (src/persist/).
    void save(par::Buffer& out) const {
        a_.local().serialize(out);
        s_.local().serialize(out);
        t_.local().serialize(out);
        c_.local().serialize(out);
    }
    void load(par::BufferReader& in) {
        detail::restore_local_block(a_, in);
        detail::restore_local_block(s_, in);
        detail::restore_local_block(t_, in);
        detail::restore_local_block(c_, in);
    }

private:
    DistDynamicMatrix<double> a_;
    DistDynamicMatrix<double> s_;
    DistDynamicMatrix<double> t_;  // A S
    DistDynamicMatrix<double> c_;  // S^T A S
    par::ThreadPool* pool_;
};

}  // namespace dsg::graph
