#include "graph/generators.hpp"

#include <algorithm>
#include <random>
#include <unordered_set>

namespace dsg::graph {

std::vector<Triple<double>> rmat_edges(int scale, std::size_t edges,
                                       std::uint64_t seed,
                                       const RmatParams& params) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<Triple<double>> out;
    out.reserve(edges);
    const double ab = params.a + params.b;
    const double abc = ab + params.c;
    for (std::size_t e = 0; e < edges; ++e) {
        index_t row = 0;
        index_t col = 0;
        for (int level = 0; level < scale; ++level) {
            const double r = uni(rng);
            row <<= 1;
            col <<= 1;
            if (r < params.a) {
                // top-left quadrant
            } else if (r < ab) {
                col |= 1;
            } else if (r < abc) {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        double w = uni(rng);
        if (w == 0.0) w = 0.5;
        out.push_back({row, col, w});
    }
    return out;
}

std::vector<Triple<double>> erdos_renyi_edges(index_t n, std::size_t edges,
                                              std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<index_t> pick(0, n - 1);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<Triple<double>> out;
    out.reserve(edges);
    for (std::size_t e = 0; e < edges; ++e) {
        double w = uni(rng);
        if (w == 0.0) w = 0.5;
        out.push_back({pick(rng), pick(rng), w});
    }
    return out;
}

std::vector<Triple<double>> symmetrize(std::vector<Triple<double>> edges) {
    const std::size_t n = edges.size();
    edges.reserve(2 * n);
    for (std::size_t e = 0; e < n; ++e) {
        if (edges[e].row != edges[e].col)
            edges.push_back({edges[e].col, edges[e].row, edges[e].value});
    }
    return edges;
}

std::vector<Triple<double>> simplify(std::vector<Triple<double>> edges) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges.size() * 2);
    std::vector<Triple<double>> out;
    out.reserve(edges.size());
    for (const auto& t : edges) {
        if (t.row == t.col) continue;
        // Packing is safe for the generator scales used in tests/benches.
        const auto key = (static_cast<std::uint64_t>(t.row) << 32) |
                         static_cast<std::uint32_t>(t.col);
        if (seen.insert(key).second) out.push_back(t);
    }
    return out;
}

std::vector<Triple<double>> path_graph(index_t n) {
    std::vector<Triple<double>> out;
    for (index_t i = 0; i + 1 < n; ++i) out.push_back({i, i + 1, 1.0});
    return out;
}

std::vector<Triple<double>> cycle_graph(index_t n) {
    std::vector<Triple<double>> out;
    for (index_t i = 0; i < n; ++i) out.push_back({i, (i + 1) % n, 1.0});
    return out;
}

std::vector<Triple<double>> complete_graph(index_t n) {
    std::vector<Triple<double>> out;
    for (index_t i = 0; i < n; ++i)
        for (index_t j = 0; j < n; ++j)
            if (i != j) out.push_back({i, j, 1.0});
    return out;
}

std::vector<Triple<double>> star_graph(index_t n) {
    std::vector<Triple<double>> out;
    for (index_t i = 1; i < n; ++i) {
        out.push_back({0, i, 1.0});
        out.push_back({i, 0, 1.0});
    }
    return out;
}

}  // namespace dsg::graph
