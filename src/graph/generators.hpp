// Synthetic graph generators.
//
// R-MAT with the Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) is the
// paper's own synthetic workload (Fig. 8); Erdős–Rényi and the deterministic
// small graphs below serve tests and stand-ins for the real-world instances
// of Table I (bench/bench_common.hpp documents this substitution).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace dsg::graph {

using sparse::index_t;
using sparse::Triple;

/// Parameters of the recursive matrix model.
struct RmatParams {
    double a = 0.57;  ///< Graph500 defaults
    double b = 0.19;
    double c = 0.19;
    // d = 1 - a - b - c
};

/// Generates `edges` directed edges over n = 2^scale vertices; values are
/// uniform in (0, 1]. Deterministic in seed. Duplicates are possible, as in
/// the Graph500 generator.
std::vector<Triple<double>> rmat_edges(int scale, std::size_t edges,
                                       std::uint64_t seed,
                                       const RmatParams& params = {});

/// Generates `edges` uniformly random directed edges over n vertices
/// (Erdős–Rényi G(n, m) with replacement); values uniform in (0, 1].
std::vector<Triple<double>> erdos_renyi_edges(index_t n, std::size_t edges,
                                              std::uint64_t seed);

/// Adds the reverse of every edge: the paper reads all graphs as undirected,
/// inserting both (u, v) and (v, u).
std::vector<Triple<double>> symmetrize(std::vector<Triple<double>> edges);

/// Removes self loops and exact duplicate coordinates (keeps the first).
std::vector<Triple<double>> simplify(std::vector<Triple<double>> edges);

/// Deterministic test graphs.
std::vector<Triple<double>> path_graph(index_t n);      ///< i -> i+1
std::vector<Triple<double>> cycle_graph(index_t n);     ///< i -> (i+1) mod n
std::vector<Triple<double>> complete_graph(index_t n);  ///< all i != j
std::vector<Triple<double>> star_graph(index_t n);      ///< 0 <-> i

}  // namespace dsg::graph
