#include "graph/graph_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dsg::graph {

std::vector<Triple<double>> read_edge_list(std::istream& in, index_t& n_out) {
    std::vector<Triple<double>> edges;
    n_out = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%') continue;
        std::istringstream ls(line);
        index_t u = 0;
        index_t v = 0;
        if (!(ls >> u >> v)) continue;
        double w = 1.0;
        ls >> w;
        edges.push_back({u, v, w});
        n_out = std::max({n_out, u + 1, v + 1});
    }
    return edges;
}

std::vector<Triple<double>> read_edge_list_file(const std::string& path,
                                                index_t& n_out) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open edge list: " + path);
    return read_edge_list(in, n_out);
}

void write_edge_list(std::ostream& out,
                     const std::vector<Triple<double>>& edges) {
    for (const auto& t : edges)
        out << t.row << ' ' << t.col << ' ' << t.value << '\n';
}

}  // namespace dsg::graph
