// Plain-text edge-list I/O ("u v weight" per line, '#' comments), the format
// the SNAP datasets ship in. Used by examples to ingest external graphs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace dsg::graph {

using sparse::index_t;
using sparse::Triple;

/// Parses an edge list; a missing weight column defaults to 1.0. Lines
/// starting with '#' or '%' are skipped. Returns the edges and sets n_out to
/// 1 + the largest vertex id seen (0 for an empty stream).
std::vector<Triple<double>> read_edge_list(std::istream& in, index_t& n_out);

/// Reads an edge-list file; throws std::runtime_error when unreadable.
std::vector<Triple<double>> read_edge_list_file(const std::string& path,
                                                index_t& n_out);

/// Writes "row col value" lines.
void write_edge_list(std::ostream& out,
                     const std::vector<Triple<double>>& edges);

}  // namespace dsg::graph
