// Structured anomaly events, ring-buffered alongside the metrics registry.
//
// The watchdog (obs/watchdog.hpp) appends one Event per rule transition
// (fired / cleared); the MetricsExporter drains the ring incrementally each
// tick and appends one JSON line per event next to the metrics JSONL, so a
// dashboard tailing both files sees "what the numbers were" and "what the
// watchdog concluded" on the same timeline. The ring is bounded like the
// profiler's trace rings: wraparound keeps the newest events and counts the
// dropped, and consumers track their position with a monotone sequence
// number so a slow exporter never re-emits or misses a retained event.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsg::obs {

/// Severity of an anomaly event. `Info` is used for rule-clear transitions;
/// rules declare their own firing severity.
enum class Severity : int { Info = 0, Warning, Critical };

[[nodiscard]] constexpr std::string_view severity_name(Severity s) {
    switch (s) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Critical: return "critical";
    }
    return "?";
}

/// One structured anomaly event.
struct Event {
    std::int64_t ts_ms = 0;       ///< wall-clock ms since the Unix epoch
    Severity severity = Severity::Info;
    std::string rule;             ///< rule name, e.g. "snapshot-lag-ceiling"
    std::string metric;           ///< registry key (family prefix) evaluated
    double value = 0.0;           ///< observed value at the transition
    double threshold = 0.0;       ///< the rule's threshold
    std::string message;          ///< human-readable one-liner
    std::uint64_t seq = 0;        ///< assigned by EventLog::append, from 1
};

/// Renders one event as a single JSON line (no trailing newline). Schema
/// documented in docs/BENCHMARKS.md and validated by scripts/check-trace.py.
[[nodiscard]] inline std::string to_jsonl(const Event& e) {
    auto esc = [](const std::string& s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
        return out;
    };
    char num[64];
    std::string out = "{\"ts_ms\": " + std::to_string(e.ts_ms);
    out += ", \"seq\": " + std::to_string(e.seq);
    out += ", \"severity\": \"";
    out += severity_name(e.severity);
    out += "\", \"rule\": \"" + esc(e.rule) + "\"";
    out += ", \"metric\": \"" + esc(e.metric) + "\"";
    std::snprintf(num, sizeof num, "%.6g", e.value);
    out += ", \"value\": ";
    out += num;
    std::snprintf(num, sizeof num, "%.6g", e.threshold);
    out += ", \"threshold\": ";
    out += num;
    out += ", \"message\": \"" + esc(e.message) + "\"}";
    return out;
}

/// Bounded, mutex-guarded event ring. Appends assign monotone sequence
/// numbers; collect_since() lets each consumer drain incrementally.
class EventLog {
public:
    explicit EventLog(std::size_t capacity = 1024)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    /// Appends `e` (seq and, when zero, ts_ms are filled in) and returns the
    /// assigned sequence number. Oldest events are evicted past capacity.
    std::uint64_t append(Event e) {
        if (e.ts_ms == 0)
            e.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
        std::lock_guard lock(mx_);
        e.seq = ++last_seq_;
        events_.push_back(std::move(e));
        if (events_.size() > capacity_) {
            events_.pop_front();
            ++dropped_;
        }
        return last_seq_;
    }

    /// Copies every retained event with seq > cursor into `out` (in seq
    /// order) and returns the new cursor (the highest seq seen).
    std::uint64_t collect_since(std::uint64_t cursor,
                                std::vector<Event>& out) const {
        std::lock_guard lock(mx_);
        for (const Event& e : events_)
            if (e.seq > cursor) out.push_back(e);
        return std::max(cursor, last_seq_);
    }

    /// All retained events, oldest first.
    [[nodiscard]] std::vector<Event> snapshot() const {
        std::lock_guard lock(mx_);
        return {events_.begin(), events_.end()};
    }

    /// Events ever appended / evicted before being collected by anyone.
    [[nodiscard]] std::uint64_t total() const {
        std::lock_guard lock(mx_);
        return last_seq_;
    }
    [[nodiscard]] std::uint64_t dropped() const {
        std::lock_guard lock(mx_);
        return dropped_;
    }

    /// Empties the ring (sequence numbers keep advancing).
    void clear() {
        std::lock_guard lock(mx_);
        events_.clear();
    }

    /// Process-wide instance wired by default into the watchdog and the
    /// exporter, mirroring obs::registry().
    static EventLog& global() {
        static EventLog log;
        return log;
    }

private:
    mutable std::mutex mx_;
    std::deque<Event> events_;
    std::size_t capacity_;
    std::uint64_t last_seq_ = 0;
    std::uint64_t dropped_ = 0;
};

}  // namespace dsg::obs
