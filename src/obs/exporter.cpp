#include "obs/exporter.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>

namespace dsg::obs {

namespace {

// Shared stop signalling: exporters are few and short-lived, so one global
// CV (woken broadcast on any stop) keeps the class trivially movable-free.
std::mutex g_stop_mx;
std::condition_variable g_stop_cv;

}  // namespace

ExportFormat format_for_path(const std::string& path) {
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    if (ext == ".prom" || ext == ".prometheus" || ext == ".txt")
        return ExportFormat::Prometheus;
    return ExportFormat::Jsonl;
}

MetricsExporter::MetricsExporter(Registry& reg, Config cfg)
    : reg_(reg), cfg_(std::move(cfg)) {
    if (!cfg_.events_path.empty() && cfg_.events == nullptr)
        cfg_.events = &EventLog::global();
    if (cfg_.path.empty() && cfg_.events_path.empty()) return;
    // Truncate up front so every run's file starts fresh in both formats.
    if (!cfg_.path.empty())
        if (std::FILE* f = std::fopen(cfg_.path.c_str(), "w")) std::fclose(f);
    if (!cfg_.events_path.empty())
        if (std::FILE* f = std::fopen(cfg_.events_path.c_str(), "w"))
            std::fclose(f);
    thread_ = std::thread([this] { run(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::stop() {
    {
        std::lock_guard lock(g_stop_mx);
        if (stop_.exchange(true)) return;  // the first stop() owns the join
    }
    g_stop_cv.notify_all();
    if (thread_.joinable()) thread_.join();
    if (!cfg_.path.empty() || !cfg_.events_path.empty())
        write_snapshot();  // the final record
}

void MetricsExporter::write_now() {
    if (!cfg_.path.empty() || !cfg_.events_path.empty()) write_snapshot();
}

void MetricsExporter::run() {
    const auto interval = std::chrono::milliseconds(
        cfg_.interval_ms > 0 ? cfg_.interval_ms : 1000);
    std::unique_lock lock(g_stop_mx);
    while (!stop_.load(std::memory_order_relaxed)) {
        g_stop_cv.wait_for(lock, interval, [this] {
            return stop_.load(std::memory_order_relaxed);
        });
        if (stop_.load(std::memory_order_relaxed)) break;
        lock.unlock();
        write_snapshot();
        lock.lock();
    }
}

void MetricsExporter::write_snapshot() {
    if (cfg_.on_snapshot) cfg_.on_snapshot();
    const MetricsSnapshot snap = reg_.snapshot();
    // Serialize concurrent writers (exporter thread vs stop()'s final write).
    std::lock_guard lock(write_mx_);
    if (!cfg_.events_path.empty() && cfg_.events != nullptr) {
        std::vector<Event> fresh;
        events_cursor_ = cfg_.events->collect_since(events_cursor_, fresh);
        if (!fresh.empty()) {
            if (std::FILE* f = std::fopen(cfg_.events_path.c_str(), "a")) {
                for (const Event& e : fresh) {
                    const std::string line = to_jsonl(e) + "\n";
                    std::fwrite(line.data(), 1, line.size(), f);
                }
                std::fflush(f);
                std::fclose(f);
            }
        }
    }
    if (cfg_.path.empty()) {
        ticks_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (cfg_.format == ExportFormat::Jsonl) {
        // Append + flush per tick: a SIGKILL between ticks leaves every
        // previously written line complete on disk.
        if (std::FILE* f = std::fopen(cfg_.path.c_str(), "a")) {
            const std::string line = snap.to_jsonl();
            std::fwrite(line.data(), 1, line.size(), f);
            std::fflush(f);
            std::fclose(f);
        }
    } else {
        if (std::FILE* f = std::fopen(cfg_.path.c_str(), "w")) {
            const std::string text = snap.to_prometheus();
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
    }
    ticks_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dsg::obs
