// Periodic metrics exporter: a background thread snapshotting a Registry at
// a fixed interval and writing the rendering to a file.
//
// Two formats:
//  - Jsonl: one snapshot per line, appended and flushed every tick so a
//    SIGKILL mid-run still leaves a parseable final line on disk (the
//    crash-recovery CI drill asserts exactly that);
//  - Prometheus: text exposition, whole file rewritten each tick (the shape
//    a node_exporter-style textfile collector scrapes).
//
// An optional on_snapshot callback runs on the exporter thread just before
// each snapshot is taken — the hook subsystems use to push stats the
// registry can't pull itself (see obs/mirrors.hpp for par::CommStats).
//
// With events_path set, every tick additionally drains the new entries of
// an obs::EventLog (the watchdog's output) and appends them as JSON lines
// to that file — same append+flush durability contract as the metrics
// stream, so anomaly events and the metrics they were derived from land on
// disk together.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace dsg::obs {

enum class ExportFormat { Jsonl, Prometheus };

/// Owns the export thread; stop() (or destruction) joins it after writing
/// one final snapshot, so short runs always produce at least one record.
class MetricsExporter {
public:
    struct Config {
        std::string path;                  ///< output file (empty = disabled)
        std::int64_t interval_ms = 1000;   ///< tick period
        ExportFormat format = ExportFormat::Jsonl;
        /// Runs on the exporter thread immediately before every snapshot.
        std::function<void()> on_snapshot;
        /// EventLog JSONL sidecar (empty = disabled). New events of
        /// `events` (default: EventLog::global()) are appended every tick.
        std::string events_path;
        EventLog* events = nullptr;
    };

    explicit MetricsExporter(Registry& reg, Config cfg);
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter&) = delete;
    MetricsExporter& operator=(const MetricsExporter&) = delete;

    /// Writes the final snapshot and joins the thread. Idempotent.
    void stop();

    /// Snapshots and writes immediately, on the calling thread.
    void write_now();

    [[nodiscard]] std::uint64_t ticks() const {
        return ticks_.load(std::memory_order_relaxed);
    }

private:
    void run();
    void write_snapshot();

    Registry& reg_;
    Config cfg_;
    std::uint64_t events_cursor_ = 0;  ///< guarded by write_mx_
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> ticks_{0};
    std::mutex write_mx_;
    std::thread thread_;
};

/// Infers the format from the file name: .prom / .prometheus / .txt write
/// Prometheus text exposition, everything else JSONL.
[[nodiscard]] ExportFormat format_for_path(const std::string& path);

}  // namespace dsg::obs
