// Cross-rank metric federation: every rank serializes a MetricsSnapshot
// through par::Buffer, the grid allgathers the buffers, and each rank
// merges the per-rank views into one cluster snapshot where
//
//  - every instrument key gains a `rank` label (inserted in sorted label
//    position, matching the registry's render order), and
//  - every counter/gauge family additionally grows three derived skew
//    gauges — `<family>_rank_max`, `<family>_rank_min` and
//    `<family>_rank_imbalance` (max / mean across ranks; 1.0 == perfectly
//    balanced) — the load-skew diagnostic rank 0's /metrics endpoint and
//    the `rank-load-imbalance` watchdog rule consume.
//
// Layering: obs already depends on par (obs/mirrors.hpp), never the other
// way around — federate() takes any par::Comm and any snapshot, so callers
// decide what a "per-rank view" is (the streaming example maintains one
// small private Registry per rank and federates that, leaving the
// process-wide registry and its file exporters untouched).
//
// federate() is a COLLECTIVE: every rank of the communicator must call it
// in the same slot of its collective sequence, exactly like comm.allgather.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "par/buffer.hpp"
#include "par/comm.hpp"

namespace dsg::obs {

/// Wire-format tag guarding snapshot frames against cross-version decode.
inline constexpr std::uint32_t kSnapshotWireMagic = 0x4d534e31;  // "MSN1"

namespace detail {

inline void write_string(par::BufferWriter& w, const std::string& s) {
    w.write_span(std::span<const char>(s.data(), s.size()));
}

inline std::string read_string(par::BufferReader& r) {
    const std::vector<char> chars = r.read_vector<char>();
    return {chars.begin(), chars.end()};
}

/// Splits a registry key into its name and the braced label block
/// ("name{a=b}" -> {"name", "a=b"}; "name" -> {"name", ""}).
inline std::pair<std::string, std::string> split_key(const std::string& key) {
    const auto brace = key.find('{');
    if (brace == std::string::npos) return {key, ""};
    return {key.substr(0, brace),
            key.substr(brace + 1, key.size() - brace - 2)};
}

}  // namespace detail

/// Packs a snapshot into a par::Buffer (the federation wire frame).
inline par::Buffer serialize_snapshot(const MetricsSnapshot& snap) {
    par::Buffer buf;
    par::BufferWriter w(buf);
    w.write(kSnapshotWireMagic);
    w.write(snap.ts_ms);
    w.write(static_cast<std::uint64_t>(snap.counters.size()));
    for (const auto& [key, v] : snap.counters) {
        detail::write_string(w, key);
        w.write(v);
    }
    w.write(static_cast<std::uint64_t>(snap.gauges.size()));
    for (const auto& [key, v] : snap.gauges) {
        detail::write_string(w, key);
        w.write(v);
    }
    w.write(static_cast<std::uint64_t>(snap.histograms.size()));
    for (const auto& [key, h] : snap.histograms) {
        detail::write_string(w, key);
        w.write(h);  // HistogramSummary is trivially copyable
    }
    return buf;
}

/// Unpacks a frame written by serialize_snapshot(). Throws
/// par::TruncatedBufferError on truncation and std::runtime_error on a
/// magic mismatch (a frame from an incompatible build).
inline MetricsSnapshot deserialize_snapshot(const par::Buffer& buf) {
    par::BufferReader r(buf);
    if (r.read<std::uint32_t>() != kSnapshotWireMagic)
        throw std::runtime_error(
            "deserialize_snapshot: bad wire magic (incompatible frame)");
    MetricsSnapshot snap;
    snap.ts_ms = r.read<std::int64_t>();
    const auto nc = r.read<std::uint64_t>();
    snap.counters.reserve(nc);
    for (std::uint64_t k = 0; k < nc; ++k) {
        std::string key = detail::read_string(r);
        const auto v = r.read<std::uint64_t>();
        snap.counters.emplace_back(std::move(key), v);
    }
    const auto ng = r.read<std::uint64_t>();
    snap.gauges.reserve(ng);
    for (std::uint64_t k = 0; k < ng; ++k) {
        std::string key = detail::read_string(r);
        const auto v = r.read<double>();
        snap.gauges.emplace_back(std::move(key), v);
    }
    const auto nh = r.read<std::uint64_t>();
    snap.histograms.reserve(nh);
    for (std::uint64_t k = 0; k < nh; ++k) {
        std::string key = detail::read_string(r);
        const auto h = r.read<HistogramSummary>();
        snap.histograms.emplace_back(std::move(key), h);
    }
    return snap;
}

/// Returns `key` with `label=value` inserted in sorted label position —
/// the same identity the registry itself would render. Existing `label`
/// keys are left untouched (first writer wins).
inline std::string with_label(const std::string& key,
                              const std::string& label,
                              const std::string& value) {
    auto [name, inner] = detail::split_key(key);
    std::vector<std::pair<std::string, std::string>> labels;
    std::size_t pos = 0;
    while (pos < inner.size()) {
        auto comma = inner.find(',', pos);
        if (comma == std::string::npos) comma = inner.size();
        const std::string pair = inner.substr(pos, comma - pos);
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            labels.emplace_back(pair, "");
        else
            labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        pos = comma + 1;
    }
    bool present = false;
    for (const auto& [k, v] : labels)
        if (k == label) present = true;
    if (!present) labels.emplace_back(label, value);
    std::sort(labels.begin(), labels.end());
    std::string out = name + '{';
    for (std::size_t k = 0; k < labels.size(); ++k) {
        if (k > 0) out += ',';
        out += labels[k].first;
        out += '=';
        out += labels[k].second;
    }
    out += '}';
    return out;
}

/// Merges per-rank snapshots (indexed by rank) into one cluster snapshot:
/// rank labels on every instrument, skew gauges per counter/gauge family,
/// plus a `cluster_ranks` gauge. Pure — the unit under test.
inline MetricsSnapshot merge_rank_snapshots(
    const std::vector<MetricsSnapshot>& per_rank) {
    MetricsSnapshot out;
    // Values per original key, across ranks, for the skew derivation.
    std::map<std::string, std::vector<double>> counter_family;
    std::map<std::string, std::vector<double>> gauge_family;
    for (std::size_t rank = 0; rank < per_rank.size(); ++rank) {
        const MetricsSnapshot& snap = per_rank[rank];
        out.ts_ms = std::max(out.ts_ms, snap.ts_ms);
        const std::string r = std::to_string(rank);
        for (const auto& [key, v] : snap.counters) {
            out.counters.emplace_back(with_label(key, "rank", r), v);
            counter_family[key].push_back(static_cast<double>(v));
        }
        for (const auto& [key, v] : snap.gauges) {
            out.gauges.emplace_back(with_label(key, "rank", r), v);
            gauge_family[key].push_back(v);
        }
        for (const auto& [key, h] : snap.histograms)
            out.histograms.emplace_back(with_label(key, "rank", r), h);
    }
    auto emit_skew = [&](const std::map<std::string, std::vector<double>>& fam) {
        for (const auto& [key, values] : fam) {
            const auto [name, inner] = detail::split_key(key);
            const std::string suffix = inner.empty() ? "" : '{' + inner + '}';
            const double mx = *std::max_element(values.begin(), values.end());
            const double mn = *std::min_element(values.begin(), values.end());
            double sum = 0.0;
            for (const double v : values) sum += v;
            const double mean = sum / static_cast<double>(values.size());
            // max/mean: 1.0 == balanced. A family that is zero everywhere
            // (mean == 0) is balanced by definition, not infinitely skewed.
            const double imb = mean > 0.0 ? mx / mean : 1.0;
            out.gauges.emplace_back(name + "_rank_max" + suffix, mx);
            out.gauges.emplace_back(name + "_rank_min" + suffix, mn);
            out.gauges.emplace_back(name + "_rank_imbalance" + suffix, imb);
        }
    };
    emit_skew(counter_family);
    emit_skew(gauge_family);
    out.gauges.emplace_back("cluster_ranks",
                            static_cast<double>(per_rank.size()));
    auto by_key = [](const auto& a, const auto& b) {
        return a.first < b.first;
    };
    std::sort(out.counters.begin(), out.counters.end(), by_key);
    std::sort(out.gauges.begin(), out.gauges.end(), by_key);
    std::sort(out.histograms.begin(), out.histograms.end(), by_key);
    return out;
}

/// COLLECTIVE. Allgathers `local` across the communicator and returns the
/// merged cluster snapshot (identical on every rank).
inline MetricsSnapshot federate(par::Comm& comm,
                                const MetricsSnapshot& local) {
    std::vector<par::Buffer> frames =
        comm.allgather(serialize_snapshot(local));
    std::vector<MetricsSnapshot> per_rank;
    per_rank.reserve(frames.size());
    for (const par::Buffer& f : frames)
        per_rank.push_back(deserialize_snapshot(f));
    return merge_rank_snapshots(per_rank);
}

}  // namespace dsg::obs
