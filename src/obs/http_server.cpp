#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dsg::obs {

namespace {

const char* status_text(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

void set_io_timeout(int fd, int timeout_ms) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes all of `data`, looping over short writes. MSG_NOSIGNAL: a peer
/// that closed early yields EPIPE instead of killing the process.
bool send_all(int fd, const char* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// `head_only` (a HEAD request) advertises the Content-Length the GET
/// would carry but sends no body.
void write_response(int fd, const HttpResponse& resp,
                    bool head_only = false) {
    std::string head = "HTTP/1.1 " + std::to_string(resp.status) + ' ' +
                       status_text(resp.status) + "\r\n";
    head += "Content-Type: " + resp.content_type + "\r\n";
    head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    head += "Connection: close\r\n\r\n";
    if (send_all(fd, head.data(), head.size()) && !head_only)
        send_all(fd, resp.body.data(), resp.body.size());
}

/// Reads until the end-of-headers blank line, `limit` bytes, or an error.
/// Returns -1 on socket error/timeout, 0 when the peer closed before the
/// headers completed, +1 on a complete header block.
int read_headers(int fd, std::size_t limit, std::string& raw) {
    char buf[2048];
    while (raw.size() < limit) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            return -1;  // timeout or hard error
        }
        if (n == 0) return 0;  // premature close
        raw.append(buf, static_cast<std::size_t>(n));
        if (raw.find("\r\n\r\n") != std::string::npos ||
            raw.find("\n\n") != std::string::npos)
            return 1;
    }
    return -2;  // over limit with no terminator
}

/// Parses "GET /path?k=v HTTP/1.1" into `req`. False on any malformation.
bool parse_request_line(const std::string& raw, HttpRequest& req) {
    const auto eol = raw.find("\r\n");
    if (eol == std::string::npos || eol == 0) return false;
    const std::string line = raw.substr(0, eol);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) return false;
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (req.method.empty() || target.empty() || target[0] != '/')
        return false;
    if (version.rfind("HTTP/1.", 0) != 0) return false;
    const auto qmark = target.find('?');
    req.path = target.substr(0, qmark);
    if (qmark != std::string::npos) {
        std::string qs = target.substr(qmark + 1);
        std::size_t pos = 0;
        while (pos <= qs.size()) {
            auto amp = qs.find('&', pos);
            if (amp == std::string::npos) amp = qs.size();
            const std::string pair = qs.substr(pos, amp - pos);
            if (!pair.empty()) {
                const auto eq = pair.find('=');
                if (eq == std::string::npos)
                    req.query.emplace_back(pair, "");
                else
                    req.query.emplace_back(pair.substr(0, eq),
                                           pair.substr(eq + 1));
            }
            pos = amp + 1;
        }
    }
    return true;
}

}  // namespace

void HttpServer::handle(std::string path, Handler fn) {
    handlers_[std::move(path)] = std::move(fn);
}

void HttpServer::start(const Config& cfg) {
    if (running()) throw std::runtime_error("HttpServer: already started");
    cfg_ = cfg;
    if (cfg_.workers == 0) cfg_.workers = 1;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("HttpServer: bad bind address " +
                                 cfg_.bind_address);
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(std::string("HttpServer: bind failed: ") +
                                 std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(std::string("HttpServer: listen failed: ") +
                                 std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    listen_fd_.store(fd, std::memory_order_release);

    {
        std::lock_guard lock(mx_);
        stopping_ = false;
    }
    workers_.reserve(cfg_.workers);
    for (std::size_t k = 0; k < cfg_.workers; ++k)
        workers_.emplace_back([this] { worker_loop(); });
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
    const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (lfd < 0) return;  // never started, or already stopped
    // Wake the blocking accept() and refuse new connections.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
    if (accept_thread_.joinable()) accept_thread_.join();
    // Workers drain every already-accepted connection before exiting: the
    // stopping_ flag only ends a worker's loop once pending_ is empty, so a
    // request in flight at stop() still gets its full response.
    {
        std::lock_guard lock(mx_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        if (t.joinable()) t.join();
    workers_.clear();
    port_ = 0;
}

std::uint64_t HttpServer::served() const {
    std::lock_guard lock(mx_);
    return served_;
}

std::uint64_t HttpServer::rejected() const {
    std::lock_guard lock(mx_);
    return rejected_;
}

void HttpServer::accept_loop() {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    while (true) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // listener closed by stop(), or hard error
        }
        set_io_timeout(fd, cfg_.io_timeout_ms);
        bool queued = false;
        {
            std::lock_guard lock(mx_);
            if (pending_.size() < cfg_.max_pending) {
                pending_.push_back(fd);
                queued = true;
            }
        }
        if (queued) {
            cv_.notify_one();
        } else {
            // Queue full: best-effort 503 and close, never block accept.
            write_response(fd, HttpResponse{503, "text/plain; charset=utf-8",
                                            "overloaded\n"});
            ::close(fd);
        }
    }
}

void HttpServer::worker_loop() {
    while (true) {
        int fd = -1;
        {
            std::unique_lock lock(mx_);
            cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
            if (pending_.empty()) return;  // stopping_ && drained
            fd = pending_.front();
            pending_.pop_front();
        }
        serve_connection(fd);
        ::close(fd);
    }
}

void HttpServer::serve_connection(int fd) {
    std::string raw;
    raw.reserve(1024);
    const int got = read_headers(fd, cfg_.max_request_bytes, raw);
    auto reject = [&](int status, const char* body) {
        write_response(fd,
                       HttpResponse{status, "text/plain; charset=utf-8", body});
        std::lock_guard lock(mx_);
        ++rejected_;
    };
    if (got == 0) {
        // Peer closed before completing the headers; nothing to answer.
        std::lock_guard lock(mx_);
        ++rejected_;
        return;
    }
    if (got < 0) {
        reject(got == -2 ? 431 : 408,
               got == -2 ? "headers too large\n" : "timeout\n");
        return;
    }
    HttpRequest req;
    if (!parse_request_line(raw, req)) {
        reject(400, "malformed request\n");
        return;
    }
    if (req.method != "GET" && req.method != "HEAD") {
        reject(405, "only GET is supported\n");
        return;
    }
    const auto it = handlers_.find(req.path);
    HttpResponse resp;
    if (it == handlers_.end()) {
        resp = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
        try {
            resp = it->second(req);
        } catch (const std::exception& e) {
            resp = HttpResponse{500, "text/plain; charset=utf-8",
                                std::string("handler error: ") + e.what() +
                                    "\n"};
        }
    }
    write_response(fd, resp, /*head_only=*/req.method == "HEAD");
    std::lock_guard lock(mx_);
    ++served_;
}

std::string http_fetch(std::uint16_t port, const std::string& target,
                       int timeout_ms) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    set_io_timeout(fd, timeout_ms);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req = "GET " + target +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                            "Connection: close\r\n\r\n";
    if (!send_all(fd, req.data(), req.size())) {
        ::close(fd);
        return "";
    }
    std::string out;
    char buf[4096];
    while (true) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

}  // namespace dsg::obs
