// Minimal dependency-free HTTP/1.1 server — the live-introspection plane's
// transport and the repo's first real socket code.
//
// Shape: one background accept thread pushes connections onto a bounded
// queue drained by a small worker pool; each worker reads one request
// (bounded header size, SO_RCVTIMEO against stalled peers), dispatches to
// an exact-path GET handler, writes one response and closes (Connection:
// close — scrapers reconnect per poll, which keeps the server stateless).
// Port 0 binds an ephemeral port (read back via port()) so tests and CI
// never collide. The listener/accept/drain loop is deliberately free of
// anything HTTP-specific except parse_request/write_response — it is the
// seed for the ROADMAP-item-3 TCP comm backend's connection handling.
//
// stop() is idempotent and *ordered*: it closes the listener, serves every
// connection already accepted, joins the threads, and only then returns —
// so callers may tear down the data structures their handlers capture
// (registry callback gauges, snapshot stores) immediately after stop()
// returns. tests/obs/test_introspection.cpp pins that ordering.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dsg::obs {

/// One parsed request. Only the request line is interpreted: method, path
/// ("/metrics"), and the query string split into key=value pairs. Header
/// fields are read (and bounded) but not retained — no handler needs them.
struct HttpRequest {
    std::string method;
    std::string path;
    std::vector<std::pair<std::string, std::string>> query;

    /// Value of the first query parameter named `key`, or `fallback`.
    [[nodiscard]] std::string_view param(std::string_view key,
                                         std::string_view fallback = "") const {
        for (const auto& [k, v] : query)
            if (k == key) return v;
        return fallback;
    }
};

/// One response. Handlers fill status/content_type/body; the server owns
/// framing (Content-Length, Connection: close).
struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

class HttpServer {
public:
    struct Config {
        std::string bind_address = "127.0.0.1";
        std::uint16_t port = 0;       ///< 0 = ephemeral (read back via port())
        std::size_t workers = 2;      ///< connection-handling threads
        std::size_t max_pending = 64; ///< accepted-fd queue bound
        std::size_t max_request_bytes = 16 * 1024;  ///< request-line + headers
        int io_timeout_ms = 5000;     ///< per-socket recv/send timeout
    };

    using Handler = std::function<HttpResponse(const HttpRequest&)>;

    HttpServer() = default;
    ~HttpServer() { stop(); }
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Registers a handler for an exact path (before start()).
    void handle(std::string path, Handler fn);

    /// Binds, listens and spawns the accept/worker threads. Throws
    /// std::runtime_error when the bind/listen fails (port in use).
    void start(const Config& cfg);

    /// Drains accepted connections, joins all threads. Idempotent.
    void stop();

    [[nodiscard]] bool running() const {
        return listen_fd_.load(std::memory_order_acquire) >= 0;
    }
    /// The bound port (after start(); meaningful with cfg.port == 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Requests fully served (any status). For tests.
    [[nodiscard]] std::uint64_t served() const;
    /// Requests rejected at the parse stage (400/405/408/431). For tests.
    [[nodiscard]] std::uint64_t rejected() const;

private:
    void accept_loop();
    void worker_loop();
    void serve_connection(int fd);

    Config cfg_;
    std::map<std::string, Handler> handlers_;

    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;

    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    mutable std::mutex mx_;
    std::condition_variable cv_;
    std::deque<int> pending_;      ///< accepted fds awaiting a worker
    bool stopping_ = false;

    std::uint64_t served_ = 0;     ///< guarded by mx_
    std::uint64_t rejected_ = 0;   ///< guarded by mx_
};

/// Blocking loopback GET: connects to 127.0.0.1:`port`, requests `target`
/// and returns the raw response (status line + headers + body), or an empty
/// string on any socket error. A deliberately tiny client for tests and the
/// bench scrape gate — not a general HTTP client.
[[nodiscard]] std::string http_fetch(std::uint16_t port,
                                     const std::string& target,
                                     int timeout_ms = 5000);

}  // namespace dsg::obs
