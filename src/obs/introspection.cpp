#include "obs/introspection.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace dsg::obs {

namespace {

constexpr const char* kPromContentType = "text/plain; version=0.0.4";
constexpr const char* kJsonContentType = "application/json";

}  // namespace

void IntrospectionServer::start(Config cfg) {
    cfg_ = std::move(cfg);
    if (cfg_.registry == nullptr) cfg_.registry = &Registry::global();
    if (cfg_.events == nullptr) cfg_.events = &EventLog::global();
    ready_.store(cfg_.ready, std::memory_order_relaxed);
    {
        std::lock_guard lock(state_mx_);
        cursor_ = 0;
        rule_state_.clear();
    }

    http_.handle("/metrics", [this](const HttpRequest&) {
        return on_metrics();
    });
    http_.handle("/metrics.json", [this](const HttpRequest&) {
        return on_metrics_json();
    });
    http_.handle("/healthz", [](const HttpRequest&) {
        return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    http_.handle("/readyz", [this](const HttpRequest&) {
        return on_readyz();
    });
    http_.handle("/status", [this](const HttpRequest&) {
        return on_status();
    });
    http_.handle("/trace", [](const HttpRequest&) {
        return HttpResponse{200, kJsonContentType,
                            to_chrome_trace(par::Profiler::collect_trace())};
    });
    http_.handle("/events", [this](const HttpRequest& req) {
        return on_events(req);
    });
    http_.handle("/flight", [this](const HttpRequest&) {
        const std::string body =
            cfg_.flight_json ? cfg_.flight_json() : "{\"worst\": []}";
        return HttpResponse{200, kJsonContentType, body};
    });
    http_.start(cfg_.http);
}

void IntrospectionServer::stop() { http_.stop(); }

MetricsSnapshot IntrospectionServer::current_snapshot() {
    if (cfg_.metrics_provider) return cfg_.metrics_provider();
    return cfg_.registry->snapshot();
}

HttpResponse IntrospectionServer::on_metrics() {
    return HttpResponse{200, kPromContentType,
                        current_snapshot().to_prometheus()};
}

HttpResponse IntrospectionServer::on_metrics_json() {
    // to_jsonl() renders exactly one JSON object (newline-terminated).
    return HttpResponse{200, kJsonContentType, current_snapshot().to_jsonl()};
}

void IntrospectionServer::drain_events() {
    std::vector<Event> fresh;
    const std::uint64_t next = cfg_.events->collect_since(cursor_, fresh);
    cursor_ = next;
    for (const Event& e : fresh) {
        // A firing records the rule's severity; a clear (Severity::Info by
        // the watchdog's contract) resets it. Warnings never gate /readyz.
        rule_state_[e.rule] = e.severity;
    }
}

bool IntrospectionServer::ready() {
    if (!ready_.load(std::memory_order_relaxed)) return false;
    return critical_rules().empty();
}

std::vector<std::string> IntrospectionServer::critical_rules() {
    std::lock_guard lock(state_mx_);
    drain_events();
    std::vector<std::string> out;
    for (const auto& [rule, sev] : rule_state_)
        if (sev == Severity::Critical) out.push_back(rule);
    return out;
}

HttpResponse IntrospectionServer::on_readyz() {
    const std::vector<std::string> critical = critical_rules();
    const bool manual = ready_.load(std::memory_order_relaxed);
    if (manual && critical.empty())
        return HttpResponse{200, "text/plain; charset=utf-8", "ready\n"};
    std::string body = "not ready";
    if (!manual) body += ": startup/recovery in progress";
    for (const std::string& rule : critical) body += ": " + rule;
    body += '\n';
    return HttpResponse{503, "text/plain; charset=utf-8", std::move(body)};
}

HttpResponse IntrospectionServer::on_status() {
    const std::vector<std::string> critical = critical_rules();
    const bool manual = ready_.load(std::memory_order_relaxed);
    const bool is_ready = manual && critical.empty();
    std::string body = "{\"ready\": ";
    body += is_ready ? "true" : "false";
    body += ", \"manual_gate\": ";
    body += manual ? "true" : "false";
    body += ", \"critical_rules\": [";
    for (std::size_t k = 0; k < critical.size(); ++k) {
        if (k > 0) body += ", ";
        body += '"' + critical[k] + '"';
    }
    body += "], \"events_total\": " + std::to_string(cfg_.events->total());
    body += ", \"requests_served\": " + std::to_string(http_.served());
    if (cfg_.status_fields) {
        const std::string extra = cfg_.status_fields();
        if (!extra.empty()) body += ", " + extra;
    }
    body += "}\n";
    return HttpResponse{200, kJsonContentType, std::move(body)};
}

HttpResponse IntrospectionServer::on_events(const HttpRequest& req) {
    std::uint64_t since = 0;
    const std::string_view raw = req.param("since");
    if (!raw.empty()) {
        std::uint64_t parsed = 0;
        for (const char c : raw) {
            if (c < '0' || c > '9')
                return HttpResponse{400, "text/plain; charset=utf-8",
                                    "bad ?since cursor\n"};
            parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
        }
        since = parsed;
    }
    std::vector<Event> events;
    cfg_.events->collect_since(since, events);
    std::string body;
    for (const Event& e : events) {
        body += to_jsonl(e);
        body += '\n';
    }
    return HttpResponse{200, "application/x-ndjson", std::move(body)};
}

}  // namespace dsg::obs
