// The live introspection plane: an HttpServer wired to the observability
// stack, serving the running system's state over loopback HTTP.
//
//   GET /metrics       Prometheus text exposition (Content-Type:
//                      text/plain; version=0.0.4) of the metrics provider —
//                      by default the bound registry, on rank 0 typically
//                      the federated cluster snapshot (obs/federate.hpp)
//   GET /metrics.json  the same snapshot as one JSON object
//   GET /healthz       liveness — 200 "ok" while the server thread answers
//   GET /readyz        readiness — 503 while any watchdog rule's latest
//                      EventLog transition is a Critical firing, or while
//                      the manual gate is held down (recovery replay);
//                      200 otherwise
//   GET /status        one JSON object: readiness, critical rules, served-
//                      request counters, plus caller-supplied fields
//                      (engine version, snapshot-store population, serve
//                      admission counters)
//   GET /trace         Chrome trace JSON of the current profiler rings
//   GET /events        event-log tail as JSONL; ?since=SEQ returns only
//                      events with seq > SEQ (the incremental cursor)
//   GET /flight        flight-recorder worst-K JSON (caller-supplied)
//
// Readiness is DERIVED FROM THE EVENT LOG, not from a Watchdog pointer:
// any number of watchdogs (the process-wide one, the federated one on
// rank 0) append transitions into one EventLog, and /readyz folds them by
// rule — last firing at Critical marks the rule down until its clear
// arrives. That keeps the server decoupled from who evaluates the rules.
//
// stop() is ordered and idempotent: it returns only after every in-flight
// request has been answered (HttpServer::stop drains), so callers may tear
// down registries/callback gauges captured by the providers right after.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"

namespace dsg::obs {

class IntrospectionServer {
public:
    struct Config {
        HttpServer::Config http;          ///< bind/port/worker knobs
        Registry* registry = nullptr;     ///< nullptr = Registry::global()
        EventLog* events = nullptr;       ///< nullptr = EventLog::global()
        /// Snapshot served by /metrics and /metrics.json. Defaults to
        /// `registry->snapshot()`; rank 0 installs the federated view here.
        std::function<MetricsSnapshot()> metrics_provider;
        /// Extra /status fields as a `"key": value, ...` JSON fragment
        /// (no braces, no trailing comma). Optional.
        std::function<std::string()> status_fields;
        /// Body for /flight. Defaults to an empty worst-K list.
        std::function<std::string()> flight_json;
        /// Initial manual readiness gate (false while recovery replays).
        bool ready = true;
    };

    IntrospectionServer() = default;
    ~IntrospectionServer() { stop(); }
    IntrospectionServer(const IntrospectionServer&) = delete;
    IntrospectionServer& operator=(const IntrospectionServer&) = delete;

    void start(Config cfg);
    void stop();  ///< drains in-flight requests; idempotent

    [[nodiscard]] bool running() const { return http_.running(); }
    [[nodiscard]] std::uint16_t port() const { return http_.port(); }

    /// Manual readiness gate, AND-ed with the watchdog-derived state.
    void set_ready(bool ready) {
        ready_.store(ready, std::memory_order_relaxed);
    }

    /// Current readiness (manual gate && no rule critically firing).
    [[nodiscard]] bool ready();
    /// Rules whose latest event-log transition is a Critical firing.
    [[nodiscard]] std::vector<std::string> critical_rules();

private:
    HttpResponse on_metrics();
    HttpResponse on_metrics_json();
    HttpResponse on_readyz();
    HttpResponse on_status();
    HttpResponse on_events(const HttpRequest& req);
    MetricsSnapshot current_snapshot();
    void drain_events();

    Config cfg_;
    HttpServer http_;
    std::atomic<bool> ready_{true};

    // Watchdog-rule fold over the event log (guarded by state_mx_).
    std::mutex state_mx_;
    std::uint64_t cursor_ = 0;
    std::map<std::string, Severity> rule_state_;  ///< rule -> last severity
};

}  // namespace dsg::obs
