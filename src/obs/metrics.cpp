#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace dsg::obs {

namespace {

/// Round-robin shard assignment: consecutive recording threads take
/// consecutive shards, so up to kShards threads never contend at all.
std::atomic<std::size_t> g_next_shard{0};

std::string render_key(std::string_view name, const Labels& labels) {
    std::string key(name);
    if (!labels.empty()) {
        Labels sorted = labels;
        std::sort(sorted.begin(), sorted.end());
        key += '{';
        for (std::size_t k = 0; k < sorted.size(); ++k) {
            if (k > 0) key += ',';
            key += sorted[k].first;
            key += '=';
            key += sorted[k].second;
        }
        key += '}';
    }
    return key;
}

void append_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
}

void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
}

void append_hist_json(std::string& out, const HistogramSummary& h) {
    out += "{\"count\": " + std::to_string(h.count) + ", \"mean\": ";
    append_number(out, h.mean);
    out += ", \"p50\": ";
    append_number(out, h.p50);
    out += ", \"p90\": ";
    append_number(out, h.p90);
    out += ", \"p99\": ";
    append_number(out, h.p99);
    out += ", \"p999\": ";
    append_number(out, h.p999);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += "}";
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote and newline must be rendered as \\, \" and \n
/// inside the quoted value.
std::string prom_escape(std::string_view value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

/// Splits "name{k=v,k2=v2}" into the Prometheus-safe name and rendered
/// label pairs 'k="v",k2="v2"' (values escaped per the exposition format).
std::pair<std::string, std::string> prom_parts(const std::string& key) {
    const auto brace = key.find('{');
    if (brace == std::string::npos) return {key, ""};
    std::string name = key.substr(0, brace);
    std::string inner = key.substr(brace + 1, key.size() - brace - 2);
    std::string rendered;
    std::size_t pos = 0;
    while (pos < inner.size()) {
        auto comma = inner.find(',', pos);
        if (comma == std::string::npos) comma = inner.size();
        const std::string pair = inner.substr(pos, comma - pos);
        const auto eq = pair.find('=');
        if (!rendered.empty()) rendered += ',';
        if (eq == std::string::npos) {
            rendered += pair + "=\"\"";
        } else {
            rendered += pair.substr(0, eq) + "=\"" +
                        prom_escape(std::string_view(pair).substr(eq + 1)) +
                        "\"";
        }
        pos = comma + 1;
    }
    return {std::move(name), std::move(rendered)};
}

void prom_line(std::string& out, const std::string& name,
               const std::string& labels, const char* extra_label,
               double value) {
    out += name;
    if (!labels.empty() || extra_label != nullptr) {
        out += '{';
        out += labels;
        if (extra_label != nullptr) {
            if (!labels.empty()) out += ',';
            out += extra_label;
        }
        out += '}';
    }
    out += ' ';
    append_number(out, value);
    out += '\n';
}

/// One-line HELP text per known metric family; generic fallback otherwise.
/// HELP is free text — the scrape contract only requires the line to exist
/// once per family (scripts/check-endpoints.py validates that).
std::string prom_help(const std::string& name) {
    struct Entry {
        const char* name;
        const char* help;
    };
    static constexpr Entry kKnown[] = {
        {"stream_queue_depth", "per-rank update-queue occupancy"},
        {"stream_backlog", "per-rank updates admitted but not yet applied"},
        {"stream_epoch_drain_ns", "per-epoch queue-drain latency"},
        {"stream_epoch_apply_ns", "per-epoch delta-apply latency"},
        {"stream_queue_blocked_ns", "producer time blocked on a full queue"},
        {"serve_query_ns", "query service latency by class"},
        {"serve_query_shed", "queries shed by admission control"},
        {"serve_snapshot_lag", "published-behind-applied version lag"},
        {"persist_wal_fsync_ns", "WAL fsync latency"},
        {"cluster_ranks", "ranks contributing to the federated snapshot"},
    };
    for (const Entry& e : kKnown)
        if (name == e.name) return e.help;
    if (name.size() > 15 &&
        name.compare(name.size() - 15, 15, "_rank_imbalance") == 0)
        return "max/mean skew of " + name.substr(0, name.size() - 15) +
               " across ranks (1 = balanced)";
    if (name.size() > 9 && name.compare(name.size() - 9, 9, "_rank_max") == 0)
        return "max of " + name.substr(0, name.size() - 9) + " across ranks";
    if (name.size() > 9 && name.compare(name.size() - 9, 9, "_rank_min") == 0)
        return "min of " + name.substr(0, name.size() - 9) + " across ranks";
    return "dsg metric " + name;
}

/// Emits the per-family "# HELP" / "# TYPE" header once: tracks the last
/// family emitted (entries arrive sorted by key, so one family's labelled
/// instances are adjacent).
void prom_family_header(std::string& out, std::string& last,
                        const std::string& name, const char* type) {
    if (name == last) return;
    last = name;
    out += "# HELP " + name + ' ' + prom_help(name) + '\n';
    out += "# TYPE " + name + ' ' + type + '\n';
}

/// True when the instrument's name part carries the _ns unit suffix (its
/// labels, if any, start at '{').
bool is_ns(const std::string& key) {
    const auto brace = key.find('{');
    const std::string_view name =
        brace == std::string::npos
            ? std::string_view(key)
            : std::string_view(key).substr(0, brace);
    return name.size() > 3 && name.substr(name.size() - 3) == "_ns";
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::shard_index() {
    thread_local const std::size_t idx =
        g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
}

Histogram::Reading Histogram::read() const {
    Reading r;
    // Buckets first, aggregates second: both only grow, so the bucket sum
    // can exceed the aggregate count read earlier — never undershoot it.
    // Reading in this order and RE-deriving count from the buckets keeps
    // count == sum(buckets) invariant for every reading.
    for (const Shard& s : shards_) {
        for (std::size_t b = 0; b < kBuckets; ++b)
            r.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
        r.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t b : r.buckets) r.count += b;
    return r;
}

double Histogram::Reading::quantile(double q) const {
    // Empty reading: 0.0 by contract (never NaN — count is re-derived from
    // the buckets, so count > 0 guarantees a bucket is occupied below).
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::max<double>(1.0, q * static_cast<double>(count) + 0.5));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cum += buckets[b];
        if (cum >= target) return static_cast<double>(bucket_upper(b));
    }
    return static_cast<double>(bucket_upper(kBuckets - 1));
}

HistogramSummary Histogram::Reading::summary() const {
    HistogramSummary s;
    s.count = count;
    s.mean = mean();
    s.p50 = quantile(0.50);
    s.p90 = quantile(0.90);
    s.p99 = quantile(0.99);
    s.p999 = quantile(0.999);
    for (std::size_t b = kBuckets; b-- > 0;) {
        if (buckets[b] > 0) {
            s.max = static_cast<double>(bucket_upper(b));
            break;
        }
    }
    return s;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(std::string_view name, const Labels& labels) {
    const std::string key = render_key(name, labels);
    std::lock_guard lock(mx_);
    auto& slot = counters_[key];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
    const std::string key = render_key(name, labels);
    std::lock_guard lock(mx_);
    auto& slot = gauges_[key];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
    const std::string key = render_key(name, labels);
    std::lock_guard lock(mx_);
    auto& slot = histograms_[key];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

void Registry::set_callback(std::string_view name, const Labels& labels,
                            std::function<double()> fn) {
    const std::string key = render_key(name, labels);
    std::lock_guard lock(mx_);
    callbacks_[key] = std::move(fn);
}

void Registry::remove_callback(std::string_view name, const Labels& labels) {
    const std::string key = render_key(name, labels);
    std::lock_guard lock(mx_);
    callbacks_.erase(key);
}

MetricsSnapshot Registry::snapshot() const {
    MetricsSnapshot snap;
    snap.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
    // Callbacks are copied out and evaluated OUTSIDE the registry lock — a
    // callback that itself touches the registry must not deadlock.
    std::vector<std::pair<std::string, std::function<double()>>> callbacks;
    {
        std::lock_guard lock(mx_);
        snap.counters.reserve(counters_.size());
        for (const auto& [key, c] : counters_)
            snap.counters.emplace_back(key, c->value());
        snap.gauges.reserve(gauges_.size() + callbacks_.size());
        for (const auto& [key, g] : gauges_)
            snap.gauges.emplace_back(key, static_cast<double>(g->value()));
        snap.histograms.reserve(histograms_.size());
        for (const auto& [key, h] : histograms_)
            snap.histograms.emplace_back(key, h->read().summary());
        callbacks.reserve(callbacks_.size());
        for (const auto& [key, fn] : callbacks_)
            callbacks.emplace_back(key, fn);
    }
    for (const auto& [key, fn] : callbacks)
        snap.gauges.emplace_back(key, fn());
    std::sort(snap.gauges.begin(), snap.gauges.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return snap;
}

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string MetricsSnapshot::to_json_object() const {
    std::string out = "{\"counters\": {";
    for (std::size_t k = 0; k < counters.size(); ++k) {
        if (k > 0) out += ", ";
        out += '"';
        append_escaped(out, counters[k].first);
        out += "\": " + std::to_string(counters[k].second);
    }
    out += "}, \"gauges\": {";
    for (std::size_t k = 0; k < gauges.size(); ++k) {
        if (k > 0) out += ", ";
        out += '"';
        append_escaped(out, gauges[k].first);
        out += "\": ";
        append_number(out, gauges[k].second);
    }
    out += "}, \"histograms\": {";
    for (std::size_t k = 0; k < histograms.size(); ++k) {
        if (k > 0) out += ", ";
        out += '"';
        append_escaped(out, histograms[k].first);
        out += "\": ";
        append_hist_json(out, histograms[k].second);
    }
    out += "}}";
    return out;
}

std::string MetricsSnapshot::to_jsonl() const {
    std::string out = "{\"ts_ms\": " + std::to_string(ts_ms) + ", ";
    const std::string body = to_json_object();
    out += body.substr(1);  // splice the timestamp into the object
    out += '\n';
    return out;
}

std::string MetricsSnapshot::to_prometheus() const {
    // The exposition-format contract (pinned by the round-trip test in
    // tests/obs/test_metrics.cpp and scripts/check-endpoints.py): exactly
    // one "# HELP"/"# TYPE" pair per family, every family's samples in one
    // contiguous group, histograms rendered as summaries (quantile lines +
    // _sum + _count) with the bucket-ceiling max as a separate _max gauge
    // family (summaries have no max series of their own).
    std::string out;
    std::string last;
    for (const auto& [key, value] : counters) {
        const auto [name, labels] = prom_parts(key);
        prom_family_header(out, last, name, "counter");
        prom_line(out, name, labels, nullptr, static_cast<double>(value));
    }
    last.clear();
    for (const auto& [key, value] : gauges) {
        const auto [name, labels] = prom_parts(key);
        prom_family_header(out, last, name, "gauge");
        prom_line(out, name, labels, nullptr, value);
    }
    last.clear();
    for (const auto& [key, h] : histograms) {
        const auto [name, labels] = prom_parts(key);
        prom_family_header(out, last, name, "summary");
        prom_line(out, name, labels, "quantile=\"0.5\"", h.p50);
        prom_line(out, name, labels, "quantile=\"0.9\"", h.p90);
        prom_line(out, name, labels, "quantile=\"0.99\"", h.p99);
        prom_line(out, name, labels, "quantile=\"0.999\"", h.p999);
        prom_line(out, name + "_sum", labels, nullptr,
                  h.mean * static_cast<double>(h.count));
        prom_line(out, name + "_count", labels, nullptr,
                  static_cast<double>(h.count));
    }
    last.clear();
    for (const auto& [key, h] : histograms) {
        const auto [name, labels] = prom_parts(key);
        prom_family_header(out, last, name + "_max", "gauge");
        prom_line(out, name + "_max", labels, nullptr, h.max);
    }
    return out;
}

std::string MetricsSnapshot::to_text() const {
    char buf[256];
    std::string out = "metrics snapshot";
    if (compiled_noop()) out += " (instruments compiled to no-ops)";
    out += ":\n";
    for (const auto& [key, value] : counters) {
        std::snprintf(buf, sizeof buf, "  %-44s %14llu\n", key.c_str(),
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    for (const auto& [key, value] : gauges) {
        std::snprintf(buf, sizeof buf, "  %-44s %14.6g\n", key.c_str(),
                      value);
        out += buf;
    }
    if (!histograms.empty()) {
        std::snprintf(buf, sizeof buf, "  %-44s %10s %10s %10s %10s %10s %10s\n",
                      "histogram", "count", "mean", "p50", "p99", "p999",
                      "max");
        out += buf;
    }
    for (const auto& [key, h] : histograms) {
        // Latency instruments (_ns) render in ms; everything else raw.
        const double f = is_ns(key) ? 1e-6 : 1.0;
        const char* unit = is_ns(key) ? " ms" : "";
        std::snprintf(buf, sizeof buf,
                      "  %-44s %10llu %9.3f%s %7.3f%s %7.3f%s %7.3f%s "
                      "%7.3f%s\n",
                      key.c_str(), static_cast<unsigned long long>(h.count),
                      h.mean * f, unit, h.p50 * f, unit, h.p99 * f, unit,
                      h.p999 * f, unit, h.max * f, unit);
        out += buf;
    }
    return out;
}

}  // namespace dsg::obs
