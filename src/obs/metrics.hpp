// Process-wide metrics registry: the one interface every layer of the slice
// reports through (docs/ARCHITECTURE.md, "The observability layer").
//
// Three instrument kinds, all cheap enough to stay on by default:
//
//  - Counter: monotone relaxed-atomic u64 (ops, bytes, sheds, hits);
//  - Gauge:   last-write-wins relaxed-atomic i64 (queue depth, snapshot lag,
//             live-snapshot population);
//  - Histogram: fixed-size log-bucketed latency distribution with
//             thread-striped mergeable shards and p50/p90/p99/p999 readout.
//             Values < 16 land in exact unit buckets; above that, buckets
//             keep 3 mantissa bits (8 sub-buckets per octave), bounding the
//             relative quantile error at 1/8. Recording is two or three
//             relaxed fetch_adds on the calling thread's shard — no locks,
//             no allocation, TSan-clean by construction.
//
// Discipline (same as par::Profiler): when the registry is disabled
// (obs::set_enabled(false)) every record path returns after a single
// relaxed load. Compiling with -DDSG_OBS_NOOP removes the record paths
// entirely — the build the overhead gate in bench_stream_throughput
// compares against.
//
// Instruments are named (snake_case, unit-suffixed: _ns, _bytes) and may
// carry labels: registry.histogram("serve_query_ns", {{"class", "k-hop"}}).
// Lookup happens once, at subsystem construction — call sites keep the
// returned reference (stable for the registry's lifetime) and never touch
// the registry mutex on the hot path.
//
// Snapshots are consistent-enough plain-value copies (each atomic read
// individually; counters are monotone so a concurrent snapshot can lag but
// never invent history) renderable as one-line JSONL, Prometheus text
// exposition, or a human table.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsg::obs {

/// Global runtime switch (default on). Off = every instrument's record path
/// is a single relaxed load; existing values remain readable.
inline std::atomic<bool> g_enabled{true};

inline void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
}

/// True when instruments were compiled to no-ops (-DDSG_OBS_NOOP).
[[nodiscard]] constexpr bool compiled_noop() {
#ifdef DSG_OBS_NOOP
    return true;
#else
    return false;
#endif
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotone counter.
class Counter {
public:
    void add(std::uint64_t n = 1) {
#ifndef DSG_OBS_NOOP
        if (!enabled()) return;
        value_.fetch_add(n, std::memory_order_relaxed);
#else
        (void)n;
#endif
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed gauge (also supports add for up/down counting).
class Gauge {
public:
    void set(std::int64_t v) {
#ifndef DSG_OBS_NOOP
        if (!enabled()) return;
        value_.store(v, std::memory_order_relaxed);
#else
        (void)v;
#endif
    }
    void add(std::int64_t delta) {
#ifndef DSG_OBS_NOOP
        if (!enabled()) return;
        value_.fetch_add(delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }
    [[nodiscard]] std::int64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Plain-value quantile summary of one histogram (ns-valued instruments
/// carry the _ns suffix; renderers convert to ms for humans).
struct HistogramSummary {
    std::uint64_t count = 0;
    double mean = 0;
    double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
    double max = 0;  ///< upper bound of the highest occupied bucket
};

/// Log-bucketed histogram of non-negative integer values (latencies in ns,
/// sizes in bytes). See the header comment for the bucket scheme and the
/// error bound; tests/obs/test_metrics.cpp proves the bound against exact
/// sorted references.
class Histogram {
public:
    static constexpr std::size_t kPrecision = 3;  ///< mantissa bits kept
    static constexpr std::size_t kSubBuckets = std::size_t{1} << kPrecision;
    /// Exact buckets [0, 16) + 8 sub-buckets for each of octaves 4..63.
    static constexpr std::size_t kBuckets = ((63 - kPrecision + 1) << kPrecision) + kSubBuckets;
    static constexpr std::size_t kShards = 16;  ///< thread-striped shards

    Histogram() : shards_(kShards) {}
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    /// Bucket index of a value (exact below 16, 3-mantissa-bit log above).
    [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
        if (v < kSubBuckets * 2) return static_cast<std::size_t>(v);
        const int msb = 63 - std::countl_zero(v);
        const std::size_t sub =
            (v >> (static_cast<std::size_t>(msb) - kPrecision)) &
            (kSubBuckets - 1);
        return ((static_cast<std::size_t>(msb) - kPrecision + 1)
                << kPrecision) +
               sub;
    }

    /// Largest value that maps to bucket `idx` (the quantile estimate; it
    /// never undershoots the true quantile).
    [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) {
        if (idx < kSubBuckets * 2) return idx;
        const std::size_t g = (idx >> kPrecision) - 1;
        const std::uint64_t sub = idx & (kSubBuckets - 1);
        return ((kSubBuckets + sub + 1) << g) - 1;
    }

    void record(std::uint64_t value) {
#ifndef DSG_OBS_NOOP
        if (!enabled()) return;
        Shard& s = shards_[shard_index()];
        s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(value, std::memory_order_relaxed);
#else
        (void)value;
#endif
    }
    /// Convenience for callers holding a duration in (fractional) ms.
    void record_ms(double ms) {
        record(ms > 0 ? static_cast<std::uint64_t>(ms * 1e6) : 0);
    }

    /// Merged plain-value copy of all shards. Safe concurrently with
    /// recorders; the count always equals the sum of the bucket counts of
    /// the same reading (buckets are read before the aggregate totals, and
    /// both are monotone — see SnapshotWhileWriting in tests/obs/).
    struct Reading {
        std::array<std::uint64_t, kBuckets> buckets{};
        std::uint64_t count = 0;
        std::uint64_t sum = 0;

        /// Upper bound of the bucket holding the q-th quantile (q clamped
        /// to [0, 1]). Contract on degenerate readings: an empty reading
        /// (count == 0) returns 0.0 for every q — never NaN or a division
        /// by zero — and a single-bucket reading (all samples equal, or
        /// one sample) returns that bucket's upper bound for every q, so
        /// p50 == p999 == max. tests/obs/test_metrics.cpp pins both.
        [[nodiscard]] double quantile(double q) const;
        [[nodiscard]] double mean() const {
            return count > 0
                       ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
        }
        [[nodiscard]] HistogramSummary summary() const;
    };
    [[nodiscard]] Reading read() const;

private:
    struct alignas(64) Shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
    };

    static std::size_t shard_index();

    std::vector<Shard> shards_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Instrument labels; rendered sorted by key into the instrument's identity
/// ("name{class=k-hop}"), so label order at the call site is irrelevant.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One consistent plain-value snapshot of a registry, renderable for
/// machines (JSONL, Prometheus) and humans (text table).
struct MetricsSnapshot {
    std::int64_t ts_ms = 0;  ///< wall-clock ms since the Unix epoch
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;  ///< incl. callbacks
    std::vector<std::pair<std::string, HistogramSummary>> histograms;

    /// One newline-terminated JSON object (the JSONL exporter's line).
    [[nodiscard]] std::string to_jsonl() const;
    /// Prometheus text exposition (histograms as summary quantiles).
    [[nodiscard]] std::string to_prometheus() const;
    /// Human-readable table (_ns histograms rendered in ms).
    [[nodiscard]] std::string to_text() const;
    /// The snapshot as one JSON object "{...}" without the timestamp — the
    /// form bench_common embeds under the "metrics" key of DSG_BENCH_JSON
    /// records (docs/BENCHMARKS.md).
    [[nodiscard]] std::string to_json_object() const;
};

/// Named instrument registry. One process-wide instance (global()) backs
/// the whole slice; tests may construct private ones. Instrument references
/// are stable for the registry's lifetime.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    [[nodiscard]] Counter& counter(std::string_view name,
                                   const Labels& labels = {});
    [[nodiscard]] Gauge& gauge(std::string_view name,
                               const Labels& labels = {});
    [[nodiscard]] Histogram& histogram(std::string_view name,
                                       const Labels& labels = {});

    /// Registers (or replaces) a gauge evaluated lazily at snapshot time —
    /// the mirror mechanism for stats owned elsewhere (e.g. par::CommStats).
    void set_callback(std::string_view name, const Labels& labels,
                      std::function<double()> fn);
    /// Drops a callback (safe to call for a name never registered).
    void remove_callback(std::string_view name, const Labels& labels = {});

    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// The process-wide registry every subsystem reports into.
    [[nodiscard]] static Registry& global();

private:
    mutable std::mutex mx_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::function<double()>> callbacks_;
};

/// Shorthand for Registry::global().
[[nodiscard]] inline Registry& registry() { return Registry::global(); }

}  // namespace dsg::obs
