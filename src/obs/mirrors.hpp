// Push-model mirrors for stats owned below the obs layer.
//
// par sits at the bottom of the dependency stack and must not depend on
// obs, so par::CommStats can't report into the registry itself. Instead,
// whoever holds a Comm pushes a plain-value snapshot through here — the
// natural place is a MetricsExporter on_snapshot callback, so the gauges
// are refreshed right before every export tick.
#pragma once

#include "obs/metrics.hpp"
#include "par/comm.hpp"

namespace dsg::obs {

/// Mirrors a comm-stats snapshot into comm_* gauges of `reg`. Counter-like
/// quantities are exposed as gauges because the source of truth (the
/// CommStats atomics) lives in par and may be reset there.
inline void publish_comm_stats(const par::CommStats::Snapshot& s,
                               Registry& reg = registry()) {
    reg.gauge("comm_p2p_messages").set(static_cast<std::int64_t>(s.p2p_messages));
    reg.gauge("comm_p2p_bytes").set(static_cast<std::int64_t>(s.p2p_bytes));
    reg.gauge("comm_bcast_bytes").set(static_cast<std::int64_t>(s.bcast_bytes));
    reg.gauge("comm_alltoall_bytes")
        .set(static_cast<std::int64_t>(s.alltoall_bytes));
    reg.gauge("comm_reduce_bytes").set(static_cast<std::int64_t>(s.reduce_bytes));
    reg.gauge("comm_gather_bytes").set(static_cast<std::int64_t>(s.gather_bytes));
    reg.gauge("comm_total_bytes").set(static_cast<std::int64_t>(s.total_bytes()));
    reg.gauge("comm_barriers").set(static_cast<std::int64_t>(s.barriers));
    reg.gauge("comm_collectives").set(static_cast<std::int64_t>(s.collectives));
    reg.gauge("comm_async_posted").set(static_cast<std::int64_t>(s.async_posted));
    reg.gauge("comm_async_completed")
        .set(static_cast<std::int64_t>(s.async_completed));
}

}  // namespace dsg::obs
