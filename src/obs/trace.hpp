// Chrome trace-event export of the par::Profiler span rings.
//
// Renders a Profiler::collect_trace() dump as the JSON object format
// ({"traceEvents": [...]}) understood by Perfetto and chrome://tracing:
// complete events (ph "X") with microsecond timestamps relative to the
// earliest span, pid = rank + 1 (pid 0 groups the non-rank threads:
// producers, pools, exporters), tid = the profiler's process-local thread
// id, and the epoch tag under args. Request-scoped tags (query id/class,
// snapshot version) are rendered under args when set, and matched
// FlowDir::Start/Finish span pairs become flow events (ph "s"/"f") — one
// pair per consuming query span, each with a unique id — so Perfetto draws
// an arrow from the publish span that produced a snapshot to every query
// answered from it. Loading a --trace-out file makes the async overlap
// windows (stage k+1 bcast under stage k multiply, WAL-overlapped drains)
// directly visible as parallel tracks.
//
// scripts/check-trace.py validates this format in CI.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "par/profiler.hpp"

namespace dsg::obs {

/// Renders `dump` as Chrome trace JSON. Spans are sorted by (pid, tid,
/// start) so nested brackets of one thread stay adjacent and properly
/// ordered for viewers. Flow events are emitted only for Finish spans whose
/// flow id also has a Start span in the dump (and vice versa), so a
/// published-but-never-queried snapshot — or a pair half lost to ring
/// wraparound — never produces a dangling flow end.
[[nodiscard]] inline std::string to_chrome_trace(par::TraceDump dump) {
    std::sort(dump.spans.begin(), dump.spans.end(),
              [](const par::TraceSpan& a, const par::TraceSpan& b) {
                  if (a.rank != b.rank) return a.rank < b.rank;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.start_ns < b.start_ns;
              });
    std::uint64_t base_ns = 0;
    for (const par::TraceSpan& s : dump.spans)
        if (base_ns == 0 || s.start_ns < base_ns) base_ns = s.start_ns;

    // Flow producers: last Start span per flow id (re-publishes of one
    // version, e.g. publish_on_attach, keep the newest).
    std::unordered_map<std::uint64_t, const par::TraceSpan*> starts;
    for (const par::TraceSpan& s : dump.spans)
        if (s.flow == par::FlowDir::Start && s.flow_id != 0)
            starts[s.flow_id] = &s;

    std::string out = "{\"traceEvents\": [";
    char buf[384];
    bool first = true;
    for (const par::TraceSpan& s : dump.spans) {
        if (!first) out += ",";
        first = false;
        const double ts_us =
            static_cast<double>(s.start_ns - base_ns) / 1e3;
        const double dur_us = static_cast<double>(s.dur_ns) / 1e3;
        std::string args;
        std::snprintf(buf, sizeof buf, "\"epoch\": %lld, \"rank\": %d",
                      static_cast<long long>(s.epoch), s.rank);
        args = buf;
        if (s.qid != 0) {
            std::snprintf(buf, sizeof buf, ", \"qid\": %llu, \"qclass\": %d",
                          static_cast<unsigned long long>(s.qid), s.qclass);
            args += buf;
        }
        if (s.snapshot_version >= 0) {
            std::snprintf(buf, sizeof buf, ", \"snapshot_version\": %lld",
                          static_cast<long long>(s.snapshot_version));
            args += buf;
        }
        std::snprintf(buf, sizeof buf,
                      "\n{\"name\": \"%.*s\", \"ph\": \"X\", \"ts\": %.3f, "
                      "\"dur\": %.3f, \"pid\": %d, \"tid\": %u, "
                      "\"args\": {%s}}",
                      static_cast<int>(par::phase_name(s.phase).size()),
                      par::phase_name(s.phase).data(), ts_us, dur_us,
                      s.rank + 1, s.tid, args.c_str());
        out += buf;
    }

    // One s/f pair per query span that consumed a published snapshot, each
    // pair under its own sequential id (strictly 1:1, the shape viewers and
    // check-trace.py expect). Both halves are anchored to the midpoint of
    // their span so the enclosing slice is unambiguous.
    std::uint64_t next_flow = 0;
    for (const par::TraceSpan& s : dump.spans) {
        if (s.flow != par::FlowDir::Finish || s.flow_id == 0) continue;
        const auto it = starts.find(s.flow_id);
        if (it == starts.end()) continue;
        const par::TraceSpan& p = *it->second;
        ++next_flow;
        const double s_ts =
            (static_cast<double>(p.start_ns - base_ns) +
             static_cast<double>(p.dur_ns) / 2.0) / 1e3;
        const double f_ts =
            (static_cast<double>(s.start_ns - base_ns) +
             static_cast<double>(s.dur_ns) / 2.0) / 1e3;
        std::snprintf(
            buf, sizeof buf,
            ",\n{\"name\": \"snapshot\", \"cat\": \"flow\", \"ph\": \"s\", "
            "\"id\": %llu, \"ts\": %.3f, \"pid\": %d, \"tid\": %u, "
            "\"args\": {\"snapshot_version\": %lld}}",
            static_cast<unsigned long long>(next_flow), s_ts, p.rank + 1,
            p.tid, static_cast<long long>(s.flow_id) - 1);
        out += buf;
        std::snprintf(
            buf, sizeof buf,
            ",\n{\"name\": \"snapshot\", \"cat\": \"flow\", \"ph\": \"f\", "
            "\"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, \"pid\": %d, "
            "\"tid\": %u, \"args\": {\"snapshot_version\": %lld, "
            "\"qid\": %llu}}",
            static_cast<unsigned long long>(next_flow), f_ts, s.rank + 1,
            s.tid, static_cast<long long>(s.flow_id) - 1,
            static_cast<unsigned long long>(s.qid));
        out += buf;
    }

    out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
           "{\"dropped_spans\": " +
           std::to_string(dump.dropped) + "}}\n";
    return out;
}

/// Collects the current rings and writes the Chrome trace JSON to `path`.
/// Returns false when the file can't be opened.
inline bool write_chrome_trace(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = to_chrome_trace(par::Profiler::collect_trace());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

}  // namespace dsg::obs
