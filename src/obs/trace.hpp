// Chrome trace-event export of the par::Profiler span rings.
//
// Renders a Profiler::collect_trace() dump as the JSON object format
// ({"traceEvents": [...]}) understood by Perfetto and chrome://tracing:
// complete events (ph "X") with microsecond timestamps relative to the
// earliest span, pid = rank + 1 (pid 0 groups the non-rank threads:
// producers, pools, exporters), tid = the profiler's process-local thread
// id, and the epoch tag under args. Loading a --trace-out file makes the
// async overlap windows (stage k+1 bcast under stage k multiply,
// WAL-overlapped drains) directly visible as parallel tracks.
//
// scripts/check-trace.py validates this format in CI.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "par/profiler.hpp"

namespace dsg::obs {

/// Renders `dump` as Chrome trace JSON. Spans are sorted by (pid, tid,
/// start) so nested brackets of one thread stay adjacent and properly
/// ordered for viewers.
[[nodiscard]] inline std::string to_chrome_trace(par::TraceDump dump) {
    std::sort(dump.spans.begin(), dump.spans.end(),
              [](const par::TraceSpan& a, const par::TraceSpan& b) {
                  if (a.rank != b.rank) return a.rank < b.rank;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.start_ns < b.start_ns;
              });
    std::uint64_t base_ns = 0;
    for (const par::TraceSpan& s : dump.spans)
        if (base_ns == 0 || s.start_ns < base_ns) base_ns = s.start_ns;

    std::string out = "{\"traceEvents\": [";
    char buf[256];
    bool first = true;
    for (const par::TraceSpan& s : dump.spans) {
        if (!first) out += ",";
        first = false;
        const double ts_us =
            static_cast<double>(s.start_ns - base_ns) / 1e3;
        const double dur_us = static_cast<double>(s.dur_ns) / 1e3;
        std::snprintf(buf, sizeof buf,
                      "\n{\"name\": \"%.*s\", \"ph\": \"X\", \"ts\": %.3f, "
                      "\"dur\": %.3f, \"pid\": %d, \"tid\": %u, "
                      "\"args\": {\"epoch\": %lld, \"rank\": %d}}",
                      static_cast<int>(par::phase_name(s.phase).size()),
                      par::phase_name(s.phase).data(), ts_us, dur_us,
                      s.rank + 1, s.tid,
                      static_cast<long long>(s.epoch), s.rank);
        out += buf;
    }
    out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
           "{\"dropped_spans\": " +
           std::to_string(dump.dropped) + "}}\n";
    return out;
}

/// Collects the current rings and writes the Chrome trace JSON to `path`.
/// Returns false when the file can't be opened.
inline bool write_chrome_trace(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = to_chrome_trace(par::Profiler::collect_trace());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

}  // namespace dsg::obs
