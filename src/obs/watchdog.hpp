// Anomaly watchdog: declarative threshold/rate rules evaluated over
// registry snapshots, emitting structured events into an obs::EventLog.
//
// A Rule names a metric family (exact key, or a prefix matching every
// labelled instance — "stream_queue_depth" matches
// "stream_queue_depth{rank=2}"), a predicate over the family's snapshot
// value (gauge above/below, counter rate above, histogram field above),
// and hysteresis: the predicate must hold for `for_ticks` consecutive
// evaluations to fire, and release for `clear_ticks` to clear — so a
// single noisy tick neither pages nor flaps. Each transition appends one
// Event (firing at the rule's severity, clearing at Info).
//
// The evaluator is deterministic and snapshot-driven — evaluate(snapshot)
// is the unit the tests feed synthetic registry states — with a background
// thread (start()/stop(), exporter-style) for production wiring. The
// exporter drains the EventLog to JSONL next to the metrics stream, so the
// CI observability job can assert "the induced checkpoint stall produced a
// watchdog event".
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace dsg::obs {

/// What a rule compares against its threshold.
enum class RuleKind : int {
    GaugeAbove,        ///< max over matching gauges > threshold
    GaugeBelow,        ///< min over matching gauges < threshold
    CounterRateAbove,  ///< d(sum over matching counters)/dt [1/s] > threshold
    HistAbove,         ///< max over matching histograms' `field` > threshold
};

/// Which summary field a HistAbove rule reads.
enum class HistField : int { P50, P90, P99, P999, Max, Mean };

/// One declarative watchdog rule.
struct Rule {
    std::string name;    ///< event identity, e.g. "snapshot-lag-ceiling"
    std::string metric;  ///< registry key or family prefix (labels ignored)
    RuleKind kind = RuleKind::GaugeAbove;
    double threshold = 0.0;
    HistField field = HistField::P99;  ///< HistAbove only
    int for_ticks = 1;    ///< consecutive breaching ticks before firing
    int clear_ticks = 1;  ///< consecutive calm ticks before clearing
    Severity severity = Severity::Warning;
};

/// The stock rule set covering the failure modes each layer already
/// exposes through the registry. `queue_capacity` should match the stream
/// engine's per-rank queue bound (rules fire at 90% occupancy).
inline std::vector<Rule> default_rules(std::size_t queue_capacity = 1 << 15) {
    std::vector<Rule> rules;
    rules.push_back({"epoch-drain-stall", "stream_epoch_drain_ns",
                     RuleKind::HistAbove, 500e6, HistField::P99, 2, 2,
                     Severity::Warning});
    rules.push_back({"queue-saturation", "stream_queue_depth",
                     RuleKind::GaugeAbove,
                     0.9 * static_cast<double>(queue_capacity), HistField::P99,
                     2, 2, Severity::Warning});
    rules.push_back({"shed-burst", "serve_query_shed",
                     RuleKind::CounterRateAbove, 100.0, HistField::P99, 1, 2,
                     Severity::Warning});
    rules.push_back({"wal-fsync-spike", "persist_wal_fsync_ns",
                     RuleKind::HistAbove, 100e6, HistField::P99, 1, 2,
                     Severity::Warning});
    rules.push_back({"snapshot-lag-ceiling", "serve_snapshot_lag",
                     RuleKind::GaugeAbove, 8.0, HistField::P99, 2, 2,
                     Severity::Critical});
    // Federated snapshots only (obs/federate.hpp): sustained max/mean skew
    // of applied work across ranks. In a non-federated registry the family
    // never exists, so the rule sits calm — safe in the default set.
    rules.push_back({"rank-load-imbalance", "stream_ops_applied_rank_imbalance",
                     RuleKind::GaugeAbove, 2.0, HistField::P99, 3, 2,
                     Severity::Warning});
    return rules;
}

class Watchdog {
public:
    struct Config {
        std::chrono::milliseconds interval{500};  ///< background tick period
        bool background = false;  ///< spawn the evaluator thread on start()
    };

    Watchdog(Registry& reg, EventLog& log, std::vector<Rule> rules)
        : Watchdog(reg, log, std::move(rules), Config{}) {}

    Watchdog(Registry& reg, EventLog& log, std::vector<Rule> rules,
             Config cfg)
        : reg_(reg), log_(log), cfg_(cfg) {
        for (Rule& r : rules) states_.push_back(State{std::move(r)});
        if (cfg_.background) start();
    }

    ~Watchdog() { stop(); }
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Appends a rule (not thread-safe against a running background loop;
    /// add rules before start()).
    void add_rule(Rule r) { states_.push_back(State{std::move(r)}); }

    /// Snapshots the registry and evaluates every rule once on the calling
    /// thread. Returns the number of events emitted.
    std::size_t evaluate_now() { return evaluate(reg_.snapshot()); }

    /// Evaluates every rule against `snap` (deterministic; the unit tests
    /// drive this directly with synthetic snapshots). Counter rates use
    /// snap.ts_ms deltas between consecutive calls.
    std::size_t evaluate(const MetricsSnapshot& snap) {
        std::size_t emitted = 0;
        for (State& st : states_) emitted += evaluate_rule(st, snap);
        return emitted;
    }

    /// True while the named rule is in the fired state.
    [[nodiscard]] bool firing(std::string_view rule) const {
        for (const State& st : states_)
            if (st.rule.name == rule) return st.firing;
        return false;
    }

    void start() {
        if (thread_.joinable()) return;
        stop_ = false;
        thread_ = std::thread([this] { loop(); });
    }

    void stop() {
        if (!thread_.joinable()) return;
        {
            std::lock_guard lock(mx_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

private:
    struct State {
        Rule rule;
        int breach_ticks = 0;
        int calm_ticks = 0;
        bool firing = false;
        // CounterRateAbove: previous sum + timestamp.
        double last_value = 0.0;
        std::int64_t last_ts_ms = 0;
        bool has_last = false;
    };

    /// Does `key` belong to the rule's metric family?
    static bool matches(const std::string& key, const std::string& metric) {
        if (key == metric) return true;
        return key.size() > metric.size() + 1 &&
               key.compare(0, metric.size(), metric) == 0 &&
               key[metric.size()] == '{';
    }

    static double hist_field(const HistogramSummary& h, HistField f) {
        switch (f) {
            case HistField::P50: return h.p50;
            case HistField::P90: return h.p90;
            case HistField::P99: return h.p99;
            case HistField::P999: return h.p999;
            case HistField::Max: return h.max;
            case HistField::Mean: return h.mean;
        }
        return 0.0;
    }

    /// Extracts the rule's observed value from `snap`. Returns false when
    /// no instrument of the family exists yet (treated as a calm tick).
    bool observe(State& st, const MetricsSnapshot& snap, double& value) {
        const Rule& r = st.rule;
        bool found = false;
        switch (r.kind) {
            case RuleKind::GaugeAbove:
            case RuleKind::GaugeBelow:
                for (const auto& [key, v] : snap.gauges)
                    if (matches(key, r.metric)) {
                        value = found ? (r.kind == RuleKind::GaugeAbove
                                             ? std::max(value, v)
                                             : std::min(value, v))
                                      : v;
                        found = true;
                    }
                return found;
            case RuleKind::CounterRateAbove: {
                double sum = 0.0;
                for (const auto& [key, v] : snap.counters)
                    if (matches(key, r.metric)) {
                        sum += static_cast<double>(v);
                        found = true;
                    }
                if (!found) return false;
                const bool had = st.has_last;
                const double prev = st.last_value;
                const std::int64_t prev_ts = st.last_ts_ms;
                st.last_value = sum;
                st.last_ts_ms = snap.ts_ms;
                st.has_last = true;
                if (!had || snap.ts_ms <= prev_ts) return false;
                value = (sum - prev) * 1e3 /
                        static_cast<double>(snap.ts_ms - prev_ts);
                return true;
            }
            case RuleKind::HistAbove:
                for (const auto& [key, h] : snap.histograms)
                    if (matches(key, r.metric)) {
                        const double v = hist_field(h, r.field);
                        value = found ? std::max(value, v) : v;
                        found = true;
                    }
                return found;
        }
        return false;
    }

    std::size_t evaluate_rule(State& st, const MetricsSnapshot& snap) {
        const Rule& r = st.rule;
        double value = 0.0;
        bool breached = false;
        if (observe(st, snap, value))
            breached = r.kind == RuleKind::GaugeBelow ? value < r.threshold
                                                      : value > r.threshold;
        std::size_t emitted = 0;
        if (breached) {
            ++st.breach_ticks;
            st.calm_ticks = 0;
            if (!st.firing && st.breach_ticks >= r.for_ticks) {
                st.firing = true;
                Event e;
                e.ts_ms = snap.ts_ms;
                e.severity = r.severity;
                e.rule = r.name;
                e.metric = r.metric;
                e.value = value;
                e.threshold = r.threshold;
                e.message = r.name + " fired: " + r.metric + " breached " +
                            std::to_string(r.threshold) + " for " +
                            std::to_string(st.breach_ticks) + " tick(s)";
                log_.append(std::move(e));
                ++emitted;
            }
        } else {
            ++st.calm_ticks;
            st.breach_ticks = 0;
            if (st.firing && st.calm_ticks >= r.clear_ticks) {
                st.firing = false;
                Event e;
                e.ts_ms = snap.ts_ms;
                e.severity = Severity::Info;
                e.rule = r.name;
                e.metric = r.metric;
                e.value = value;
                e.threshold = r.threshold;
                e.message = r.name + " cleared";
                log_.append(std::move(e));
                ++emitted;
            }
        }
        return emitted;
    }

    void loop() {
        std::unique_lock lock(mx_);
        while (!stop_) {
            lock.unlock();
            evaluate_now();
            lock.lock();
            cv_.wait_for(lock, cfg_.interval, [this] { return stop_; });
        }
    }

    Registry& reg_;
    EventLog& log_;
    Config cfg_;
    std::vector<State> states_;

    std::mutex mx_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

}  // namespace dsg::obs
