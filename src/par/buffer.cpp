#include "par/buffer.hpp"

// Header-only for now; this TU pins the header into the static library so
// compile errors surface even if no other TU includes it.
namespace dsg::par {
static_assert(sizeof(Buffer) > 0);
}  // namespace dsg::par
