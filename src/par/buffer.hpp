// Byte-buffer serialization primitives used for all inter-rank communication.
//
// Every block of a sparse matrix that crosses a rank boundary is packed into a
// Buffer with BufferWriter and unpacked with BufferReader. Only trivially
// copyable payloads are supported; matrices serialize themselves in terms of
// scalar headers plus spans of PODs (see sparse/dcsr.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace dsg::par {

/// Raw byte buffer exchanged between ranks.
using Buffer = std::vector<std::byte>;

/// Typed error for every malformed-input condition BufferReader can hit:
/// scalar reads past the end, vector length headers larger than the bytes
/// that follow (including lengths crafted to overflow `n * sizeof(T)` — the
/// regression found in PR 1). Derives from std::out_of_range so existing
/// call sites catching the old type keep working; the message names the
/// failing operation so persisted-state loaders (src/persist/) can surface
/// which field of a frame was truncated.
class TruncatedBufferError : public std::out_of_range {
public:
    explicit TruncatedBufferError(const std::string& what)
        : std::out_of_range("BufferReader: " + what) {}
};

/// Appends trivially copyable values and spans to a Buffer.
class BufferWriter {
public:
    explicit BufferWriter(Buffer& out) : out_(out) {}

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void write(const T& value) {
        append(&value, sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void write_span(std::span<const T> values) {
        write<std::uint64_t>(values.size());
        append(values.data(), values.size_bytes());
    }

    template <typename T>
    void write_vector(const std::vector<T>& values) {
        write_span(std::span<const T>(values));
    }

private:
    // resize + memcpy rather than insert(end, first, last): insert's growth
    // path trips GCC 12's -Wstringop-overflow false positive under -Werror.
    // resize value-initializes the tail before memcpy overwrites it — an
    // accepted extra pass over the appended bytes.
    void append(const void* src, std::size_t bytes) {
        if (bytes == 0) return;  // empty spans may carry src == nullptr
        const std::size_t old = out_.size();
        out_.resize(old + bytes);
        std::memcpy(out_.data() + old, src, bytes);
    }

    Buffer& out_;
};

/// Reads values back out of a Buffer in the order they were written.
class BufferReader {
public:
    explicit BufferReader(std::span<const std::byte> data) : data_(data) {}
    explicit BufferReader(const Buffer& data) : data_(data) {}

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    T read() {
        T value;
        require(sizeof(T), "scalar read");
        std::memcpy(&value, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    std::vector<T> read_vector() {
        const auto n = read<std::uint64_t>();
        // Divide instead of multiplying: n * sizeof(T) could wrap around and
        // slip past the bounds check on a corrupt length header.
        if (n > remaining() / sizeof(T))
            throw TruncatedBufferError(
                "vector length header exceeds remaining bytes");
        std::vector<T> values(static_cast<std::size_t>(n));
        if (n != 0) {  // data() of an empty vector may be nullptr
            std::memcpy(values.data(), data_.data() + pos_, values.size() * sizeof(T));
            pos_ += values.size() * sizeof(T);
        }
        return values;
    }

    /// Skips bytes without reading them (bounds-checked like read()).
    void skip(std::size_t bytes) {
        require(bytes, "skip");
        pos_ += bytes;
    }

    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] std::size_t position() const { return pos_; }
    [[nodiscard]] bool exhausted() const { return remaining() == 0; }

private:
    void require(std::size_t bytes, const char* what) const {
        // pos_ <= size() is an invariant, so this form cannot overflow.
        if (bytes > data_.size() - pos_)
            throw TruncatedBufferError(std::string(what) +
                                       " past the end of the buffer");
    }

    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

}  // namespace dsg::par
