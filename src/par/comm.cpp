#include "par/comm.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "par/profiler.hpp"

namespace dsg::par {

CommStats::Snapshot CommStats::snapshot() const {
    return Snapshot{
        p2p_messages.load(), p2p_bytes.load(),   bcast_bytes.load(),
        alltoall_bytes.load(), reduce_bytes.load(), gather_bytes.load(),
        barriers.load(),     collectives.load(),  async_posted.load(),
        async_completed.load(),
    };
}

void CommStats::reset() {
    p2p_messages = 0;
    p2p_bytes = 0;
    bcast_bytes = 0;
    alltoall_bytes = 0;
    reduce_bytes = 0;
    gather_bytes = 0;
    barriers = 0;
    collectives = 0;
    async_posted = 0;
    async_completed = 0;
}

namespace detail {

// Shared abort channel: one per world, shared by all communicators split from
// it, so a failure on any rank wakes sleepers in every (sub-)communicator.
struct AbortHub {
    std::atomic<bool> flag{false};
    std::mutex mx;
    std::vector<std::weak_ptr<CommGroup>> groups;

    void register_group(const std::shared_ptr<CommGroup>& g) {
        std::lock_guard lk(mx);
        groups.push_back(g);
    }
};

// Shared state of one communicator: mailboxes, barrier, collective slots.
class CommGroup : public std::enable_shared_from_this<CommGroup> {
public:
    CommGroup(int size, CommStats* stats, std::shared_ptr<AbortHub> hub)
        : size_(size),
          stats_(stats),
          hub_(std::move(hub)),
          slots_(size, nullptr),
          seqs_(size, 0),
          mail_(static_cast<std::size_t>(size)) {
        for (auto& m : mail_) m = std::make_unique<Mailbox>();
    }

    [[nodiscard]] int size() const { return size_; }
    [[nodiscard]] CommStats& stats() { return *stats_; }

    void check_abort() const {
        if (hub_->flag.load(std::memory_order_acquire)) throw AbortedError();
    }

    void abort() {
        hub_->flag.store(true, std::memory_order_release);
        std::lock_guard lk(hub_->mx);
        for (auto& wg : hub_->groups) {
            if (auto g = wg.lock()) g->wake_all();
        }
    }

    void wake_all() {
        {
            std::lock_guard lk(bar_mx_);
            bar_cv_.notify_all();
        }
        for (auto& m : mail_) {
            std::lock_guard lk(m->mx);
            m->cv.notify_all();
        }
    }

    // Abortable sense-reversing barrier.
    void barrier_wait() {
        check_abort();
        std::unique_lock lk(bar_mx_);
        const bool my_sense = bar_sense_;
        if (++bar_count_ == size_) {
            bar_count_ = 0;
            bar_sense_ = !bar_sense_;
            bar_cv_.notify_all();
        } else {
            bar_cv_.wait(lk, [&] {
                return bar_sense_ != my_sense ||
                       hub_->flag.load(std::memory_order_acquire);
            });
        }
        lk.unlock();
        check_abort();
    }

    // -- point-to-point ------------------------------------------------------

    static std::uint64_t key_of(int src, int tag) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(tag);
    }

    void deliver(int src, int dst, int tag, Buffer msg) {
        auto& box = *mail_[static_cast<std::size_t>(dst)];
        {
            std::lock_guard lk(box.mx);
            box.queues[key_of(src, tag)].push_back(std::move(msg));
        }
        box.cv.notify_all();
    }

    Buffer take(int self, int src, int tag) {
        auto& box = *mail_[static_cast<std::size_t>(self)];
        const auto key = key_of(src, tag);
        std::unique_lock lk(box.mx);
        box.cv.wait(lk, [&] {
            auto it = box.queues.find(key);
            return (it != box.queues.end() && !it->second.empty()) ||
                   hub_->flag.load(std::memory_order_acquire);
        });
        check_abort();
        auto it = box.queues.find(key);
        Buffer msg = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) box.queues.erase(it);
        return msg;
    }

    // -- collective plumbing --------------------------------------------------

    /// Per-rank collective sequence number; in lockstep across ranks because
    /// collectives are invoked in the same order on every rank.
    std::uint32_t next_seq(int rank) {
        return seqs_[static_cast<std::size_t>(rank)]++;
    }

    /// Internal tag for the seq-th collective.
    static int coll_tag(std::uint32_t seq) {
        return kUserTagLimit + static_cast<int>(seq % (1u << 10));
    }

    /// Internal tag for the seq-th async post. Disjoint from coll_tag's range
    /// and wide enough that outstanding posts never collide (a post/wait pair
    /// would need 2^20 younger siblings in flight to wrap).
    static int async_tag(std::uint32_t seq) {
        return kUserTagLimit + (1 << 10) + static_cast<int>(seq % (1u << 20));
    }

    /// Publish-and-exchange slot area; protocol: write slot, barrier, read
    /// peers' slots, barrier.
    const void*& slot(int rank) { return slots_[static_cast<std::size_t>(rank)]; }

    Comm do_split(int self, int color, int key, std::uint32_t seq);

private:
    struct Mailbox {
        std::mutex mx;
        std::condition_variable cv;
        std::map<std::uint64_t, std::deque<Buffer>> queues;
    };

    struct SplitState {
        struct Entry {
            int color, key, rank;
        };
        std::vector<Entry> entries;
        // old world rank -> (group, new rank)
        std::map<int, std::pair<std::shared_ptr<CommGroup>, int>> assignment;
    };

    int size_;
    CommStats* stats_;
    std::shared_ptr<AbortHub> hub_;

    std::mutex bar_mx_;
    std::condition_variable bar_cv_;
    int bar_count_ = 0;
    bool bar_sense_ = false;

    std::vector<const void*> slots_;
    std::vector<std::uint32_t> seqs_;
    std::vector<std::unique_ptr<Mailbox>> mail_;

    std::mutex split_mx_;
    std::map<std::uint64_t, SplitState> splits_;
};

Comm CommGroup::do_split(int self, int color, int key, std::uint32_t seq) {
    {
        std::lock_guard lk(split_mx_);
        splits_[seq].entries.push_back({color, key, self});
    }
    barrier_wait();
    if (self == 0) {
        std::lock_guard lk(split_mx_);
        auto& st = splits_[seq];
        std::stable_sort(st.entries.begin(), st.entries.end(),
                         [](const auto& a, const auto& b) {
                             return std::tie(a.color, a.key, a.rank) <
                                    std::tie(b.color, b.key, b.rank);
                         });
        for (std::size_t i = 0; i < st.entries.size();) {
            std::size_t j = i;
            while (j < st.entries.size() &&
                   st.entries[j].color == st.entries[i].color)
                ++j;
            auto group = std::make_shared<CommGroup>(static_cast<int>(j - i),
                                                     stats_, hub_);
            hub_->register_group(group);
            for (std::size_t k = i; k < j; ++k)
                st.assignment[st.entries[k].rank] = {group,
                                                     static_cast<int>(k - i)};
            i = j;
        }
    }
    barrier_wait();
    std::shared_ptr<CommGroup> group;
    int new_rank = -1;
    {
        std::lock_guard lk(split_mx_);
        auto& [g, r] = splits_[seq].assignment.at(self);
        group = g;
        new_rank = r;
    }
    barrier_wait();
    if (self == 0) {
        std::lock_guard lk(split_mx_);
        splits_.erase(seq);
    }
    return Comm(std::move(group), new_rank);
}

}  // namespace detail

// -- Comm ---------------------------------------------------------------------

int Comm::size() const { return group_->size(); }

CommStats& Comm::stats() const { return group_->stats(); }

void Comm::send(int dst, int tag, Buffer msg) {
    assert(tag >= 0 && tag < kUserTagLimit);
    group_->check_abort();
    if (dst != rank_) {
        group_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
        group_->stats().p2p_bytes.fetch_add(msg.size(),
                                            std::memory_order_relaxed);
    }
    group_->deliver(rank_, dst, tag, std::move(msg));
}

Buffer Comm::recv(int src, int tag) { return group_->take(rank_, src, tag); }

Buffer Comm::sendrecv(int peer, int tag, Buffer msg) {
    if (peer == rank_) return msg;
    send(peer, tag, std::move(msg));
    return recv(peer, tag);
}

void Comm::barrier() {
    group_->stats().barriers.fetch_add(1, std::memory_order_relaxed);
    group_->barrier_wait();
}

// -- non-blocking collectives -------------------------------------------------
//
// Both posts push the payload straight into peer mailboxes (deliver never
// blocks), so a post completes locally regardless of where the peers are;
// wait() then drains the mailbox with the same (source, tag) matching as
// point-to-point traffic. The per-rank lockstep sequence number guarantees
// the n-th post on every rank carries the same tag, whatever else is in
// flight.

Comm::PendingBcast Comm::ibcast(int root, Buffer msg) {
    auto& g = *group_;
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    g.stats().async_posted.fetch_add(1, std::memory_order_relaxed);
    const int tag = detail::CommGroup::async_tag(g.next_seq(rank_));
    g.check_abort();
    if (rank_ == root) {
        for (int dst = 0; dst < g.size(); ++dst) {
            if (dst == root) continue;
            g.deliver(rank_, dst, tag, msg);
        }
    }
    return PendingBcast(group_, rank_, root, tag, std::move(msg));
}

Buffer Comm::PendingBcast::wait() {
    auto& g = *group_;
    Buffer out;
    if (rank_ == root_) {
        g.check_abort();
        out = std::move(own_);
    } else {
        out = g.take(rank_, root_, tag_);
        g.stats().bcast_bytes.fetch_add(out.size(), std::memory_order_relaxed);
    }
    g.stats().async_completed.fetch_add(1, std::memory_order_relaxed);
    return out;
}

Comm::PendingAlltoallv Comm::ialltoallv(std::vector<Buffer> send) {
    auto& g = *group_;
    const int p = g.size();
    if (static_cast<int>(send.size()) != p)
        throw std::invalid_argument("ialltoallv: send.size() != comm size");
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    g.stats().async_posted.fetch_add(1, std::memory_order_relaxed);
    const int tag = detail::CommGroup::async_tag(g.next_seq(rank_));
    g.check_abort();
    for (int dst = 0; dst < p; ++dst) {
        if (dst == rank_) continue;
        g.deliver(rank_, dst, tag,
                  std::move(send[static_cast<std::size_t>(dst)]));
    }
    return PendingAlltoallv(group_, rank_, tag,
                            std::move(send[static_cast<std::size_t>(rank_)]));
}

std::vector<Buffer> Comm::PendingAlltoallv::wait() {
    auto& g = *group_;
    std::vector<Buffer> out(static_cast<std::size_t>(g.size()));
    std::uint64_t bytes = 0;
    for (int s = 0; s < g.size(); ++s) {
        if (s == rank_) continue;
        out[static_cast<std::size_t>(s)] = g.take(rank_, s, tag_);
        bytes += out[static_cast<std::size_t>(s)].size();
    }
    g.stats().alltoall_bytes.fetch_add(bytes, std::memory_order_relaxed);
    out[static_cast<std::size_t>(rank_)] = std::move(own_);
    g.stats().async_completed.fetch_add(1, std::memory_order_relaxed);
    return out;
}

Buffer Comm::bcast(int root, Buffer msg) {
    auto& g = *group_;
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    (void)g.next_seq(rank_);
    if (rank_ == root) g.slot(root) = &msg;
    g.barrier_wait();
    Buffer out;
    if (rank_ != root) {
        out = *static_cast<const Buffer*>(g.slot(root));
        g.stats().bcast_bytes.fetch_add(out.size(), std::memory_order_relaxed);
    }
    g.barrier_wait();
    if (rank_ == root) out = std::move(msg);
    return out;
}

std::vector<Buffer> Comm::alltoallv(std::vector<Buffer> send) {
    auto& g = *group_;
    const int p = g.size();
    if (static_cast<int>(send.size()) != p)
        throw std::invalid_argument("alltoallv: send.size() != comm size");
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    (void)g.next_seq(rank_);
    g.slot(rank_) = &send;
    g.barrier_wait();
    std::vector<Buffer> out(static_cast<std::size_t>(p));
    std::uint64_t bytes = 0;
    for (int s = 0; s < p; ++s) {
        if (s == rank_) continue;
        const auto& peer_send = *static_cast<const std::vector<Buffer>*>(g.slot(s));
        out[static_cast<std::size_t>(s)] =
            peer_send[static_cast<std::size_t>(rank_)];
        bytes += out[static_cast<std::size_t>(s)].size();
    }
    g.stats().alltoall_bytes.fetch_add(bytes, std::memory_order_relaxed);
    g.barrier_wait();
    out[static_cast<std::size_t>(rank_)] =
        std::move(send[static_cast<std::size_t>(rank_)]);
    return out;
}

std::vector<Buffer> Comm::gather(int root, Buffer msg) {
    auto& g = *group_;
    const int p = g.size();
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    (void)g.next_seq(rank_);
    g.slot(rank_) = &msg;
    g.barrier_wait();
    std::vector<Buffer> out;
    if (rank_ == root) {
        out.resize(static_cast<std::size_t>(p));
        std::uint64_t bytes = 0;
        for (int s = 0; s < p; ++s) {
            if (s == rank_) continue;
            out[static_cast<std::size_t>(s)] =
                *static_cast<const Buffer*>(g.slot(s));
            bytes += out[static_cast<std::size_t>(s)].size();
        }
        g.stats().gather_bytes.fetch_add(bytes, std::memory_order_relaxed);
    }
    g.barrier_wait();
    if (rank_ == root) out[static_cast<std::size_t>(rank_)] = std::move(msg);
    return out;
}

std::vector<Buffer> Comm::allgather(Buffer msg) {
    auto& g = *group_;
    const int p = g.size();
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    (void)g.next_seq(rank_);
    g.slot(rank_) = &msg;
    g.barrier_wait();
    std::vector<Buffer> out(static_cast<std::size_t>(p));
    std::uint64_t bytes = 0;
    for (int s = 0; s < p; ++s) {
        if (s == rank_) continue;
        out[static_cast<std::size_t>(s)] = *static_cast<const Buffer*>(g.slot(s));
        bytes += out[static_cast<std::size_t>(s)].size();
    }
    g.stats().gather_bytes.fetch_add(bytes, std::memory_order_relaxed);
    g.barrier_wait();
    out[static_cast<std::size_t>(rank_)] = std::move(msg);
    return out;
}

Buffer Comm::reduce_merge(int root, Buffer mine,
                          const std::function<Buffer(Buffer, Buffer)>& merge) {
    auto& g = *group_;
    const int p = g.size();
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    const auto seq = g.next_seq(rank_);
    const int tag = detail::CommGroup::coll_tag(seq);
    const int rel = (rank_ - root + p) % p;
    Buffer acc = std::move(mine);
    for (int step = 1; step < p; step <<= 1) {
        if (rel & step) {
            const int dst = ((rel - step) + root) % p;
            g.stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
            g.stats().reduce_bytes.fetch_add(acc.size(),
                                             std::memory_order_relaxed);
            g.deliver(rank_, dst, tag, std::move(acc));
            return {};
        }
        if (rel + step < p) {
            const int src = ((rel + step) + root) % p;
            Buffer other = g.take(rank_, src, tag);
            acc = merge(std::move(acc), std::move(other));
        }
    }
    return acc;
}

void Comm::allreduce_or(std::vector<std::uint64_t>& words) {
    Buffer msg(words.size() * sizeof(std::uint64_t));
    std::memcpy(msg.data(), words.data(), msg.size());
    auto all = allgather(std::move(msg));
    for (int s = 0; s < size(); ++s) {
        if (s == rank_) continue;
        const auto& buf = all[static_cast<std::size_t>(s)];
        if (buf.size() != words.size() * sizeof(std::uint64_t))
            throw std::invalid_argument("allreduce_or: size mismatch");
        const auto* other =
            reinterpret_cast<const std::uint64_t*>(buf.data());
        for (std::size_t i = 0; i < words.size(); ++i) words[i] |= other[i];
    }
}

Comm Comm::split(int color, int key) {
    auto& g = *group_;
    g.stats().collectives.fetch_add(1, std::memory_order_relaxed);
    const auto seq = g.next_seq(rank_);
    return g.do_split(rank_, color, key, seq);
}

// -- World ----------------------------------------------------------------------

void World::run(int p, const std::function<void(Comm&)>& fn) {
    if (p <= 0) throw std::invalid_argument("World::run: p must be positive");
    auto hub = std::make_shared<detail::AbortHub>();
    auto stats = std::make_unique<CommStats>();
    auto group = std::make_shared<detail::CommGroup>(p, stats.get(), hub);
    hub->register_group(group);

    std::mutex err_mx;
    std::exception_ptr first_error;
    auto body = [&](int rank) {
        Comm comm(group, rank);
        // Tag trace spans emitted by this thread with its rank. p == 1 runs
        // on the caller's thread, so clear the tag again on exit.
        Profiler::set_thread_rank(rank);
        try {
            fn(comm);
        } catch (const AbortedError&) {
            // Collateral of another rank's failure; that rank reports.
        } catch (...) {
            {
                std::lock_guard lk(err_mx);
                if (!first_error) first_error = std::current_exception();
            }
            group->abort();
        }
        Profiler::set_thread_rank(-1);
    };

    if (p == 1) {
        body(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) threads.emplace_back(body, r);
        for (auto& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dsg::par
