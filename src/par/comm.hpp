// Message-passing runtime: the MPI substitute this library is built on.
//
// The paper's algorithms are expressed in terms of MPI ranks arranged in a
// sqrt(p) x sqrt(p) grid, point-to-point messages, broadcasts, all-to-all
// exchanges, reductions and communicator splits. This header provides exactly
// that interface (dsg::par::Comm); the backend runs each rank as a thread of
// the current process with per-rank mailboxes and barrier-synchronized
// collective exchanges. All traffic is accounted in CommStats so benchmarks
// can report the communication volume each algorithm would place on a real
// interconnect (the quantity the paper's analysis is about).
//
// Semantics follow MPI:
//  - every rank of a communicator must invoke collectives in the same order;
//  - send/recv match on (source, tag); user tags must be < kUserTagLimit;
//  - split() partitions a communicator by color, ordering ranks by key.
//
// An exception thrown on any rank aborts the world: all ranks blocked in
// recv/collectives wake up with AbortedError and the first real exception is
// rethrown from World::run on the calling thread.
//
// docs/ARCHITECTURE.md documents these semantics (ordering, tags, abort) in
// full and explains why the backend is threads rather than real MPI.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "par/buffer.hpp"

namespace dsg::par {

/// Thrown on ranks that are blocked in communication when another rank fails.
class AbortedError : public std::runtime_error {
public:
    AbortedError() : std::runtime_error("communication world aborted") {}
};

/// Largest tag value (exclusive) available to user point-to-point messages.
/// Larger tags are reserved for internal collective traffic.
inline constexpr int kUserTagLimit = 1 << 20;

/// Whether a communication stage runs its collectives synchronously or as
/// post/wait halves that overlap the next local compute phase. Async mode
/// moves bit-identical bytes over the same reduction trees — only the
/// schedule changes, never the result.
enum class CommMode { Sync, Async };

/// Communication-volume counters shared by a world and all communicators
/// split from it. Byte counts only include data that crosses rank boundaries
/// (rank-local copies are free on a real machine as well, via shared memory).
struct CommStats {
    std::atomic<std::uint64_t> p2p_messages{0};
    std::atomic<std::uint64_t> p2p_bytes{0};
    std::atomic<std::uint64_t> bcast_bytes{0};
    std::atomic<std::uint64_t> alltoall_bytes{0};
    std::atomic<std::uint64_t> reduce_bytes{0};
    std::atomic<std::uint64_t> gather_bytes{0};
    std::atomic<std::uint64_t> barriers{0};
    std::atomic<std::uint64_t> collectives{0};
    std::atomic<std::uint64_t> async_posted{0};     ///< ibcast/ialltoallv posts
    std::atomic<std::uint64_t> async_completed{0};  ///< matching wait()s

    /// Plain-value copy of the counters, for reporting.
    struct Snapshot {
        std::uint64_t p2p_messages, p2p_bytes, bcast_bytes, alltoall_bytes,
            reduce_bytes, gather_bytes, barriers, collectives, async_posted,
            async_completed;
        /// Total bytes moved across rank boundaries.
        [[nodiscard]] std::uint64_t total_bytes() const {
            return p2p_bytes + bcast_bytes + alltoall_bytes + reduce_bytes +
                   gather_bytes;
        }
    };

    [[nodiscard]] Snapshot snapshot() const;
    void reset();
};

namespace detail {
class CommGroup;
}  // namespace detail

/// Communicator handle for one rank. Cheap to copy; all copies refer to the
/// same rank of the same group (as with an MPI_Comm + cached rank).
class Comm {
public:
    Comm() = default;

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const;
    [[nodiscard]] bool valid() const { return group_ != nullptr; }

    // -- point-to-point ------------------------------------------------------

    /// Sends msg to rank dst; matched by a recv(src=this rank, tag) on dst.
    void send(int dst, int tag, Buffer msg);
    /// Blocks until a message from src with the given tag arrives.
    Buffer recv(int src, int tag);
    /// Paired exchange with a peer rank (send our buffer, receive theirs).
    /// Safe regardless of ordering; peer == rank() returns msg unchanged.
    Buffer sendrecv(int peer, int tag, Buffer msg);

    // -- non-blocking collectives -------------------------------------------
    //
    // Post/wait halves of bcast and alltoallv (the DistEmbed-style sync/async
    // switch). A post enqueues the payload into peers' mailboxes immediately
    // and returns a handle; the matching wait() blocks until the peer
    // payloads have arrived. Posts count as collectives and must be issued by
    // every rank in the same order (like the blocking forms), but any number
    // may be outstanding, and ranks may interleave local compute between post
    // and wait — that is the overlap. wait() must be called exactly once.

    /// In-flight ibcast; wait() yields what bcast(root, msg) would return.
    class PendingBcast {
    public:
        PendingBcast(PendingBcast&&) = default;
        PendingBcast& operator=(PendingBcast&&) = default;
        Buffer wait();

    private:
        friend class Comm;
        PendingBcast(std::shared_ptr<detail::CommGroup> group, int rank,
                     int root, int tag, Buffer own)
            : group_(std::move(group)), rank_(rank), root_(root), tag_(tag),
              own_(std::move(own)) {}
        std::shared_ptr<detail::CommGroup> group_;
        int rank_, root_, tag_;
        Buffer own_;
    };

    /// In-flight ialltoallv; wait() yields what alltoallv(send) would return.
    class PendingAlltoallv {
    public:
        PendingAlltoallv(PendingAlltoallv&&) = default;
        PendingAlltoallv& operator=(PendingAlltoallv&&) = default;
        std::vector<Buffer> wait();

    private:
        friend class Comm;
        PendingAlltoallv(std::shared_ptr<detail::CommGroup> group, int rank,
                         int tag, Buffer own)
            : group_(std::move(group)), rank_(rank), tag_(tag),
              own_(std::move(own)) {}
        std::shared_ptr<detail::CommGroup> group_;
        int rank_, tag_;
        Buffer own_;
    };

    /// Posts a broadcast from root. The root's msg is copied out to every
    /// peer mailbox before this returns; non-roots pass (and get back) their
    /// own irrelevant msg only at the root.
    PendingBcast ibcast(int root, Buffer msg);
    /// Posts an all-to-all exchange; send[i] is enqueued for rank i.
    PendingAlltoallv ialltoallv(std::vector<Buffer> send);

    // -- collectives (must be called by every rank, in the same order) -------

    void barrier();
    /// Root's buffer is delivered to every rank (root gets its own back).
    Buffer bcast(int root, Buffer msg);
    /// send[i] is delivered to rank i; returns the p buffers received.
    std::vector<Buffer> alltoallv(std::vector<Buffer> send);
    /// Gathers every rank's buffer at root (indexed by rank); other ranks
    /// receive an empty vector.
    std::vector<Buffer> gather(int root, Buffer msg);
    /// Every rank receives every rank's buffer, indexed by rank.
    std::vector<Buffer> allgather(Buffer msg);
    /// Binomial-tree reduction: interior nodes combine their subtree's
    /// buffers with merge(acc, incoming); the fully merged buffer is returned
    /// at root, an empty buffer elsewhere. This is the primitive behind the
    /// paper's custom sparse reduce-scatter (Section VI-A).
    Buffer reduce_merge(int root, Buffer mine,
                        const std::function<Buffer(Buffer, Buffer)>& merge);

    /// All-reduce of a trivially copyable value with a commutative combine.
    template <typename T, typename Op>
        requires std::is_trivially_copyable_v<T>
    T allreduce(T value, Op op) {
        Buffer msg(sizeof(T));
        std::memcpy(msg.data(), &value, sizeof(T));
        auto all = allgather(std::move(msg));
        T acc;
        std::memcpy(&acc, all[0].data(), sizeof(T));
        for (std::size_t r = 1; r < all.size(); ++r) {
            T other;
            std::memcpy(&other, all[r].data(), sizeof(T));
            acc = op(acc, other);
        }
        return acc;
    }

    /// Element-wise in-place bitwise-or all-reduce over a span of words.
    /// Used for the row-filter vector R of the general algorithm (Sec. V-B).
    void allreduce_or(std::vector<std::uint64_t>& words);

    /// Partitions this communicator: ranks passing the same color form a new
    /// communicator, ordered by (key, old rank).
    Comm split(int color, int key);

    /// Volume counters of the world this communicator belongs to.
    [[nodiscard]] CommStats& stats() const;

private:
    friend class World;
    friend class detail::CommGroup;
    Comm(std::shared_ptr<detail::CommGroup> group, int rank)
        : group_(std::move(group)), rank_(rank) {}

    std::shared_ptr<detail::CommGroup> group_;
    int rank_ = -1;
};

/// Owns a set of ranks running as threads.
class World {
public:
    /// Runs fn(comm) on p ranks. Blocks until all ranks return; if any rank
    /// throws, the world aborts and the first exception is rethrown here.
    static void run(int p, const std::function<void(Comm&)>& fn);
};

/// Convenience wrapper around World::run.
inline void run_world(int p, const std::function<void(Comm&)>& fn) {
    World::run(p, fn);
}

}  // namespace dsg::par
