#include "par/profiler.hpp"

namespace dsg::par {

namespace {

std::atomic<bool> g_enabled{false};

// Global totals in nanoseconds. Threads add their scope durations directly;
// contention is negligible because scopes are coarse (whole phases).
std::array<std::atomic<std::uint64_t>, kPhaseCount>& totals() {
    static std::array<std::atomic<std::uint64_t>, kPhaseCount> t{};
    return t;
}

}  // namespace

std::string_view phase_name(Phase phase) {
    switch (phase) {
        case Phase::RedistSort: return "Redist. sort";
        case Phase::RedistComm: return "Redist. comm.";
        case Phase::MemManagement: return "Mem. management";
        case Phase::LocalConstruct: return "Local construct.";
        case Phase::LocalAddition: return "Local addition";
        case Phase::SendRecv: return "Send/Recv";
        case Phase::Bcast: return "Bcast";
        case Phase::LocalMult: return "Local Mult.";
        case Phase::Scatter: return "Scatter";
        case Phase::ReduceScatter: return "Reduce Scatter";
        case Phase::StreamDrain: return "Stream drain";
        case Phase::StreamApply: return "Stream apply";
        case Phase::Analytics: return "Analytics maint.";
        case Phase::PersistLog: return "Persist log";
        case Phase::PersistCheckpoint: return "Persist ckpt.";
        case Phase::PersistRecover: return "Persist recover";
        case Phase::ServePublish: return "Serve publish";
        case Phase::ServeQuery: return "Serve query";
        case Phase::ServeCache: return "Serve cache";
        case Phase::Other: return "Other";
        case Phase::kCount: break;
    }
    return "?";
}

void Profiler::set_enabled(bool enabled) {
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Profiler::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Profiler::reset() {
    for (auto& t : totals()) t.store(0, std::memory_order_relaxed);
}

double Profiler::total_seconds(Phase phase) {
    return static_cast<double>(
               totals()[static_cast<std::size_t>(phase)].load(
                   std::memory_order_relaxed)) *
           1e-9;
}

Profiler::Scope::Scope(Phase phase) : phase_(phase), active_(enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
}

Profiler::Scope::~Scope() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    totals()[static_cast<std::size_t>(phase_)].fetch_add(
        static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
}

}  // namespace dsg::par
