#include "par/profiler.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace dsg::par {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace_enabled{false};
std::atomic<std::size_t> g_trace_capacity{8192};

// Global totals in nanoseconds. Threads add their scope durations directly;
// contention is negligible because scopes are coarse (whole phases).
std::array<std::atomic<std::uint64_t>, kPhaseCount>& totals() {
    static std::array<std::atomic<std::uint64_t>, kPhaseCount> t{};
    return t;
}

/// One thread's bounded span ring. The emitting thread holds the mutex only
/// for the slot write; collect/clear hold it per ring. Uncontended in steady
/// state — only an export racing the owner thread ever blocks.
struct TraceRing {
    explicit TraceRing(std::size_t capacity, std::uint32_t tid_)
        : spans(capacity), tid(tid_) {}

    std::mutex mx;
    std::vector<TraceSpan> spans;
    std::uint64_t total = 0;  ///< spans ever emitted (>= kept ⇒ wrapped)
    std::uint32_t tid;

    void emit(const TraceSpan& s) {
        std::lock_guard lock(mx);
        spans[total % spans.size()] = s;
        ++total;
    }
};

struct TraceRegistry {
    std::mutex mx;
    // shared_ptr keeps a ring readable after its owner thread exits (the
    // thread_local handle below is the other owner).
    std::vector<std::shared_ptr<TraceRing>> rings;
    std::uint32_t next_tid = 0;
};

TraceRegistry& trace_registry() {
    static TraceRegistry reg;
    return reg;
}

TraceRing& thread_ring() {
    thread_local std::shared_ptr<TraceRing> ring = [] {
        TraceRegistry& reg = trace_registry();
        std::lock_guard lock(reg.mx);
        auto r = std::make_shared<TraceRing>(
            std::max<std::size_t>(
                1, g_trace_capacity.load(std::memory_order_relaxed)),
            reg.next_tid++);
        reg.rings.push_back(r);
        return r;
    }();
    return *ring;
}

thread_local int t_rank = -1;
thread_local std::int64_t t_epoch = -1;
thread_local std::uint64_t t_qid = 0;
thread_local int t_qclass = -1;
thread_local std::int64_t t_snapshot_version = -1;

/// Builds a span from the thread's current tags and pushes it to the
/// thread's ring. Shared by Scope::~Scope and Profiler::emit_span.
void emit_tagged(Phase phase, std::uint64_t start_ns, std::uint64_t dur_ns,
                 std::uint64_t flow_id, FlowDir flow) {
    TraceRing& ring = thread_ring();
    TraceSpan span;
    span.phase = phase;
    span.start_ns = start_ns;
    span.dur_ns = dur_ns;
    span.epoch = t_epoch;
    span.rank = t_rank;
    span.tid = ring.tid;
    span.qid = t_qid;
    span.qclass = t_qclass;
    span.snapshot_version = t_snapshot_version;
    span.flow_id = flow_id;
    span.flow = flow;
    ring.emit(span);
}

std::uint64_t to_ns(std::chrono::steady_clock::time_point tp) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

}  // namespace

void Profiler::set_enabled(bool enabled) {
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Profiler::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Profiler::reset() {
    for (auto& t : totals()) t.store(0, std::memory_order_relaxed);
}

double Profiler::total_seconds(Phase phase) {
    return static_cast<double>(
               totals()[static_cast<std::size_t>(phase)].load(
                   std::memory_order_relaxed)) *
           1e-9;
}

void Profiler::set_trace_enabled(bool enabled) {
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool Profiler::trace_enabled() {
    return g_trace_enabled.load(std::memory_order_relaxed);
}

void Profiler::set_trace_capacity(std::size_t spans) {
    g_trace_capacity.store(std::max<std::size_t>(1, spans),
                           std::memory_order_relaxed);
}

void Profiler::set_thread_rank(int rank) { t_rank = rank; }

void Profiler::set_thread_epoch(std::int64_t epoch) { t_epoch = epoch; }

void Profiler::set_thread_query(std::uint64_t qid, int qclass) {
    t_qid = qid;
    t_qclass = qclass;
}

void Profiler::set_thread_snapshot_version(std::int64_t version) {
    t_snapshot_version = version;
}

void Profiler::emit_span(Phase phase,
                         std::chrono::steady_clock::time_point start,
                         std::uint64_t dur_ns) {
    if (!trace_enabled()) return;
    emit_tagged(phase, to_ns(start), dur_ns, 0, FlowDir::None);
}

TraceDump Profiler::collect_trace() {
    TraceDump dump;
    TraceRegistry& reg = trace_registry();
    std::lock_guard reg_lock(reg.mx);
    for (const auto& ring : reg.rings) {
        std::lock_guard ring_lock(ring->mx);
        const std::uint64_t kept =
            std::min<std::uint64_t>(ring->total, ring->spans.size());
        dump.dropped += ring->total - kept;
        // Oldest-first: the ring wraps at total % size, so the oldest kept
        // span sits at (total - kept) % size.
        for (std::uint64_t k = 0; k < kept; ++k)
            dump.spans.push_back(
                ring->spans[(ring->total - kept + k) % ring->spans.size()]);
    }
    std::sort(dump.spans.begin(), dump.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                  return a.start_ns < b.start_ns;
              });
    return dump;
}

void Profiler::clear_trace() {
    TraceRegistry& reg = trace_registry();
    std::lock_guard reg_lock(reg.mx);
    for (const auto& ring : reg.rings) {
        std::lock_guard ring_lock(ring->mx);
        ring->total = 0;
    }
}

Profiler::Scope::Scope(Phase phase)
    : phase_(phase), timing_(enabled()), tracing_(trace_enabled()) {
    if (timing_ || tracing_) start_ = std::chrono::steady_clock::now();
}

Profiler::Scope::~Scope() {
    if (!timing_ && !tracing_) return;
    const auto end = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    if (timing_)
        totals()[static_cast<std::size_t>(phase_)].fetch_add(
            ns, std::memory_order_relaxed);
    if (tracing_) emit_tagged(phase_, to_ns(start_), ns, flow_id_, flow_);
}

void Profiler::Scope::set_flow(std::uint64_t id, FlowDir dir) {
    flow_id_ = id;
    flow_ = dir;
}

}  // namespace dsg::par
