// Per-phase wall-clock accounting used to regenerate the paper's breakdown
// figures (Fig. 7: insertion phases; Fig. 12: dynamic SpGEMM phases), plus
// an opt-in epoch-tagged trace ring for timeline export.
//
// Library code brackets its phases with Profiler::Scope; accounting is
// per-thread (each rank is a thread) and aggregated on demand. Disabled by
// default so the hot paths pay a single relaxed atomic load.
//
// With tracing enabled (set_trace_enabled), every Scope additionally emits
// a timestamped span (phase, rank, epoch, thread) into a bounded per-thread
// ring buffer; the ring wraps, keeping the most recent spans and counting
// the overwritten ones. obs/trace.hpp renders a collect_trace() dump as
// Chrome trace-event JSON loadable in Perfetto. The rank and epoch tags are
// plain thread-locals: World::run stamps the rank on every rank thread, the
// stream engine stamps the epoch being applied.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace dsg::par {

/// Phases instrumented across the library. The first five correspond to the
/// bars of the paper's Fig. 7, the next five to Fig. 12; the two Stream
/// phases bracket the streaming ingestion engine (src/stream/), Analytics
/// covers the epoch-subscribed maintainers (src/analytics/), the Persist
/// phases the durability layer (src/persist/), and the Serve phases the
/// query-serving subsystem (src/serve/).
enum class Phase : int {
    RedistSort = 0,     ///< counting/comparison sort by destination rank
    RedistComm,         ///< alltoallv exchanges of update tuples
    MemManagement,      ///< allocation/growth of local structures
    LocalConstruct,     ///< building local static layouts (CSR/DCSR)
    LocalAddition,      ///< applying updates to local dynamic matrices
    SendRecv,           ///< initial transpose send/receive (Algorithm 1/2)
    Bcast,              ///< row/column block broadcasts
    LocalMult,          ///< local Gustavson multiplications
    Scatter,            ///< distributing reduction inputs
    ReduceScatter,      ///< sparse tree reduction of partial results
    StreamDrain,        ///< waiting on / draining the per-rank update queue
    StreamApply,        ///< epoch application (A* build + ADD/MERGE/MASK)
    Analytics,          ///< epoch-hook maintainer updates (src/analytics/)
    PersistLog,         ///< write-ahead op-log appends + fsyncs (src/persist/)
    PersistCheckpoint,  ///< epoch-consistent snapshot + manifest commit
    PersistRecover,     ///< checkpoint load + log-tail replay on restart
    ServePublish,       ///< snapshot tile freeze + seal/publish (src/serve/)
    ServeQuery,         ///< query evaluation on published snapshots
    ServeCache,         ///< result-cache lookups, inserts and invalidation
    ServeAdmit,         ///< queue residence of an admitted query (submit→drain)
    Other,
    kCount
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Phase labels, indexed by Phase (matches the legends of Fig. 7 / Fig. 12).
/// The array length is pinned to kPhaseCount, so adding an enumerator
/// without a label is a compile error rather than garbage in traces —
/// tests/par/test_profiler.cpp additionally proves every entry is distinct
/// and non-empty.
inline constexpr std::array<std::string_view, kPhaseCount> kPhaseNames = {
    "Redist. sort",     // RedistSort
    "Redist. comm.",    // RedistComm
    "Mem. management",  // MemManagement
    "Local construct.", // LocalConstruct
    "Local addition",   // LocalAddition
    "Send/Recv",        // SendRecv
    "Bcast",            // Bcast
    "Local Mult.",      // LocalMult
    "Scatter",          // Scatter
    "Reduce Scatter",   // ReduceScatter
    "Stream drain",     // StreamDrain
    "Stream apply",     // StreamApply
    "Analytics maint.", // Analytics
    "Persist log",      // PersistLog
    "Persist ckpt.",    // PersistCheckpoint
    "Persist recover",  // PersistRecover
    "Serve publish",    // ServePublish
    "Serve query",      // ServeQuery
    "Serve cache",      // ServeCache
    "Serve admit",      // ServeAdmit
    "Other",            // Other
};
static_assert(kPhaseNames.size() == kPhaseCount,
              "every Phase enumerator needs a label in kPhaseNames");

/// Human-readable phase label (out-of-range values render as "?").
[[nodiscard]] constexpr std::string_view phase_name(Phase phase) {
    const auto idx = static_cast<std::size_t>(phase);
    return idx < kPhaseCount ? kPhaseNames[idx] : std::string_view("?");
}

/// Direction of a Chrome-trace flow binding attached to a span. A Start
/// span is a flow producer (rendered as a `ph:"s"` event), a Finish span a
/// consumer (`ph:"f"`); spans sharing a flow id are drawn connected by
/// Perfetto. The serving layer uses `snapshot version + 1` as the flow id,
/// so every query span points back at the publish span that produced the
/// snapshot it was answered from.
enum class FlowDir : std::uint8_t { None = 0, Start, Finish };

/// One completed Scope bracket, as recorded in a trace ring.
struct TraceSpan {
    Phase phase = Phase::Other;
    std::uint64_t start_ns = 0;  ///< steady-clock ns (same base process-wide)
    std::uint64_t dur_ns = 0;
    std::int64_t epoch = -1;  ///< engine version being applied, -1 = none
    int rank = -1;            ///< -1 = non-rank thread (producers, pools)
    std::uint32_t tid = 0;    ///< small process-local thread id

    // Request-scoped tags (set via Profiler::set_thread_query /
    // set_thread_snapshot_version by the serving layer; zero/-1 = unset).
    std::uint64_t qid = 0;        ///< query id minted at submit(), 0 = none
    int qclass = -1;              ///< query-class index, -1 = none
    std::int64_t snapshot_version = -1;  ///< snapshot answering, -1 = none
    std::uint64_t flow_id = 0;    ///< flow-event binding id, 0 = none
    FlowDir flow = FlowDir::None;
};

/// Merged result of collect_trace(): spans from every thread's ring plus
/// the number of spans lost to ring wraparound.
struct TraceDump {
    std::vector<TraceSpan> spans;
    std::uint64_t dropped = 0;
};

class Profiler {
public:
    /// Globally enables/disables phase timing (off by default).
    static void set_enabled(bool enabled);
    [[nodiscard]] static bool enabled();

    /// Zeroes the accumulated totals of every thread.
    static void reset();

    /// Sum of the time spent in `phase` across all threads, in seconds.
    [[nodiscard]] static double total_seconds(Phase phase);

    // -- tracing -------------------------------------------------------------

    /// Globally enables/disables span capture (off by default, independent
    /// of the timing switch).
    static void set_trace_enabled(bool enabled);
    [[nodiscard]] static bool trace_enabled();

    /// Ring capacity (spans per thread) for rings created AFTER the call;
    /// existing rings keep their size. Default 8192.
    static void set_trace_capacity(std::size_t spans);

    /// Tags every span subsequently emitted by the calling thread.
    /// World::run stamps the rank; the epoch engine stamps the epoch.
    static void set_thread_rank(int rank);
    static void set_thread_epoch(std::int64_t epoch);

    /// Request-scoped tags: the query executor stamps the query id/class
    /// around each query's processing (clear with (0, -1)), and both sides
    /// of the serving layer stamp the snapshot version involved (clear with
    /// -1). Like rank/epoch these are plain thread-locals copied into every
    /// span the thread emits while set.
    static void set_thread_query(std::uint64_t qid, int qclass);
    static void set_thread_snapshot_version(std::int64_t version);

    /// Emits one span directly (bypassing Scope) with the thread's current
    /// tags — used for brackets whose start time predates the emitting call,
    /// e.g. a query's queue residence recorded at drain with the submit-time
    /// timestamp. No-op while tracing is off.
    static void emit_span(Phase phase, std::chrono::steady_clock::time_point start,
                          std::uint64_t dur_ns);

    /// Spans from all rings (completed threads' rings included), sorted by
    /// start time. Safe concurrently with emitters.
    [[nodiscard]] static TraceDump collect_trace();

    /// Empties every ring and the dropped count.
    static void clear_trace();

    /// RAII bracket adding the scope's elapsed time to `phase` on the current
    /// thread, and emitting a trace span when tracing is on. No-op while
    /// both switches are off.
    class Scope {
    public:
        explicit Scope(Phase phase);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

        /// Attaches a flow binding to the span this scope will emit.
        /// obs::to_chrome_trace renders matched Start/Finish pairs as
        /// `ph:"s"`/`ph:"f"` flow events anchored to the two spans.
        void set_flow(std::uint64_t id, FlowDir dir);

    private:
        Phase phase_;
        bool timing_;
        bool tracing_;
        std::chrono::steady_clock::time_point start_;
        std::uint64_t flow_id_ = 0;
        FlowDir flow_ = FlowDir::None;
    };
};

}  // namespace dsg::par
