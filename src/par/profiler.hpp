// Per-phase wall-clock accounting used to regenerate the paper's breakdown
// figures (Fig. 7: insertion phases; Fig. 12: dynamic SpGEMM phases).
//
// Library code brackets its phases with Profiler::Scope; accounting is
// per-thread (each rank is a thread) and aggregated on demand. Disabled by
// default so the hot paths pay a single relaxed atomic load.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string_view>

namespace dsg::par {

/// Phases instrumented across the library. The first five correspond to the
/// bars of the paper's Fig. 7, the next five to Fig. 12; the two Stream
/// phases bracket the streaming ingestion engine (src/stream/), Analytics
/// covers the epoch-subscribed maintainers (src/analytics/), the Persist
/// phases the durability layer (src/persist/), and the Serve phases the
/// query-serving subsystem (src/serve/).
enum class Phase : int {
    RedistSort = 0,     ///< counting/comparison sort by destination rank
    RedistComm,         ///< alltoallv exchanges of update tuples
    MemManagement,      ///< allocation/growth of local structures
    LocalConstruct,     ///< building local static layouts (CSR/DCSR)
    LocalAddition,      ///< applying updates to local dynamic matrices
    SendRecv,           ///< initial transpose send/receive (Algorithm 1/2)
    Bcast,              ///< row/column block broadcasts
    LocalMult,          ///< local Gustavson multiplications
    Scatter,            ///< distributing reduction inputs
    ReduceScatter,      ///< sparse tree reduction of partial results
    StreamDrain,        ///< waiting on / draining the per-rank update queue
    StreamApply,        ///< epoch application (A* build + ADD/MERGE/MASK)
    Analytics,          ///< epoch-hook maintainer updates (src/analytics/)
    PersistLog,         ///< write-ahead op-log appends + fsyncs (src/persist/)
    PersistCheckpoint,  ///< epoch-consistent snapshot + manifest commit
    PersistRecover,     ///< checkpoint load + log-tail replay on restart
    ServePublish,       ///< snapshot tile freeze + seal/publish (src/serve/)
    ServeQuery,         ///< query evaluation on published snapshots
    ServeCache,         ///< result-cache lookups, inserts and invalidation
    Other,
    kCount
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Human-readable phase label (matches the legends of Fig. 7 / Fig. 12).
std::string_view phase_name(Phase phase);

class Profiler {
public:
    /// Globally enables/disables phase timing (off by default).
    static void set_enabled(bool enabled);
    [[nodiscard]] static bool enabled();

    /// Zeroes the accumulated totals of every thread.
    static void reset();

    /// Sum of the time spent in `phase` across all threads, in seconds.
    [[nodiscard]] static double total_seconds(Phase phase);

    /// RAII bracket adding the scope's elapsed time to `phase` on the current
    /// thread. No-op while the profiler is disabled.
    class Scope {
    public:
        explicit Scope(Phase phase);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Phase phase_;
        bool active_;
        std::chrono::steady_clock::time_point start_;
    };
};

}  // namespace dsg::par
