#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace dsg::par {

int ThreadPool::default_thread_count() {
    if (const char* env = std::getenv("DSG_THREADS")) {
        const int t = std::atoi(env);
        if (t >= 1) return t;
    }
    return 1;
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lk(mx_);
        shutdown_ = true;
        ++generation_;
    }
    start_cv_.notify_all();
    for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunks(int thread_index) {
    for (;;) {
        const std::size_t begin =
            next_chunk_.fetch_add(chunk_size_, std::memory_order_relaxed);
        if (begin >= job_n_) break;
        const std::size_t end = std::min(begin + chunk_size_, job_n_);
        try {
            (*job_)(thread_index, begin, end);
        } catch (...) {
            std::lock_guard lk(mx_);
            if (!job_error_) job_error_ = std::current_exception();
        }
    }
}

void ThreadPool::worker_loop(int worker_index) {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock lk(mx_);
            start_cv_.wait(lk, [&] { return generation_ != seen; });
            seen = generation_;
            if (shutdown_) return;
        }
        run_chunks(worker_index);
        {
            std::lock_guard lk(mx_);
            if (--outstanding_ == 0) done_cv_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(int, std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_ == 1 || n == 1) {
        // Inline execution touches no shared job state, so concurrent
        // callers need no serialization on this path.
        fn(0, 0, n);
        return;
    }
    std::lock_guard submit_lock(submit_mx_);
    {
        std::lock_guard lk(mx_);
        job_ = &fn;
        job_n_ = n;
        // 4 chunks per thread for mild load balancing without much contention.
        chunk_size_ = std::max<std::size_t>(
            1, n / (static_cast<std::size_t>(threads_) * 4));
        next_chunk_.store(0, std::memory_order_relaxed);
        outstanding_ = threads_ - 1;
        job_error_ = nullptr;
        ++generation_;
    }
    start_cv_.notify_all();
    run_chunks(0);
    std::unique_lock lk(mx_);
    done_cv_.wait(lk, [&] { return outstanding_ == 0; });
    job_ = nullptr;
    if (job_error_) std::rethrow_exception(job_error_);
}

}  // namespace dsg::par
