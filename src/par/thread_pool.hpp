// Intra-rank shared-memory parallelism (the paper's OpenMP substitute).
//
// Each rank owns a ThreadPool; kernels partition their row ranges across the
// pool with parallel_for. The pool is deliberately simple: persistent workers,
// one job at a time, chunked self-scheduling. With threads == 1 everything
// runs inline on the calling thread (the default on this single-core host;
// set DSG_THREADS or pass a count to exercise the parallel paths).
//
// parallel_for may be called from multiple threads: concurrent callers
// serialize on a submission mutex, so one pool can be SHARED between the
// epoch engine's apply path and the query executor's batch evaluation
// (src/serve/) without external coordination. Jobs still run one at a time —
// sharing trades latency under contention for not oversubscribing the host
// with a second set of workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsg::par {

class ThreadPool {
public:
    /// Creates a pool executing work on `threads` threads total (the calling
    /// thread participates; threads - 1 workers are spawned).
    explicit ThreadPool(int threads = default_thread_count());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int thread_count() const { return threads_; }

    /// Invokes fn(thread_index, begin, end) over a partition of [0, n) into
    /// contiguous chunks; blocks until all chunks complete. thread_index is
    /// in [0, thread_count()). Exceptions from fn propagate to the caller.
    /// Safe to call from multiple threads concurrently (jobs serialize).
    void parallel_for(std::size_t n,
                      const std::function<void(int, std::size_t, std::size_t)>& fn);

    /// Reads DSG_THREADS from the environment (default 1).
    static int default_thread_count();

private:
    void worker_loop(int worker_index);
    void run_chunks(int thread_index);

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex submit_mx_;  // serializes concurrent parallel_for callers
    std::mutex mx_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;

    // Current job (valid while outstanding_ > 0).
    const std::function<void(int, std::size_t, std::size_t)>* job_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t chunk_size_ = 0;
    std::atomic<std::size_t> next_chunk_{0};
    int outstanding_ = 0;
    std::exception_ptr job_error_;
};

}  // namespace dsg::par
