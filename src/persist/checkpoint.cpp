#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace dsg::persist {

namespace {

void fsync_path(const std::filesystem::path& path, int flags) {
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0)
        throw PersistError("cannot open " + path.string() + " for fsync: " +
                           std::strerror(errno));
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        throw PersistError("fsync " + path.string() + ": " +
                           std::strerror(errno));
}

}  // namespace

std::filesystem::path manifest_path(const std::filesystem::path& dir) {
    return dir / "MANIFEST";
}

std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::uint64_t version, int rank) {
    char name[64];
    std::snprintf(name, sizeof name, "ckpt-v%llu-r%d.ckpt",
                  static_cast<unsigned long long>(version), rank);
    return dir / name;
}

void write_file_atomic(const std::filesystem::path& path, std::uint32_t magic,
                       const par::Buffer& payload) {
    par::Buffer framed;
    par::BufferWriter w(framed);
    w.write<std::uint32_t>(magic);
    w.write<std::uint32_t>(kFormatVersion);
    w.write<std::uint64_t>(payload.size());
    if (!payload.empty()) {
        const std::size_t old = framed.size();
        framed.resize(old + payload.size());
        std::memcpy(framed.data() + old, payload.data(), payload.size());
    }
    w.write<std::uint32_t>(crc32(payload));

    const auto tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw PersistError("cannot create " + tmp + ": " +
                               std::strerror(errno));
        out.write(reinterpret_cast<const char*>(framed.data()),
                  static_cast<std::streamsize>(framed.size()));
        if (!out)
            throw PersistError("cannot write " + tmp + ": " +
                               std::strerror(errno));
    }
    fsync_path(tmp, O_WRONLY);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw PersistError("cannot rename " + tmp + " over " + path.string() +
                           ": " + ec.message());
    // The rename must itself be durable before anything relies on the new
    // file being the one recovery will see.
    fsync_path(path.parent_path().empty() ? "." : path.parent_path(),
               O_RDONLY | O_DIRECTORY);
}

std::optional<par::Buffer> read_framed_file(const std::filesystem::path& path,
                                            std::uint32_t magic) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // Only genuine absence may read as "no file" — recover() treats a
        // missing manifest as a cold start, so a transient open failure
        // (permissions, EMFILE, read-only remount) must error loudly
        // instead of silently recovering to an empty matrix.
        if (!std::filesystem::exists(path)) return std::nullopt;
        throw PersistError("cannot open " + path.string() + ": " +
                           std::strerror(errno));
    }
    par::Buffer raw;
    in.seekg(0, std::ios::end);
    raw.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!in)
        throw PersistError("cannot read " + path.string() + ": " +
                           std::strerror(errno));

    try {
        par::BufferReader r(raw);
        if (r.read<std::uint32_t>() != magic)
            throw PersistError("bad magic in " + path.string());
        if (const auto format = r.read<std::uint32_t>();
            format != kFormatVersion)
            throw PersistError("unsupported format " + std::to_string(format) +
                               " in " + path.string());
        const auto payload_bytes = r.read<std::uint64_t>();
        if (payload_bytes > r.remaining() ||
            r.remaining() - payload_bytes != sizeof(std::uint32_t))
            throw PersistError("bad framing in " + path.string());
        par::Buffer payload(raw.begin() + static_cast<std::ptrdiff_t>(r.position()),
                            raw.begin() + static_cast<std::ptrdiff_t>(
                                              r.position() + payload_bytes));
        r.skip(static_cast<std::size_t>(payload_bytes));
        if (r.read<std::uint32_t>() != crc32(payload))
            throw PersistError("CRC mismatch in " + path.string());
        return payload;
    } catch (const par::TruncatedBufferError&) {
        throw PersistError("truncated frame in " + path.string());
    }
}

void write_manifest(const std::filesystem::path& dir, const Manifest& m) {
    par::Buffer payload;
    par::BufferWriter w(payload);
    w.write<std::uint64_t>(m.version);
    w.write<std::int32_t>(m.grid_rows);
    w.write<std::int32_t>(m.grid_cols);
    w.write<sparse::index_t>(m.nrows);
    w.write<sparse::index_t>(m.ncols);
    w.write_vector(m.log);
    write_file_atomic(manifest_path(dir), kManifestMagic, payload);
}

std::optional<Manifest> read_manifest(const std::filesystem::path& dir) {
    auto payload = read_framed_file(manifest_path(dir), kManifestMagic);
    if (!payload) return std::nullopt;
    try {
        par::BufferReader r(*payload);
        Manifest m;
        m.version = r.read<std::uint64_t>();
        m.grid_rows = r.read<std::int32_t>();
        m.grid_cols = r.read<std::int32_t>();
        m.nrows = r.read<sparse::index_t>();
        m.ncols = r.read<sparse::index_t>();
        m.log = r.read_vector<LogPosition>();
        if (!r.exhausted())
            throw PersistError("manifest carries trailing bytes");
        if (m.grid_rows <= 0 || m.grid_cols <= 0 ||
            m.log.size() != static_cast<std::size_t>(m.grid_rows) *
                                static_cast<std::size_t>(m.grid_cols))
            throw PersistError("manifest log positions disagree with grid");
        return m;
    } catch (const par::TruncatedBufferError&) {
        throw PersistError("truncated manifest in " + dir.string());
    }
}

std::size_t delete_checkpoints_below(const std::filesystem::path& dir,
                                     int rank, std::uint64_t below) {
    std::size_t removed = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const auto name = entry.path().filename().string();
        unsigned long long version = 0;
        int file_rank = -1;
        int consumed = 0;
        if (std::sscanf(name.c_str(), "ckpt-v%llu-r%d.ckpt%n", &version,
                        &file_rank, &consumed) != 2 ||
            static_cast<std::size_t>(consumed) != name.size())
            continue;
        if (file_rank != rank || version >= below) continue;
        std::error_code ec;
        if (std::filesystem::remove(entry.path(), ec)) ++removed;
    }
    return removed;
}

}  // namespace dsg::persist
