// Epoch-consistent checkpoints of the distributed dynamic matrix
// (docs/ARCHITECTURE.md, "The durability layer").
//
// A checkpoint at version V is one file per rank — the rank's DCSR-encoded
// local tile plus an opaque extra-state blob (the analytics maintainers'
// state, when subscribed) — and one manifest. The per-rank files carry a
// CRC and are written tmp + rename; the manifest, also tmp + rename, is the
// COMMIT POINT: it records {version, grid shape, per-rank log position}, and
// until it lands, recovery keeps using the previous checkpoint. A crash
// anywhere inside checkpointing therefore never leaves a half-trusted
// snapshot, at the cost of one stale file generation that the next
// successful checkpoint deletes.
//
// The manifest's per-rank log position (segment, offset) is where replay
// resumes: frames at or past it hold exactly the epochs younger than V.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "par/buffer.hpp"
#include "persist/op_log.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/types.hpp"

namespace dsg::persist {

inline constexpr std::uint32_t kCheckpointMagic = 0x43475344;  // "DSGC"
inline constexpr std::uint32_t kManifestMagic = 0x4d475344;    // "DSGM"

/// Where one rank's log tail starts relative to a checkpoint.
struct LogPosition {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;

    friend bool operator==(const LogPosition&, const LogPosition&) = default;
};

/// The commit record of the latest durable checkpoint.
struct Manifest {
    std::uint64_t version = 0;     ///< engine version the checkpoint captured
    std::int32_t grid_rows = 0;    ///< process grid shape (p = rows * cols)
    std::int32_t grid_cols = 0;
    sparse::index_t nrows = 0;
    sparse::index_t ncols = 0;
    std::vector<LogPosition> log;  ///< per world rank, size rows * cols
};

[[nodiscard]] std::filesystem::path manifest_path(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path checkpoint_path(
    const std::filesystem::path& dir, std::uint64_t version, int rank);

/// Writes `payload` framed as {magic, format, length, payload, crc} to
/// `path` via tmp + rename + fsync (file and directory) — atomic on POSIX.
void write_file_atomic(const std::filesystem::path& path, std::uint32_t magic,
                       const par::Buffer& payload);

/// Reads a file framed by write_file_atomic back, validating magic, format,
/// length and CRC. nullopt when the file does not exist; PersistError when
/// it exists but does not validate.
std::optional<par::Buffer> read_framed_file(const std::filesystem::path& path,
                                            std::uint32_t magic);

/// Commits `m` as the durability directory's manifest (the commit point).
void write_manifest(const std::filesystem::path& dir, const Manifest& m);

/// The committed manifest, or nullopt for a cold directory.
std::optional<Manifest> read_manifest(const std::filesystem::path& dir);

/// Unlinks this rank's checkpoint files older than `below` (run after a
/// newer manifest committed). Returns the number removed.
std::size_t delete_checkpoints_below(const std::filesystem::path& dir,
                                     int rank, std::uint64_t below);

// -- per-rank checkpoint files -----------------------------------------------

template <typename T>
    requires std::is_trivially_copyable_v<T>
void write_checkpoint_file(const std::filesystem::path& dir,
                           std::uint64_t version, int rank, int grid_rows,
                           int grid_cols, sparse::index_t nrows,
                           sparse::index_t ncols,
                           const sparse::DynamicMatrix<T>& tile,
                           const par::Buffer& extra_state) {
    par::Buffer payload;
    par::BufferWriter w(payload);
    w.write<std::uint64_t>(version);
    w.write<std::int32_t>(rank);
    w.write<std::int32_t>(grid_rows);
    w.write<std::int32_t>(grid_cols);
    w.write<sparse::index_t>(nrows);
    w.write<sparse::index_t>(ncols);
    tile.serialize(payload);
    w.write_vector(extra_state);
    write_file_atomic(checkpoint_path(dir, version, rank), kCheckpointMagic,
                      payload);
}

/// One rank's restored checkpoint: the tile plus the opaque extra blob.
template <typename T>
struct CheckpointTile {
    sparse::DynamicMatrix<T> tile;
    par::Buffer extra_state;
};

template <typename T>
    requires std::is_trivially_copyable_v<T>
[[nodiscard]] CheckpointTile<T> read_checkpoint_file(
    const std::filesystem::path& dir, std::uint64_t version, int rank,
    int grid_rows, int grid_cols, sparse::index_t nrows,
    sparse::index_t ncols) {
    const auto path = checkpoint_path(dir, version, rank);
    auto payload = read_framed_file(path, kCheckpointMagic);
    if (!payload)
        throw PersistError("manifest names checkpoint v" +
                           std::to_string(version) + " but " + path.string() +
                           " is missing");
    par::BufferReader r(*payload);
    const auto got_version = r.read<std::uint64_t>();
    const auto got_rank = r.read<std::int32_t>();
    const auto got_rows = r.read<std::int32_t>();
    const auto got_cols = r.read<std::int32_t>();
    const auto got_nrows = r.read<sparse::index_t>();
    const auto got_ncols = r.read<sparse::index_t>();
    if (got_version != version || got_rank != rank || got_rows != grid_rows ||
        got_cols != grid_cols || got_nrows != nrows || got_ncols != ncols)
        throw PersistError("checkpoint " + path.string() +
                           " disagrees with the manifest (version/rank/grid "
                           "shape mismatch)");
    CheckpointTile<T> out;
    out.tile = sparse::DynamicMatrix<T>::deserialize(r);
    out.extra_state = r.read_vector<std::byte>();
    if (!r.exhausted())
        throw PersistError("checkpoint " + path.string() +
                           " carries trailing bytes");
    return out;
}

}  // namespace dsg::persist
