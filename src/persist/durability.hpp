// DurabilityManager: the glue that makes a streaming engine restartable
// (docs/ARCHITECTURE.md, "The durability layer").
//
// One manager per rank rides the engine's two persistence hooks:
//  - WAL hook (pre-apply): appends the epoch's EpochDelta to the rank's op
//    log, fsyncing at the configured cadence — a crash can cost at most
//    the last `fsync_every` epochs, always a clean suffix (never torn,
//    never reordered);
//  - checkpoint hook (post-apply, post-analytics, under the writer lock):
//    every `checkpoint_stride` applied epochs, snapshots the rank's tile
//    (plus the analytics hub's state when subscribed), rotates the log to a
//    fresh segment, commits the manifest on rank 0, and compacts — deleting
//    fully-covered segments and superseded checkpoint files.
//
// Construction and checkpointing are collective (the checkpoint gathers log
// positions and barriers around the manifest commit), exactly like the
// engine hooks that drive them. Construct the manager AFTER the engine and
// after recovery (recover() replays with hooks unset, so replayed epochs
// are not re-logged); scoping then destroys it before the engine, which is
// required — the hooks hold a pointer to the manager.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <utility>

#include "analytics/maintainer.hpp"
#include "core/dist_matrix.hpp"
#include "obs/metrics.hpp"
#include "par/profiler.hpp"
#include "persist/checkpoint.hpp"
#include "persist/op_log.hpp"
#include "stream/epoch_engine.hpp"

namespace dsg::persist {

struct PersistConfig {
    std::filesystem::path dir;  ///< durability directory (shared by all ranks)
    /// fsync the op log every N logged epochs (1 = every epoch; 0 = only at
    /// checkpoints and shutdown). The window of epochs that can be lost to a
    /// crash — never torn, never reordered — is bounded by this.
    std::size_t fsync_every = 16;
    /// Take a checkpoint every N applied epochs (by version, so all ranks
    /// agree); 0 disables checkpoints (the log then grows unboundedly).
    std::uint64_t checkpoint_stride = 64;
    /// Include the subscribed AnalyticsHub's state in checkpoints so
    /// recovery restores maintained values bit-identically.
    bool include_analytics = true;
};

/// One rank's durability accounting.
struct PersistStats {
    std::uint64_t epochs_logged = 0;
    std::uint64_t bytes_logged = 0;    ///< framed WAL bytes appended
    std::uint64_t fsyncs = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpoint_bytes = 0;  ///< bytes of checkpoint files written
    double log_ms = 0;         ///< total WAL append + fsync time
    double checkpoint_ms = 0;  ///< total checkpoint time (incl. collectives)
};

template <sparse::Semiring SR>
class DurabilityManager {
public:
    using T = typename SR::value_type;
    using Clock = std::chrono::steady_clock;

    enum class Start {
        Fresh,   ///< wipe any previous durable state and start at segment 0
        Resume,  ///< append after a recover() on the same directory
    };

    /// Collective. `hub` (optional) must be the hub attached to `engine` —
    /// its state is then checkpointed alongside the matrix.
    DurabilityManager(stream::EpochEngine<SR>& engine,
                      core::DistDynamicMatrix<T>& A, PersistConfig cfg,
                      Start start,
                      analytics::AnalyticsHub<T>* hub = nullptr)
        : engine_(&engine), A_(&A), cfg_(std::move(cfg)), hub_(hub) {
        auto& world = A_->shape().grid().world();
        rank_ = world.rank();
        if (rank_ == 0) std::filesystem::create_directories(cfg_.dir);
        world.barrier();

        if (start == Start::Fresh) {
            // Each rank wipes its own files; rank 0 retires the manifest
            // FIRST so a crash mid-wipe cannot leave a manifest pointing at
            // deleted files.
            if (rank_ == 0)
                std::filesystem::remove(manifest_path(cfg_.dir));
            world.barrier();
            delete_segments_below(cfg_.dir, rank_,
                                  ~std::uint64_t{0});
            delete_checkpoints_below(cfg_.dir, rank_, ~std::uint64_t{0});
            world.barrier();
            log_ = OpLogWriter::create(log_path(cfg_.dir, rank_, 0), rank_, 0);
        } else {
            const auto seg = latest_segment(cfg_.dir, rank_);
            log_ = seg ? OpLogWriter::append_to(log_path(cfg_.dir, rank_, *seg),
                                                rank_)
                       : OpLogWriter::create(log_path(cfg_.dir, rank_, 0),
                                             rank_, 0);
        }

        engine_->set_wal_hook(
            [this](const stream::EpochDelta<T>& delta) { on_epoch(delta); });
        engine_->set_checkpoint_hook(
            [this](std::uint64_t version) { maybe_checkpoint(version); });

        // Registry instruments (fetched once; the WAL path is per-epoch
        // hot). Append and fsync latencies are separate histograms — the
        // fsync tail is the quantity ROADMAP item 5(c) gates on.
        auto& reg = obs::registry();
        obs_append_ns_ = &reg.histogram("persist_wal_append_ns");
        obs_fsync_ns_ = &reg.histogram("persist_wal_fsync_ns");
        obs_ckpt_ns_ = &reg.histogram("persist_checkpoint_ns");
        obs_wal_bytes_ = &reg.counter("persist_wal_bytes");
        obs_wal_epochs_ = &reg.counter("persist_wal_epochs");
        obs_fsyncs_ = &reg.counter("persist_wal_fsyncs");
        obs_ckpts_ = &reg.counter("persist_checkpoints");
        obs_ckpt_bytes_ = &reg.counter("persist_checkpoint_bytes");
    }

    DurabilityManager(const DurabilityManager&) = delete;
    DurabilityManager& operator=(const DurabilityManager&) = delete;

    ~DurabilityManager() {
        try {
            log_->sync();  // graceful shutdown: nothing rides the page cache
        } catch (...) {    // NOLINT(bugprone-empty-catch)
        }
        engine_->set_wal_hook(nullptr);
        engine_->set_checkpoint_hook(nullptr);
    }

    [[nodiscard]] const PersistStats& stats() const { return stats_; }
    [[nodiscard]] const PersistConfig& config() const { return cfg_; }

    /// Makes everything logged so far durable immediately.
    void sync() { timed_sync(); }

    /// TEST ONLY — models a kill -9 at this instant: everything not yet
    /// flushed by the fsync cadence (or an explicit sync) is dropped, like
    /// the page cache on power loss. The manager must not be used after.
    void simulate_crash() {
        log_->abandon();
        engine_->set_wal_hook(nullptr);
        engine_->set_checkpoint_hook(nullptr);
    }

private:
    static double ms_since(Clock::time_point t0) {
        return std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    }
    static std::uint64_t ns_since(Clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
    }

    /// One timed, counted fsync of the op log.
    void timed_sync() {
        const auto t0 = Clock::now();
        log_->sync();
        ++stats_.fsyncs;
        obs_fsyncs_->add(1);
        obs_fsync_ns_->record(ns_since(t0));
    }

    void on_epoch(const stream::EpochDelta<T>& delta) {
        par::Profiler::Scope scope(par::Phase::PersistLog);
        const auto t0 = Clock::now();
        const auto before = log_->offset();
        log_->append_epoch(delta.version, delta.adds, delta.merges,
                           delta.masks);
        const auto appended = log_->offset() - before;
        stats_.bytes_logged += appended;
        ++stats_.epochs_logged;
        obs_append_ns_->record(ns_since(t0));
        obs_wal_bytes_->add(appended);
        obs_wal_epochs_->add(1);
        if (cfg_.fsync_every > 0 && ++since_sync_ >= cfg_.fsync_every) {
            timed_sync();
            since_sync_ = 0;
        }
        stats_.log_ms += ms_since(t0);
    }

    void maybe_checkpoint(std::uint64_t version) {
        if (cfg_.checkpoint_stride == 0 ||
            version % cfg_.checkpoint_stride != 0)
            return;
        checkpoint(version);
    }

    /// Collective: all ranks reach this for the same versions because the
    /// stride test is on the (globally agreed) engine version.
    void checkpoint(std::uint64_t version) {
        par::Profiler::Scope scope(par::Phase::PersistCheckpoint);
        const auto t0 = Clock::now();
        auto& world = A_->shape().grid().world();
        const auto& shape = A_->shape();

        // 1. Every epoch the checkpoint covers must be durable first.
        timed_sync();

        // 2. This rank's snapshot file (tmp + rename + fsync).
        par::Buffer extra;
        if (hub_ != nullptr && cfg_.include_analytics) hub_->save_state(extra);
        write_checkpoint_file<T>(cfg_.dir, version, rank_,
                                 shape.grid().rows(), shape.grid().cols(),
                                 shape.nrows(), shape.ncols(), A_->local(),
                                 extra);
        const auto file_bytes = std::filesystem::file_size(
            checkpoint_path(cfg_.dir, version, rank_));
        stats_.checkpoint_bytes += file_bytes;
        obs_ckpt_bytes_->add(file_bytes);

        // 3. Rotate to a fresh segment; the manifest records the new
        //    segment's start as this rank's replay position. The segment's
        //    header content is fsynced here; its directory entry becomes
        //    durable with the manifest's directory fsync below.
        const std::uint64_t old_segment = log_->segment();
        log_ = OpLogWriter::create(
            log_path(cfg_.dir, rank_, old_segment + 1), rank_,
            old_segment + 1);
        log_->sync();
        since_sync_ = 0;

        // 4. Commit point: rank 0 writes the manifest once every rank's
        //    checkpoint file and fresh segment exist (the allgather is the
        //    synchronization).
        const LogPosition mine{log_->segment(), log_->offset()};
        par::Buffer msg;
        par::BufferWriter w(msg);
        w.write(mine);
        auto all = world.allgather(std::move(msg));
        if (rank_ == 0) {
            Manifest m;
            m.version = version;
            m.grid_rows = shape.grid().rows();
            m.grid_cols = shape.grid().cols();
            m.nrows = shape.nrows();
            m.ncols = shape.ncols();
            m.log.resize(all.size());
            for (std::size_t r = 0; r < all.size(); ++r) {
                par::BufferReader reader(all[r]);
                m.log[r] = reader.read<LogPosition>();
            }
            write_manifest(cfg_.dir, m);
        }
        world.barrier();  // no compaction before the manifest is durable

        // 5. Compaction: everything at or below the old segment is covered
        //    by this checkpoint, as is every older checkpoint file.
        delete_segments_below(cfg_.dir, rank_, old_segment + 1);
        delete_checkpoints_below(cfg_.dir, rank_, version);

        ++stats_.checkpoints;
        obs_ckpts_->add(1);
        obs_ckpt_ns_->record(ns_since(t0));
        stats_.checkpoint_ms += ms_since(t0);
    }

    stream::EpochEngine<SR>* engine_;
    core::DistDynamicMatrix<T>* A_;
    PersistConfig cfg_;
    analytics::AnalyticsHub<T>* hub_;
    int rank_ = 0;
    std::optional<OpLogWriter> log_;
    std::size_t since_sync_ = 0;
    PersistStats stats_;

    // Registry instruments (fetched once in the ctor; see there).
    obs::Histogram* obs_append_ns_ = nullptr;
    obs::Histogram* obs_fsync_ns_ = nullptr;
    obs::Histogram* obs_ckpt_ns_ = nullptr;
    obs::Counter* obs_wal_bytes_ = nullptr;
    obs::Counter* obs_wal_epochs_ = nullptr;
    obs::Counter* obs_fsyncs_ = nullptr;
    obs::Counter* obs_ckpts_ = nullptr;
    obs::Counter* obs_ckpt_bytes_ = nullptr;
};

}  // namespace dsg::persist
