#include "persist/op_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

namespace dsg::persist {

namespace {

/// Kernel hand-off threshold: appends accumulate in user space until this
/// many bytes are pending (or an explicit flush/sync), keeping the per-epoch
/// WAL cost a memcpy.
constexpr std::size_t kFlushThreshold = std::size_t{1} << 20;

constexpr std::uint64_t kHeaderBytes = kLogHeaderBytes;
constexpr std::uint64_t kFrameOverhead = kLogFrameOverhead;

[[noreturn]] void fail_errno(const std::string& what,
                             const std::filesystem::path& path) {
    throw PersistError(what + " " + path.string() + ": " +
                       std::strerror(errno));
}

void write_all(int fd, const std::byte* data, std::size_t size,
               const char* what) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw PersistError(std::string(what) + ": " +
                               std::strerror(errno));
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
}

// CRC-32C (Castagnoli): the WAL checksums every epoch on the engine's
// critical path, so this is a hot kernel, not a formality. x86-64 hosts
// with SSE4.2 use the crc32 instruction (runtime-detected); everything
// else takes a slicing-by-8 table walk (~8x the classic byte loop). Both
// compute the same function, so durable state moves between hosts.
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
    static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
        std::array<std::array<std::uint32_t, 256>, 8> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i)
            for (std::size_t s = 1; s < 8; ++s)
                t[s][i] = t[0][t[s - 1][i] & 0xffu] ^ (t[s - 1][i] >> 8);
        return t;
    }();
    return tables;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const std::byte* data, std::size_t size, std::uint32_t seed) {
    std::uint64_t c = seed;
    while (size >= 8) {
        std::uint64_t word;
        std::memcpy(&word, data, 8);
        c = __builtin_ia32_crc32di(c, word);
        data += 8;
        size -= 8;
    }
    auto c32 = static_cast<std::uint32_t>(c);
    for (std::size_t k = 0; k < size; ++k)
        c32 = __builtin_ia32_crc32qi(c32, static_cast<unsigned char>(data[k]));
    return c32;
}

bool have_sse42() {
    static const bool b = __builtin_cpu_supports("sse4.2");
    return b;
}
#endif

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t size) {
#if defined(__x86_64__)
    if (have_sse42()) return crc32c_hw(data, size, 0xffffffffu) ^ 0xffffffffu;
#endif
    const auto& t = crc_tables();
    std::uint32_t c = 0xffffffffu;
    while (size >= 8) {
        std::uint64_t word;
        std::memcpy(&word, data, 8);  // little-endian hosts only: the
                                      // library targets x86/ARM Linux, and
                                      // this is per-machine durable state,
                                      // not an archive format
        word ^= c;
        c = t[7][word & 0xffu] ^ t[6][(word >> 8) & 0xffu] ^
            t[5][(word >> 16) & 0xffu] ^ t[4][(word >> 24) & 0xffu] ^
            t[3][(word >> 32) & 0xffu] ^ t[2][(word >> 40) & 0xffu] ^
            t[1][(word >> 48) & 0xffu] ^ t[0][(word >> 56) & 0xffu];
        data += 8;
        size -= 8;
    }
    for (std::size_t k = 0; k < size; ++k)
        c = t[0][(c ^ static_cast<std::uint8_t>(data[k])) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::filesystem::path log_path(const std::filesystem::path& dir, int rank,
                               std::uint64_t segment) {
    char name[64];
    std::snprintf(name, sizeof name, "oplog-r%d-s%llu.log", rank,
                  static_cast<unsigned long long>(segment));
    return dir / name;
}

// -- writer ------------------------------------------------------------------

OpLogWriter OpLogWriter::create(const std::filesystem::path& path, int rank,
                                std::uint64_t segment) {
    OpLogWriter w;
    w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (w.fd_ < 0) fail_errno("cannot create log segment", path);
    w.segment_ = segment;

    par::Buffer header;
    par::BufferWriter hw(header);
    hw.write<std::uint32_t>(kLogMagic);
    hw.write<std::uint32_t>(kFormatVersion);
    hw.write<std::int32_t>(rank);
    hw.write<std::uint64_t>(segment);
    write_all(w.fd_, header.data(), header.size(), "log header write");
    w.offset_ = kHeaderBytes;
    return w;
}

OpLogWriter OpLogWriter::append_to(const std::filesystem::path& path,
                                   int rank) {
    if (std::filesystem::file_size(path) < kHeaderBytes)
        throw PersistError("log segment " + path.string() +
                           " has no complete header to append after");
    LogHeader header;
    {
        OpLogReader probe(path);  // validates the header
        header = probe.header();
    }
    if (header.rank != rank)
        throw PersistError("log segment " + path.string() +
                           " belongs to rank " + std::to_string(header.rank));
    OpLogWriter w;
    w.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (w.fd_ < 0) fail_errno("cannot reopen log segment", path);
    w.segment_ = header.segment;
    w.offset_ = std::filesystem::file_size(path);
    return w;
}

OpLogWriter::OpLogWriter(OpLogWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      segment_(other.segment_),
      offset_(other.offset_),
      frames_(other.frames_),
      buf_(std::move(other.buf_)),
      size_(std::exchange(other.size_, 0)),
      cap_(std::exchange(other.cap_, 0)) {}

OpLogWriter& OpLogWriter::operator=(OpLogWriter&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) {
            try {
                flush();
            } catch (...) {  // NOLINT(bugprone-empty-catch)
            }
            ::close(fd_);
        }
        fd_ = std::exchange(other.fd_, -1);
        segment_ = other.segment_;
        offset_ = other.offset_;
        frames_ = other.frames_;
        buf_ = std::move(other.buf_);
        size_ = std::exchange(other.size_, 0);
        cap_ = std::exchange(other.cap_, 0);
    }
    return *this;
}

OpLogWriter::~OpLogWriter() {
    if (fd_ < 0) return;
    try {
        flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch): destructor must not throw
    }
    ::close(fd_);
}

void OpLogWriter::ensure(std::size_t more) {
    if (size_ + more <= cap_) return;
    std::size_t cap = cap_ < 4096 ? 4096 : cap_;
    while (cap < size_ + more) cap *= 2;
    auto grown = std::make_unique_for_overwrite<std::byte[]>(cap);
    if (size_ > 0) std::memcpy(grown.get(), buf_.get(), size_);
    buf_ = std::move(grown);
    cap_ = cap;
}

std::size_t OpLogWriter::begin_frame(std::uint64_t version,
                                     std::uint64_t payload_bytes) {
    ensure(static_cast<std::size_t>(kFrameOverhead + payload_bytes));
    put_u32(kFrameMagic);
    put_u64(version);
    put_u64(payload_bytes);
    return size_;
}

void OpLogWriter::end_frame(std::size_t payload_start) {
    const std::size_t payload_bytes = size_ - payload_start;
    put_u32(crc32(buf_.get() + payload_start, payload_bytes));
    offset_ += kFrameOverhead + payload_bytes;
    ++frames_;
    if (size_ >= kFlushThreshold) flush();
}

void OpLogWriter::append(std::uint64_t version, const par::Buffer& payload) {
    const std::size_t payload_start = begin_frame(version, payload.size());
    put_bytes(payload.data(), payload.size());
    end_frame(payload_start);
}

void OpLogWriter::flush() {
    if (fd_ < 0 || size_ == 0) return;
    write_all(fd_, buf_.get(), size_, "log append");
    size_ = 0;
}

void OpLogWriter::sync() {
    flush();
    if (fd_ >= 0 && ::fsync(fd_) != 0)
        throw PersistError(std::string("log fsync: ") + std::strerror(errno));
}

void OpLogWriter::abandon() {
    size_ = 0;
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

// -- reader ------------------------------------------------------------------

OpLogReader::OpLogReader(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail_errno("cannot open log segment", path);
    in.seekg(0, std::ios::end);
    data_.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(data_.data()),
            static_cast<std::streamsize>(data_.size()));
    if (!in) fail_errno("cannot read log segment", path);

    if (data_.size() < kHeaderBytes) {
        // A segment that died before its header finished holds no frames;
        // valid_end() == 0 tells the caller to remove it entirely (torn
        // even when 0 bytes: a created-but-unwritten file is a rotation
        // crash artifact, and scanning must not continue past it).
        torn_ = true;
        pos_ = data_.size();
        return;
    }
    par::BufferReader r(data_);
    header_.magic = r.read<std::uint32_t>();
    header_.format = r.read<std::uint32_t>();
    header_.rank = r.read<std::int32_t>();
    header_.segment = r.read<std::uint64_t>();
    if (header_.magic != kLogMagic)
        throw PersistError("bad log magic in " + path.string());
    if (header_.format != kFormatVersion)
        throw PersistError("unsupported log format " +
                           std::to_string(header_.format) + " in " +
                           path.string());
    pos_ = static_cast<std::size_t>(kHeaderBytes);
    valid_end_ = kHeaderBytes;
}

std::optional<LogFrame> OpLogReader::next() {
    if (torn_) return std::nullopt;
    if (pos_ >= data_.size()) return std::nullopt;
    // Anything short of a fully CRC-verified frame is a torn tail: stop.
    const auto tear = [&]() -> std::optional<LogFrame> {
        torn_ = true;
        return std::nullopt;
    };
    if (data_.size() - pos_ < kFrameOverhead) return tear();
    par::BufferReader r(std::span<const std::byte>(data_).subspan(pos_));
    if (r.read<std::uint32_t>() != kFrameMagic) return tear();
    LogFrame frame;
    frame.version = r.read<std::uint64_t>();
    const auto payload_bytes = r.read<std::uint64_t>();
    if (payload_bytes > r.remaining() ||
        r.remaining() - payload_bytes < sizeof(std::uint32_t))
        return tear();
    const auto* begin = data_.data() + pos_ + (kFrameOverhead - 4);
    frame.payload.assign(begin, begin + payload_bytes);
    r.skip(static_cast<std::size_t>(payload_bytes));
    if (r.read<std::uint32_t>() != crc32(frame.payload)) return tear();
    pos_ += static_cast<std::size_t>(kFrameOverhead + payload_bytes);
    valid_end_ = pos_;
    return frame;
}

void OpLogReader::seek(std::uint64_t offset) {
    if (offset < kHeaderBytes || offset > data_.size())
        throw PersistError("log seek offset " + std::to_string(offset) +
                           " outside segment (size " +
                           std::to_string(data_.size()) + ")");
    pos_ = static_cast<std::size_t>(offset);
    valid_end_ = offset;
    torn_ = false;
}

// -- maintenance -------------------------------------------------------------

void truncate_file(const std::filesystem::path& path, std::uint64_t size) {
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec)
        throw PersistError("cannot truncate " + path.string() + ": " +
                           ec.message());
}

namespace {

/// Parses "oplog-r<rank>-s<segment>.log"; nullopt for anything else.
std::optional<std::pair<int, std::uint64_t>> parse_log_name(
    const std::string& name) {
    int rank = -1;
    unsigned long long segment = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "oplog-r%d-s%llu.log%n", &rank, &segment,
                    &consumed) != 2 ||
        static_cast<std::size_t>(consumed) != name.size())
        return std::nullopt;
    return std::make_pair(rank, static_cast<std::uint64_t>(segment));
}

}  // namespace

std::size_t delete_segments_below(const std::filesystem::path& dir, int rank,
                                  std::uint64_t below) {
    std::size_t removed = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const auto parsed = parse_log_name(entry.path().filename().string());
        if (!parsed || parsed->first != rank || parsed->second >= below)
            continue;
        std::error_code ec;
        if (std::filesystem::remove(entry.path(), ec)) ++removed;
    }
    return removed;
}

std::optional<std::uint64_t> latest_segment(const std::filesystem::path& dir,
                                            int rank) {
    std::optional<std::uint64_t> best;
    if (!std::filesystem::exists(dir)) return best;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const auto parsed = parse_log_name(entry.path().filename().string());
        if (!parsed || parsed->first != rank) continue;
        if (!best || parsed->second > *best) best = parsed->second;
    }
    return best;
}

}  // namespace dsg::persist
