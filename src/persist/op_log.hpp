// Per-rank write-ahead op log: the redo log of the durability layer
// (docs/ARCHITECTURE.md, "The durability layer").
//
// Every applied epoch is appended as one CRC-framed record — the rank's
// drained ADD/MERGE/MASK streams exactly as the engine partitioned them —
// BEFORE any of the epoch's ops touch the matrix (the engine's WAL hook
// fires pre-apply). A crash therefore loses at most the unflushed buffer
// tail; every epoch whose frame survives can be replayed bit-identically
// through the normal collective apply path.
//
// Logs are segmented: a fresh segment starts at every checkpoint, and the
// checkpoint manifest records (segment, offset) per rank — the point replay
// starts from. Compaction is segment deletion: once a checkpoint commits,
// all fully-covered older segments are unlinked (no rewrite, no window in
// which a crash can see a half-compacted log).
//
// The writer buffers in user space over a raw POSIX fd with an explicit
// fsync cadence, so (a) append cost is a memcpy until the cadence strikes
// and (b) tests can simulate a kill -9 honestly: abandon() drops the buffer
// without flushing, exactly what the page cache would lose.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/buffer.hpp"
#include "sparse/types.hpp"

namespace dsg::persist {

/// Typed error for every unrecoverable durability condition: corrupt
/// manifests, checkpoint/grid mismatches, version discontinuities in a log.
/// (Torn log *tails* are NOT errors — they are truncated and survived.)
class PersistError : public std::runtime_error {
public:
    explicit PersistError(const std::string& what)
        : std::runtime_error("persist: " + what) {}
};

/// CRC-32C (Castagnoli, reflected) over a byte span; the integrity check on
/// every log frame, checkpoint payload, and manifest. Hardware-accelerated
/// on SSE4.2 x86-64 (runtime-detected), slicing-by-8 elsewhere — identical
/// values either way.
[[nodiscard]] std::uint32_t crc32(const std::byte* data, std::size_t size);
[[nodiscard]] inline std::uint32_t crc32(const par::Buffer& buf) {
    return crc32(buf.data(), buf.size());
}

// -- on-disk layout ----------------------------------------------------------

inline constexpr std::uint32_t kLogMagic = 0x4c475344;    // "DSGL"
inline constexpr std::uint32_t kFrameMagic = 0x4d524653;  // "SFRM"
inline constexpr std::uint32_t kFormatVersion = 1;

/// Segment header size on disk (fields are written individually; struct
/// padding never hits the wire): magic u32, format u32, rank i32, seg u64.
inline constexpr std::uint64_t kLogHeaderBytes = 20;
/// Per-frame framing overhead: magic u32, version u64, length u64, crc u32.
inline constexpr std::uint64_t kLogFrameOverhead = 24;

/// Fixed-size segment file header (written once at creation).
struct LogHeader {
    std::uint32_t magic = kLogMagic;
    std::uint32_t format = kFormatVersion;
    std::int32_t rank = 0;
    std::uint64_t segment = 0;
};

/// One undecoded log frame: the epoch's version plus the serialized payload
/// (three Triple vectors). Decoding is templated (decode_frame below).
struct LogFrame {
    std::uint64_t version = 0;
    par::Buffer payload;
};

/// Frame payload for one epoch of ops (the rank-local EpochDelta image).
template <typename T>
struct EpochOps {
    std::vector<sparse::Triple<T>> adds;
    std::vector<sparse::Triple<T>> merges;
    std::vector<sparse::Triple<T>> masks;

    [[nodiscard]] std::size_t total() const {
        return adds.size() + merges.size() + masks.size();
    }
};

template <typename T>
    requires std::is_trivially_copyable_v<T>
[[nodiscard]] par::Buffer encode_ops(const std::vector<sparse::Triple<T>>& adds,
                                     const std::vector<sparse::Triple<T>>& merges,
                                     const std::vector<sparse::Triple<T>>& masks) {
    par::Buffer payload;
    par::BufferWriter w(payload);
    w.write_vector(adds);
    w.write_vector(merges);
    w.write_vector(masks);
    return payload;
}

template <typename T>
    requires std::is_trivially_copyable_v<T>
[[nodiscard]] EpochOps<T> decode_frame(const LogFrame& frame) {
    par::BufferReader r(frame.payload);
    EpochOps<T> ops;
    ops.adds = r.read_vector<sparse::Triple<T>>();
    ops.merges = r.read_vector<sparse::Triple<T>>();
    ops.masks = r.read_vector<sparse::Triple<T>>();
    if (!r.exhausted())
        throw PersistError("log frame carries trailing bytes (type mismatch?)");
    return ops;
}

/// Path of one rank's log segment inside a durability directory.
[[nodiscard]] std::filesystem::path log_path(const std::filesystem::path& dir,
                                             int rank, std::uint64_t segment);

// -- writer ------------------------------------------------------------------

/// Appends CRC-framed epoch records to one segment file. Not thread-safe
/// (only the rank's engine thread appends, from the WAL hook).
class OpLogWriter {
public:
    /// Creates (truncating) a fresh segment with its header.
    static OpLogWriter create(const std::filesystem::path& path, int rank,
                              std::uint64_t segment);
    /// Reopens an existing segment for appending at its current end —
    /// the continue-after-recovery path. The header must validate and match
    /// `rank`; recovery has already truncated any torn tail.
    static OpLogWriter append_to(const std::filesystem::path& path, int rank);

    OpLogWriter(OpLogWriter&& other) noexcept;
    OpLogWriter& operator=(OpLogWriter&&) noexcept;
    OpLogWriter(const OpLogWriter&) = delete;
    OpLogWriter& operator=(const OpLogWriter&) = delete;
    ~OpLogWriter();  // flushes (but does not fsync) and closes

    /// Appends one epoch frame to the user-space buffer. O(payload) memcpy;
    /// nothing reaches the kernel until flush()/sync() or the buffer grows
    /// past the flush threshold.
    void append(std::uint64_t version, const par::Buffer& payload);

    /// Like append(encode_ops(...)) but frames the three streams directly
    /// into the write buffer — no intermediate payload allocation, no
    /// second copy, exactly one CRC pass. This is the engine's per-epoch
    /// WAL path, running on the collective critical path of every applied
    /// epoch; bench_recovery gates its cost.
    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void append_epoch(std::uint64_t version,
                      const std::vector<sparse::Triple<T>>& adds,
                      const std::vector<sparse::Triple<T>>& merges,
                      const std::vector<sparse::Triple<T>>& masks) {
        const std::uint64_t payload_bytes =
            3 * sizeof(std::uint64_t) +
            (adds.size() + merges.size() + masks.size()) *
                sizeof(sparse::Triple<T>);
        const std::size_t payload_start = begin_frame(version, payload_bytes);
        for (const auto* vec : {&adds, &merges, &masks}) {
            put_u64(vec->size());
            put_bytes(vec->data(), vec->size() * sizeof(sparse::Triple<T>));
        }
        end_frame(payload_start);
    }

    /// Hands the buffer to the kernel (write(2)); durability still pending.
    void flush();
    /// flush() + fsync(2): everything appended so far survives a crash.
    void sync();

    /// Logical end-of-log offset (header + all appended frames), regardless
    /// of how much has been flushed — the value checkpoints record.
    [[nodiscard]] std::uint64_t offset() const { return offset_; }
    [[nodiscard]] std::uint64_t segment() const { return segment_; }
    /// Frames appended since creation/reopen.
    [[nodiscard]] std::uint64_t frames() const { return frames_; }

    /// TEST ONLY — models a kill -9: drops the unflushed buffer and closes
    /// the fd without flushing. The file keeps only what flush()/sync()
    /// already pushed down.
    void abandon();

private:
    OpLogWriter() = default;

    /// Grows the raw pending buffer to hold `more` additional bytes
    /// (geometric, no zero-initialization — a std::vector resize would pay
    /// a full extra pass value-initializing bytes memcpy overwrites).
    void ensure(std::size_t more);
    // The put_* helpers assume begin_frame() already ensured capacity for
    // the whole frame (asserted); they must stay a bare memcpy.
    void put_u32(std::uint32_t v) { put_bytes(&v, sizeof v); }
    void put_u64(std::uint64_t v) { put_bytes(&v, sizeof v); }
    void put_bytes(const void* src, std::size_t bytes) {
        assert(size_ + bytes <= cap_);
        if (bytes == 0) return;  // empty vectors may carry data() == nullptr
        std::memcpy(buf_.get() + size_, src, bytes);
        size_ += bytes;
    }

    /// Reserves + writes the frame header for `payload_bytes` of payload
    /// the caller is about to put_*; returns the payload's start index.
    std::size_t begin_frame(std::uint64_t version,
                            std::uint64_t payload_bytes);
    /// Checksums the pending payload in place, appends the CRC, and
    /// accounts the finished frame (may flush).
    void end_frame(std::size_t payload_start);

    int fd_ = -1;
    std::uint64_t segment_ = 0;
    std::uint64_t offset_ = 0;
    std::uint64_t frames_ = 0;
    std::unique_ptr<std::byte[]> buf_;  // pending bytes [0, size_)
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

// -- reader ------------------------------------------------------------------

/// Reads a segment file frame by frame, stopping (not throwing) at the
/// first torn or corrupt frame — the valid prefix is what recovery replays.
class OpLogReader {
public:
    /// Loads the file; throws PersistError only if the segment HEADER is
    /// unreadable (a segment that never finished its 20-byte header is
    /// reported as valid_end() == 0 with zero frames instead).
    explicit OpLogReader(const std::filesystem::path& path);

    [[nodiscard]] const LogHeader& header() const { return header_; }

    /// Next valid frame, or nullopt at the end of the valid prefix.
    std::optional<LogFrame> next();

    /// Byte offset one past the last valid frame read so far (starts at the
    /// header size) — where truncation cuts a torn tail.
    [[nodiscard]] std::uint64_t valid_end() const { return valid_end_; }
    /// True once next() hit bytes it could not validate (torn/corrupt tail).
    [[nodiscard]] bool torn() const { return torn_; }
    /// Skips forward to `offset` (a frame boundary recorded by a manifest).
    void seek(std::uint64_t offset);

private:
    par::Buffer data_;
    LogHeader header_;
    std::size_t pos_ = 0;
    std::uint64_t valid_end_ = 0;
    bool torn_ = false;
};

// -- maintenance -------------------------------------------------------------

/// Truncates `path` to `size` bytes (used to cut torn tails after the
/// cross-rank replay agreement).
void truncate_file(const std::filesystem::path& path, std::uint64_t size);

/// Unlinks every log segment of `rank` in `dir` with segment id < `below`
/// — the compaction step after a committed checkpoint. Returns the number
/// of files removed.
std::size_t delete_segments_below(const std::filesystem::path& dir, int rank,
                                  std::uint64_t below);

/// Highest existing segment id of `rank` in `dir`, or nullopt when the rank
/// has no log yet.
std::optional<std::uint64_t> latest_segment(const std::filesystem::path& dir,
                                            int rank);

}  // namespace dsg::persist
