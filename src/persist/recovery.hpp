// Crash recovery: checkpoint load + log-tail replay through the normal
// collective apply path (docs/ARCHITECTURE.md, "The durability layer").
//
// recover() restores one rank's share of the durable state into a freshly
// constructed distributed matrix (and, optionally, a freshly constructed
// AnalyticsHub):
//
//   1. read the manifest (absent = cold start from an op log alone);
//   2. load this rank's checkpoint tile + analytics state, verifying CRC,
//      version, and grid shape against the manifest and the live grid;
//   3. scan the log tail (manifest position onward), stopping at the first
//      torn or corrupt frame and verifying version continuity;
//   4. agree across ranks on the replayable prefix — the minimum last
//      complete version — and truncate every frame beyond it (an epoch that
//      is not durable on EVERY rank never happened; it was never applied,
//      because the WAL hook runs before apply on all ranks of the epoch);
//   5. replay the surviving frames through a real EpochEngine, one epoch
//      per frame: pushed in the logged ADD/MERGE/MASK order, drained,
//      agreed, applied, and handed to the analytics hook exactly like live
//      traffic — replay IS ingestion, just fed from disk;
//   6. verify the recovered version and return the replay accounting.
//
// Collective: every rank of the grid calls recover() together. Afterwards
// construct the production engine with initial_version = recovered_version
// (and a DurabilityManager in Resume mode to keep appending).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "analytics/maintainer.hpp"
#include "core/dist_matrix.hpp"
#include "par/profiler.hpp"
#include "persist/checkpoint.hpp"
#include "persist/op_log.hpp"
#include "stream/epoch_engine.hpp"

namespace dsg::persist {

struct RecoveryOptions {
    std::filesystem::path dir;
    core::RedistMode redist = core::RedistMode::TwoPhase;
    par::ThreadPool* pool = nullptr;  ///< intra-rank threads for replay apply
};

struct RecoveryResult {
    bool had_checkpoint = false;
    std::uint64_t checkpoint_version = 0;  ///< 0 when cold-starting
    std::uint64_t recovered_version = 0;   ///< checkpoint + replayed epochs
    std::uint64_t replayed_epochs = 0;
    std::uint64_t replayed_ops = 0;  ///< this rank's ops pushed during replay
    /// True when torn bytes or epochs not durable on every rank were cut
    /// from this rank's log (the normal aftermath of a hard kill).
    bool truncated_tail = false;
};

/// Restores durable state from `opts.dir` into `A` (which must be freshly
/// constructed on the same grid shape the state was written under) and, when
/// given, into `hub` (freshly constructed, same maintainers in the same
/// order as at checkpoint time). Collective; throws PersistError when the
/// durable state is unusable (wrong grid, corrupt checkpoint, version
/// discontinuity) — torn log TAILS are truncated, not errors.
template <sparse::Semiring SR, typename T = typename SR::value_type>
    requires std::is_trivially_copyable_v<T>
RecoveryResult recover(core::DistDynamicMatrix<T>& A,
                       const RecoveryOptions& opts,
                       analytics::AnalyticsHub<T>* hub = nullptr) {
    par::Profiler::Scope scope(par::Phase::PersistRecover);
    auto& grid = A.shape().grid();
    auto& world = grid.world();
    const int rank = world.rank();
    RecoveryResult res;

    // -- 1/2: manifest + checkpoint tile -------------------------------------
    const auto manifest = read_manifest(opts.dir);
    std::uint64_t start_segment = 0;
    std::uint64_t start_offset = kLogHeaderBytes;
    if (manifest) {
        if (manifest->grid_rows != grid.rows() ||
            manifest->grid_cols != grid.cols())
            throw PersistError(
                "durable state was written on a " +
                std::to_string(manifest->grid_rows) + "x" +
                std::to_string(manifest->grid_cols) + " grid, recovering on " +
                std::to_string(grid.rows()) + "x" +
                std::to_string(grid.cols()));
        if (manifest->nrows != A.shape().nrows() ||
            manifest->ncols != A.shape().ncols())
            throw PersistError("durable matrix shape disagrees with A");
        auto ckpt = read_checkpoint_file<T>(opts.dir, manifest->version, rank,
                                            grid.rows(), grid.cols(),
                                            A.shape().nrows(),
                                            A.shape().ncols());
        if (ckpt.tile.nrows() != A.shape().local_rows() ||
            ckpt.tile.ncols() != A.shape().local_cols())
            throw PersistError("checkpoint tile shape disagrees with this "
                               "rank's block");
        A.local() = ckpt.tile;
        if (hub != nullptr) {
            if (ckpt.extra_state.empty())
                throw PersistError(
                    "an analytics hub was passed to recover() but the "
                    "checkpoint holds no analytics state (was it written "
                    "with include_analytics = false, or without a hub?)");
            par::BufferReader r(ckpt.extra_state);
            hub->load_state(r);
        }
        res.had_checkpoint = true;
        res.checkpoint_version = manifest->version;
        start_segment = manifest->log[static_cast<std::size_t>(rank)].segment;
        start_offset = manifest->log[static_cast<std::size_t>(rank)].offset;
    } else {
        A.local().clear();
    }

    // -- 3: scan this rank's log tail ----------------------------------------
    struct PendingEpoch {
        std::uint64_t version;
        EpochOps<T> ops;
        std::uint64_t segment;
        std::uint64_t end_offset;  ///< one past this frame in its segment
    };
    std::vector<PendingEpoch> frames;
    std::size_t max_frame_ops = 0;
    bool cut = false;                        // something to truncate?
    std::uint64_t cut_segment = start_segment;
    std::uint64_t cut_offset = start_offset;  // first byte NOT kept
    bool segment_present = false;             // does cut_segment exist?
    {
        std::uint64_t expected = res.checkpoint_version + 1;
        std::uint64_t seg = start_segment;
        while (std::filesystem::exists(log_path(opts.dir, rank, seg))) {
            if (seg == start_segment) segment_present = true;
            bool torn = false;
            try {
                OpLogReader reader(log_path(opts.dir, rank, seg));
                if (reader.header().segment != seg && reader.valid_end() > 0)
                    throw PersistError("log segment id disagrees with its "
                                       "file name");
                // valid_end() == 0 marks a headerless stub (rotation crash
                // artifact): nothing to seek into, the torn flag below cuts
                // the file away.
                if (seg == start_segment && reader.valid_end() > 0)
                    reader.seek(std::min<std::uint64_t>(
                        start_offset, std::filesystem::file_size(
                                          log_path(opts.dir, rank, seg))));
                while (auto frame = reader.next()) {
                    if (frame->version != expected)
                        throw PersistError(
                            "log version discontinuity: expected epoch " +
                            std::to_string(expected) + ", found " +
                            std::to_string(frame->version));
                    auto ops = decode_frame<T>(*frame);
                    max_frame_ops = std::max(max_frame_ops, ops.total());
                    frames.push_back({frame->version, std::move(ops), seg,
                                      reader.valid_end()});
                    ++expected;
                }
                torn = reader.torn();
                if (torn) {
                    cut = true;
                    cut_segment = seg;
                    cut_offset = reader.valid_end();
                }
            } catch (const PersistError&) {
                if (!frames.empty() || seg != start_segment) {
                    // A segment whose very header failed after valid data:
                    // crash artifact of rotation — cut it away entirely.
                    torn = cut = true;
                    cut_segment = seg;
                    cut_offset = 0;
                } else {
                    throw;  // the first thing we read is garbage: corrupt
                }
            }
            if (torn) break;  // later segments are unreachable by replay
            ++seg;
        }
    }

    // -- 4: cross-rank agreement on the replayable prefix --------------------
    const std::uint64_t my_last =
        frames.empty() ? res.checkpoint_version : frames.back().version;
    const std::uint64_t replay_upto = world.allreduce(
        my_last,
        [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
    while (!frames.empty() && frames.back().version > replay_upto) {
        // Durable here but not everywhere — the epoch was never applied
        // anywhere (WAL runs pre-apply), so dropping it loses nothing that
        // was ever observable. Popping back-to-front leaves cut_segment at
        // the EARLIEST dropped frame's segment; the byte offset within it
        // is recomputed from the surviving frames below.
        cut = true;
        cut_segment = frames.back().segment;
        frames.pop_back();
    }
    if (cut) {
        if (!frames.empty() && frames.back().segment == cut_segment) {
            cut_offset = frames.back().end_offset;
        } else if (frames.empty() || frames.back().segment < cut_segment) {
            // Nothing kept in cut_segment: cut right after the replay start
            // (start segment) or the whole file (later segments).
            cut_offset = cut_segment == start_segment
                             ? std::min<std::uint64_t>(
                                   start_offset,
                                   segment_present
                                       ? std::filesystem::file_size(log_path(
                                             opts.dir, rank, cut_segment))
                                       : start_offset)
                             : 0;
        }
        if (std::filesystem::exists(log_path(opts.dir, rank, cut_segment))) {
            if (cut_offset < kLogHeaderBytes) {
                // No complete header survives: remove the file outright so
                // Resume never appends after a headerless stub.
                std::filesystem::remove(
                    log_path(opts.dir, rank, cut_segment));
            } else {
                truncate_file(log_path(opts.dir, rank, cut_segment),
                              cut_offset);
            }
        }
        for (std::uint64_t seg = cut_segment + 1;
             std::filesystem::exists(log_path(opts.dir, rank, seg)); ++seg)
            std::filesystem::remove(log_path(opts.dir, rank, seg));
        res.truncated_tail = true;
    }

    // -- 5: replay through a real engine -------------------------------------
    stream::EngineConfig cfg;
    cfg.queue_capacity = std::max<std::size_t>(max_frame_ops, 1);
    cfg.epoch_batch = 1;
    cfg.epoch_deadline = std::chrono::milliseconds(0);
    cfg.redist = opts.redist;
    cfg.pool = opts.pool;
    cfg.initial_version = res.checkpoint_version;
    stream::EpochEngine<SR> engine(A, cfg);
    if (hub != nullptr) hub->attach(engine);
    for (const auto& f : frames) {
        auto& q = engine.queue();
        for (const auto& t : f.ops.adds) q.push({stream::OpKind::Add, t});
        for (const auto& t : f.ops.merges) q.push({stream::OpKind::Merge, t});
        for (const auto& t : f.ops.masks) q.push({stream::OpKind::Mask, t});
        res.replayed_ops += f.ops.total();
        engine.pump();  // collective: drains, agrees, applies, fires the hub
    }
    res.replayed_epochs = frames.size();

    // -- 6: verify ------------------------------------------------------------
    const auto version =
        engine.with_snapshot([](core::SnapshotView<T> snap) {
            return snap.version();
        });
    if (version != replay_upto)
        throw PersistError("recovered version " + std::to_string(version) +
                           " does not match the agreed replay target " +
                           std::to_string(replay_upto));
    res.recovered_version = version;
    return res;
}

}  // namespace dsg::persist
