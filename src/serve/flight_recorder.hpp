// Slow-query flight recorder: a bounded worst-K retention of completed
// queries with their full span breakdown.
//
// The registry's serve_query_ns histograms say THAT a p999 spike happened;
// the flight recorder says WHICH queries it was and where their time went
// (admission wait vs execution), what they answered from (snapshot version
// + how far behind the engine that snapshot was) and how (status, cache
// hit). The QueryExecutor records every completed query when a recorder is
// configured; retention keeps the K slowest by total latency, so the
// interesting tail survives arbitrarily long runs in O(K) memory.
//
// record() is called concurrently from pool workers and the dispatcher.
// The common case — a query faster than the current K-th worst — is
// rejected after one relaxed atomic load, without taking the mutex;
// tests/serve/test_flight_recorder.cpp hammers this under TSan.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "serve/query_types.hpp"

namespace dsg::serve {

class FlightRecorder {
public:
    /// One retained query: identity, outcome, and span breakdown. The
    /// trace rings carry the same qid/snapshot_version under span args, so
    /// an entry can be joined against a Chrome trace (the flow event of
    /// snapshot_version links it to the publish span that produced the
    /// snapshot it waited on).
    struct Entry {
        std::uint64_t qid = 0;
        QueryKind kind = QueryKind::EdgeExists;
        QueryStatus status = QueryStatus::Ok;
        bool cache_hit = false;
        std::uint64_t snapshot_version = 0;  ///< 0 = no snapshot involved
        std::int64_t snapshot_lag = 0;  ///< versions behind the store at completion
        std::uint64_t admission_wait_ns = 0;  ///< queue residence (submit path)
        std::uint64_t execute_ns = 0;         ///< total minus admission wait
        std::uint64_t total_ns = 0;           ///< submit entry to completion
    };

    explicit FlightRecorder(std::size_t worst_k = 32)
        : worst_k_(worst_k == 0 ? 1 : worst_k) {}

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Offers one completed query; retained iff it ranks in the worst K so
    /// far. Thread-safe.
    void record(const Entry& e) {
        offered_.fetch_add(1, std::memory_order_relaxed);
        // Fast reject: once K entries are retained, anything at or below
        // the floor (the K-th worst latency) can't rank. The floor only
        // rises, so a stale read merely lets a borderline entry through to
        // the locked re-check.
        if (e.total_ns <= floor_ns_.load(std::memory_order_relaxed)) return;
        std::lock_guard lock(mx_);
        if (entries_.size() < worst_k_) {
            entries_.push_back(e);
            std::push_heap(entries_.begin(), entries_.end(), slower());
            if (entries_.size() == worst_k_)
                floor_ns_.store(entries_.front().total_ns,
                                std::memory_order_relaxed);
            return;
        }
        if (e.total_ns <= entries_.front().total_ns) return;
        std::pop_heap(entries_.begin(), entries_.end(), slower());
        entries_.back() = e;
        std::push_heap(entries_.begin(), entries_.end(), slower());
        floor_ns_.store(entries_.front().total_ns, std::memory_order_relaxed);
    }

    /// The retained entries, slowest first.
    [[nodiscard]] std::vector<Entry> worst() const {
        std::vector<Entry> out;
        {
            std::lock_guard lock(mx_);
            out = entries_;
        }
        std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
            return a.total_ns > b.total_ns;
        });
        return out;
    }

    /// Queries ever offered to record().
    [[nodiscard]] std::uint64_t offered() const {
        return offered_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t capacity() const { return worst_k_; }

    /// The retained entries as a JSON array (slowest first) — the dump the
    /// serving example writes next to its trace.
    [[nodiscard]] std::string to_json() const {
        std::string out = "[";
        char buf[512];
        bool first = true;
        for (const Entry& e : worst()) {
            std::snprintf(
                buf, sizeof buf,
                "%s\n{\"qid\": %llu, \"class\": \"%s\", \"status\": \"%s\", "
                "\"cache_hit\": %s, \"snapshot_version\": %llu, "
                "\"snapshot_lag\": %lld, \"admission_wait_ns\": %llu, "
                "\"execute_ns\": %llu, \"total_ns\": %llu}",
                first ? "" : ",",
                static_cast<unsigned long long>(e.qid),
                query_kind_name(e.kind), query_status_name(e.status),
                e.cache_hit ? "true" : "false",
                static_cast<unsigned long long>(e.snapshot_version),
                static_cast<long long>(e.snapshot_lag),
                static_cast<unsigned long long>(e.admission_wait_ns),
                static_cast<unsigned long long>(e.execute_ns),
                static_cast<unsigned long long>(e.total_ns));
            out += buf;
            first = false;
        }
        out += "\n]\n";
        return out;
    }

private:
    /// Min-heap comparator: the heap top is the FASTEST retained entry (the
    /// eviction candidate).
    struct slower {
        bool operator()(const Entry& a, const Entry& b) const {
            return a.total_ns > b.total_ns;
        }
    };

    const std::size_t worst_k_;
    mutable std::mutex mx_;
    std::vector<Entry> entries_;           ///< min-heap by total_ns
    std::atomic<std::uint64_t> floor_ns_{0};
    std::atomic<std::uint64_t> offered_{0};
};

}  // namespace dsg::serve
