// Coordinated-omission-safe paced load generator for the serving tier.
//
// The classic closed-loop benchmark bug: issue a query, wait for the
// answer, issue the next. An overloaded server then slows the GENERATOR
// down, the arrival schedule silently re-anchors, and the measured
// latency distribution omits exactly the waiting the clients would have
// experienced (Tene's "coordinated omission"). This generator instead
// fixes the arrival schedule up front — arrival k is due at
// t0 + k/target_qps, period — and measures every query's latency FROM ITS
// SCHEDULED ARRIVAL: if submit() itself stalls, the stall lands in the
// measured latency of every query scheduled behind it, exactly as a
// client queue would experience it. tests/serve/test_load_gen.cpp proves
// the schedule doesn't slip under a deliberately slow executor.
//
// The report carries on-arrival p50/p99/p999 plus per-class SLO-violation
// counts (a shed or expired query is always a violation — the client got
// no answer within the SLO either way). bench_slo_serving.cpp emits these
// as DSG_BENCH_JSON; scripts/slo-gate.py gates CI on them.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "serve/query_types.hpp"

namespace dsg::serve {

struct LoadGenConfig {
    double target_qps = 1000.0;  ///< fixed arrival rate (this generator)
    std::size_t total = 1000;    ///< arrivals to schedule
    double slo_ms = 10.0;        ///< on-arrival latency SLO
    /// Optional early-stop flag (checked between arrivals); the schedule of
    /// already-issued arrivals is unaffected.
    const std::atomic<bool>* stop = nullptr;
};

/// What one paced run measured. Latency percentiles are on-arrival
/// (scheduled arrival -> completion) over served queries; shed/expired
/// queries count as SLO violations but not toward the percentiles.
struct LoadGenReport {
    std::uint64_t issued = 0;     ///< arrivals actually submitted
    std::uint64_t served = 0;     ///< completed with an answer (or NotFound)
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t cache_hits = 0;
    double p50_ms = 0, p99_ms = 0, p999_ms = 0, max_ms = 0;
    std::uint64_t slo_violations = 0;  ///< sum of the per-class counts
    std::array<std::uint64_t, kQueryKindCount> violations_by_class{};
    double achieved_qps = 0;  ///< issued / wall-clock of the pacing loop
    /// Worst lateness of an actual submit behind its scheduled arrival —
    /// grows under an overloaded executor precisely BECAUSE the schedule
    /// does not re-anchor (≈0 would mean coordinated omission).
    double max_submit_lateness_ms = 0;
    double duration_ms = 0;

    [[nodiscard]] double violation_rate() const {
        return issued > 0 ? static_cast<double>(slo_violations) /
                                static_cast<double>(issued)
                          : 0.0;
    }
};

namespace detail {

inline double percentile_of(std::vector<double>& sorted_ms, double q) {
    if (sorted_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
    return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

}  // namespace detail

/// Runs one paced load against `ex` (anything with
/// submit(Query) -> std::future<QueryResult>; normally a QueryExecutor).
/// `make(k)` produces the k-th query. Blocks until every issued query
/// completed.
template <typename Executor, typename MakeQuery>
LoadGenReport run_paced(Executor& ex, const LoadGenConfig& cfg,
                        MakeQuery&& make) {
    using Clock = std::chrono::steady_clock;
    LoadGenReport rep;
    const double qps = cfg.target_qps > 0 ? cfg.target_qps : 1.0;
    const auto gap = std::chrono::nanoseconds(
        static_cast<std::int64_t>(1e9 / qps));

    struct InFlight {
        std::future<QueryResult> future;
        QueryKind kind;
        double overhang_ms;  ///< scheduled arrival -> actual submit entry
    };
    std::deque<InFlight> inflight;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(cfg.total);

    auto account = [&](InFlight& f) {
        const QueryResult r = f.future.get();
        // On-arrival latency: the executor measures submit entry ->
        // completion; add the submit overhang so time spent stuck BEFORE
        // the executor (the coordinated-omission component) counts too.
        const double ms = f.overhang_ms + r.latency_us * 1e-3;
        bool violated = ms > cfg.slo_ms;
        switch (r.status) {
            case QueryStatus::Shed:
                ++rep.shed;
                violated = true;
                break;
            case QueryStatus::Expired:
                ++rep.expired;
                violated = true;
                break;
            default:
                ++rep.served;
                if (r.status == QueryStatus::Ok) ++rep.ok;
                if (r.cache_hit) ++rep.cache_hits;
                latencies_ms.push_back(ms);
                break;
        }
        if (violated) {
            ++rep.slo_violations;
            ++rep.violations_by_class[static_cast<std::size_t>(f.kind)];
        }
    };

    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < cfg.total; ++k) {
        if (cfg.stop != nullptr &&
            cfg.stop->load(std::memory_order_relaxed))
            break;
        // The fixed schedule: arrival k is due at t0 + k*gap regardless of
        // how long any previous submit took. Never re-anchored.
        const auto scheduled = t0 + gap * static_cast<std::int64_t>(k);
        std::this_thread::sleep_until(scheduled);
        Query q = make(k);
        const QueryKind kind = q.kind;
        const double overhang_ms =
            std::max(0.0, std::chrono::duration<double, std::milli>(
                              Clock::now() - scheduled)
                              .count());
        rep.max_submit_lateness_ms =
            std::max(rep.max_submit_lateness_ms, overhang_ms);
        inflight.push_back({ex.submit(std::move(q)), kind, overhang_ms});
        ++rep.issued;
        // Opportunistic harvest keeps the in-flight window small without
        // ever blocking the pacing loop.
        while (!inflight.empty() &&
               inflight.front().future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready) {
            account(inflight.front());
            inflight.pop_front();
        }
    }
    rep.duration_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    for (InFlight& f : inflight) account(f);  // blocking tail harvest

    std::sort(latencies_ms.begin(), latencies_ms.end());
    rep.p50_ms = detail::percentile_of(latencies_ms, 0.50);
    rep.p99_ms = detail::percentile_of(latencies_ms, 0.99);
    rep.p999_ms = detail::percentile_of(latencies_ms, 0.999);
    rep.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
    rep.achieved_qps = rep.duration_ms > 0
                           ? static_cast<double>(rep.issued) * 1e3 /
                                 rep.duration_ms
                           : 0.0;
    return rep;
}

}  // namespace dsg::serve
