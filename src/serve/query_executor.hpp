// Concurrent query executor with admission control: the compute side of the
// serving subsystem (docs/ARCHITECTURE.md, "The query serving layer").
//
// Typed queries (edge-exists, degree, k-hop neighborhood, analytics reads)
// are evaluated against the SnapshotStore's immutable published snapshots —
// never against the live matrix — so query work and epoch application never
// contend on the engine's locks. Two entry points:
//
//  - execute(q): synchronous, cache-aware evaluation on the calling thread.
//    The inline path for callers that want the answer now and the path the
//    cache gate benchmarks (cached vs uncached cost, same thread).
//  - submit(q) -> future: the admission-controlled path. A bounded pending
//    queue sheds on overflow (QueryStatus::Shed, counted per class) instead
//    of queueing unboundedly; queries that waited past their deadline are
//    expired un-executed (the client has given up — computing the answer
//    would be pure waste). A dispatcher thread drains the queue in batches
//    and fans each batch out over the SHARED par::ThreadPool (the same pool
//    the engine applies epochs with; parallel_for serializes jobs, so
//    serving borrows the pool between epochs instead of oversubscribing
//    the host). With background = false nothing is spawned and the test
//    harness pumps drain() deterministically.
//
// Caching: results are keyed by (query fingerprint, snapshot version) in
// the ResultCache. A submit whose answer is cached under the CURRENT
// version completes inline — it never consumes queue capacity. Version
// advance invalidates for free (see result_cache.hpp).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "par/profiler.hpp"
#include "par/thread_pool.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "sparse/types.hpp"

namespace dsg::serve {

enum class QueryKind : std::uint8_t {
    EdgeExists,     ///< is (row, col) a stored non-zero? value 1/0
    Degree,         ///< stored out-degree of `row`
    KHop,           ///< vertices within <= `hops` directed steps of `row`
    AnalyticsRead,  ///< frozen maintainer readout named `metric`
};
inline constexpr std::size_t kQueryKindCount = 4;

[[nodiscard]] constexpr const char* query_kind_name(QueryKind k) {
    switch (k) {
        case QueryKind::EdgeExists: return "edge-exists";
        case QueryKind::Degree: return "degree";
        case QueryKind::KHop: return "k-hop";
        case QueryKind::AnalyticsRead: return "analytics-read";
    }
    return "?";
}

/// One typed query. Fields beyond `kind` are read per kind (see QueryKind).
struct Query {
    QueryKind kind = QueryKind::EdgeExists;
    sparse::index_t row = 0;
    sparse::index_t col = 0;
    int hops = 1;        ///< KHop only
    std::string metric;  ///< AnalyticsRead only

    friend bool operator==(const Query&, const Query&) = default;
};

/// Stable 64-bit fingerprint of a query — the cache key next to the
/// snapshot version. Collisions are as likely as any 64-bit hash; a
/// colliding pair would serve one the other's cached double, which the
/// serving tier tolerates (caches trade exactness of THIS kind away; the
/// uncached path stays authoritative).
[[nodiscard]] inline std::uint64_t fingerprint(const Query& q) {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdull;
        return h ^ (h >> 33);
    };
    std::uint64_t h = 0x5851f42d4c957f2dull;
    h = mix(h, static_cast<std::uint64_t>(q.kind));
    h = mix(h, static_cast<std::uint64_t>(q.row));
    h = mix(h, static_cast<std::uint64_t>(q.col));
    h = mix(h, static_cast<std::uint64_t>(q.hops));
    for (const char c : q.metric)
        h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

enum class QueryStatus : std::uint8_t {
    Ok,          ///< value is the answer
    NotFound,    ///< AnalyticsRead named an unknown metric
    NoSnapshot,  ///< nothing published yet (store before first publication)
    Shed,        ///< rejected by admission control (queue full / shutdown)
    Expired,     ///< waited past its deadline; never executed
};

[[nodiscard]] constexpr const char* query_status_name(QueryStatus s) {
    switch (s) {
        case QueryStatus::Ok: return "ok";
        case QueryStatus::NotFound: return "not-found";
        case QueryStatus::NoSnapshot: return "no-snapshot";
        case QueryStatus::Shed: return "shed";
        case QueryStatus::Expired: return "expired";
    }
    return "?";
}

struct QueryResult {
    QueryStatus status = QueryStatus::Ok;
    double value = 0;           ///< answer (Ok): count, 0/1, or readout
    std::uint64_t version = 0;  ///< snapshot version that answered
    bool cache_hit = false;
    double latency_us = 0;  ///< submit/execute entry to completion
};

/// Plain-value per-query-class accounting (copied out of atomics).
struct QueryClassStats {
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t not_found = 0;
    std::uint64_t no_snapshot = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t cache_hits = 0;
    double total_us = 0;  ///< latency over completed (non-shed) queries
    double max_us = 0;

    [[nodiscard]] std::uint64_t completed() const {
        return ok + not_found + no_snapshot + expired;
    }
    [[nodiscard]] double mean_us() const {
        return completed() > 0 ? total_us / static_cast<double>(completed())
                               : 0.0;
    }
};

struct ExecutorConfig {
    /// Admission control: submits beyond this many pending queries shed.
    std::size_t pending_capacity = 1024;
    /// Queries not started within this much of submit() expire unrun.
    std::chrono::milliseconds deadline{100};
    /// Queries per dispatcher batch (one pool job per batch).
    std::size_t batch_max = 64;
    /// Spawn the dispatcher thread. false = tests pump drain() manually.
    bool background = true;
    /// Shared pool for batch fan-out; nullptr evaluates on the
    /// dispatcher (or drain caller's) thread.
    par::ThreadPool* pool = nullptr;
    /// Result cache; nullptr disables caching entirely.
    ResultCache* cache = nullptr;
};

template <typename T>
class QueryExecutor {
public:
    using Clock = std::chrono::steady_clock;
    using Config = ExecutorConfig;

    explicit QueryExecutor(const SnapshotStore<T>& store, Config cfg = {})
        : store_(&store), cfg_(cfg) {
        if (cfg_.batch_max == 0) cfg_.batch_max = 1;
        // Registry instruments, one family per query class (fetched once so
        // the completion path never touches the registry). The latency
        // histograms give the runtime p50/p99/p999 per class that
        // ROADMAP item 5(c) gates on.
        auto& reg = obs::registry();
        for (std::size_t k = 0; k < kQueryKindCount; ++k) {
            const obs::Labels cls = {
                {"class", query_kind_name(static_cast<QueryKind>(k))}};
            obs_latency_[k] = &reg.histogram("serve_query_ns", cls);
            obs_shed_[k] = &reg.counter("serve_query_shed", cls);
            obs_expired_[k] = &reg.counter("serve_query_expired", cls);
        }
        if (cfg_.background)
            dispatcher_ = std::thread([this] { dispatch_loop(); });
    }
    ~QueryExecutor() { stop(); }

    QueryExecutor(const QueryExecutor&) = delete;
    QueryExecutor& operator=(const QueryExecutor&) = delete;

    [[nodiscard]] const Config& config() const { return cfg_; }

    /// Synchronous cache-aware evaluation on the calling thread; bypasses
    /// admission control (inline callers self-limit by calling rate).
    QueryResult execute(const Query& q) {
        const auto t0 = Clock::now();
        auto& cls = stats_[static_cast<std::size_t>(q.kind)];
        cls.submitted.fetch_add(1, std::memory_order_relaxed);
        auto snap = store_->current();
        QueryResult r = evaluate(snap.get(), q, fingerprint(q));
        finish(cls, r, t0);
        return r;
    }

    /// Admission-controlled asynchronous evaluation. The returned future is
    /// always eventually fulfilled: with the answer, a cached answer
    /// (possibly inline), Shed on overflow/shutdown, or Expired past the
    /// deadline.
    std::future<QueryResult> submit(Query q) {
        const auto t0 = Clock::now();
        auto& cls = stats_[static_cast<std::size_t>(q.kind)];
        cls.submitted.fetch_add(1, std::memory_order_relaxed);
        std::promise<QueryResult> promise;
        auto future = promise.get_future();

        const std::uint64_t fp = fingerprint(q);
        if (cfg_.cache != nullptr) {
            if (const auto ver = store_->current_version()) {
                if (const auto hit = cfg_.cache->lookup(*ver, fp)) {
                    QueryResult r{QueryStatus::Ok, *hit, *ver, true, 0};
                    finish(cls, r, t0);
                    promise.set_value(r);
                    return future;
                }
            }
        }
        {
            std::lock_guard lock(mx_);
            if (!stopping_ && pending_.size() < cfg_.pending_capacity) {
                pending_.push_back(
                    {std::move(q), fp, std::move(promise), t0});
                cv_.notify_one();
                return future;
            }
        }
        cls.shed.fetch_add(1, std::memory_order_relaxed);
        obs_shed_[static_cast<std::size_t>(q.kind)]->add(1);
        promise.set_value({QueryStatus::Shed, 0, 0, false, 0});
        return future;
    }

    /// Processes everything currently pending on the calling thread (the
    /// manual pump for background = false). Returns queries processed.
    std::size_t drain() {
        std::size_t done = 0;
        for (;;) {
            std::vector<Pending> batch = take_batch(false);
            if (batch.empty()) return done;
            process(batch);
            done += batch.size();
        }
    }

    /// Stops the dispatcher after it finishes the pending queue (idempotent;
    /// also run by the destructor). Subsequent submits shed.
    void stop() {
        {
            std::lock_guard lock(mx_);
            stopping_ = true;
            cv_.notify_all();
        }
        if (dispatcher_.joinable()) dispatcher_.join();
        // Without a dispatcher the pending tail is nobody else's to flush.
        if (!cfg_.background) drain();
    }

    [[nodiscard]] QueryClassStats stats(QueryKind kind) const {
        const auto& c = stats_[static_cast<std::size_t>(kind)];
        QueryClassStats out;
        out.submitted = c.submitted.load(std::memory_order_relaxed);
        out.ok = c.ok.load(std::memory_order_relaxed);
        out.not_found = c.not_found.load(std::memory_order_relaxed);
        out.no_snapshot = c.no_snapshot.load(std::memory_order_relaxed);
        out.shed = c.shed.load(std::memory_order_relaxed);
        out.expired = c.expired.load(std::memory_order_relaxed);
        out.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
        out.total_us =
            static_cast<double>(c.total_ns.load(std::memory_order_relaxed)) *
            1e-3;
        out.max_us =
            static_cast<double>(c.max_ns.load(std::memory_order_relaxed)) *
            1e-3;
        return out;
    }
    /// Queries shed across all classes (admission-control rejections).
    [[nodiscard]] std::uint64_t shed_total() const {
        std::uint64_t total = 0;
        for (const auto& c : stats_)
            total += c.shed.load(std::memory_order_relaxed);
        return total;
    }
    [[nodiscard]] std::size_t pending() const {
        std::lock_guard lock(mx_);
        return pending_.size();
    }

private:
    struct Pending {
        Query query;
        std::uint64_t fp = 0;
        std::promise<QueryResult> promise;
        Clock::time_point enqueued;
    };

    struct ClassCounters {
        std::atomic<std::uint64_t> submitted{0}, ok{0}, not_found{0},
            no_snapshot{0}, shed{0}, expired{0}, cache_hits{0};
        std::atomic<std::uint64_t> total_ns{0}, max_ns{0};
    };

    /// Evaluates one query against `snap` (may be null), consulting and
    /// filling the cache. Thread-safe: called from pool workers.
    QueryResult evaluate(const Snapshot<T>* snap, const Query& q,
                         std::uint64_t fp) {
        if (snap == nullptr) return {QueryStatus::NoSnapshot, 0, 0, false, 0};
        QueryResult r;
        r.version = snap->version();
        if (cfg_.cache != nullptr) {
            if (const auto hit = cfg_.cache->lookup(r.version, fp)) {
                r.value = *hit;
                r.cache_hit = true;
                return r;
            }
        }
        {
            par::Profiler::Scope scope(par::Phase::ServeQuery);
            switch (q.kind) {
                case QueryKind::EdgeExists:
                    r.value = snap->edge_exists(q.row, q.col) ? 1.0 : 0.0;
                    break;
                case QueryKind::Degree:
                    r.value = static_cast<double>(snap->degree(q.row));
                    break;
                case QueryKind::KHop:
                    r.value = static_cast<double>(
                        snap->k_hop_count(q.row, q.hops));
                    break;
                case QueryKind::AnalyticsRead: {
                    const auto v = snap->analytics(q.metric);
                    if (!v) {
                        r.status = QueryStatus::NotFound;
                        return r;
                    }
                    r.value = *v;
                    break;
                }
            }
        }
        if (cfg_.cache != nullptr) cfg_.cache->insert(r.version, fp, r.value);
        return r;
    }

    /// Completion bookkeeping shared by every path that produced a result.
    void finish(ClassCounters& cls, QueryResult& r, Clock::time_point t0) {
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
        r.latency_us = static_cast<double>(ns) * 1e-3;
        const auto kind = static_cast<std::size_t>(&cls - stats_.data());
        switch (r.status) {
            case QueryStatus::Ok:
                cls.ok.fetch_add(1, std::memory_order_relaxed);
                if (r.cache_hit)
                    cls.cache_hits.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::NotFound:
                cls.not_found.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::NoSnapshot:
                cls.no_snapshot.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::Expired:
                cls.expired.fetch_add(1, std::memory_order_relaxed);
                obs_expired_[kind]->add(1);
                break;
            case QueryStatus::Shed:
                cls.shed.fetch_add(1, std::memory_order_relaxed);
                obs_shed_[kind]->add(1);
                return;  // shed latency is admission latency; not recorded
        }
        obs_latency_[kind]->record(ns);
        cls.total_ns.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t prev = cls.max_ns.load(std::memory_order_relaxed);
        while (prev < ns &&
               !cls.max_ns.compare_exchange_weak(prev, ns,
                                                 std::memory_order_relaxed)) {
        }
    }

    /// Pops up to batch_max pending queries; with `wait` blocks until work
    /// arrives or stop() is called.
    std::vector<Pending> take_batch(bool wait) {
        std::unique_lock lock(mx_);
        if (wait)
            cv_.wait(lock, [&] { return !pending_.empty() || stopping_; });
        std::vector<Pending> batch;
        const std::size_t n = std::min(pending_.size(), cfg_.batch_max);
        batch.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            batch.push_back(std::move(pending_.front()));
            pending_.pop_front();
        }
        return batch;
    }

    void process(std::vector<Pending>& batch) {
        // One consistent snapshot per batch: every query of the batch is
        // answered at the same version.
        auto snap = store_->current();
        const auto now = Clock::now();
        auto run_one = [&](std::size_t k) {
            Pending& p = batch[k];
            auto& cls = stats_[static_cast<std::size_t>(p.query.kind)];
            QueryResult r;
            if (now - p.enqueued > cfg_.deadline) {
                r.status = QueryStatus::Expired;
            } else {
                r = evaluate(snap.get(), p.query, p.fp);
            }
            finish(cls, r, p.enqueued);
            p.promise.set_value(r);
        };
        if (cfg_.pool != nullptr && batch.size() > 1) {
            cfg_.pool->parallel_for(
                batch.size(), [&](int, std::size_t begin, std::size_t end) {
                    for (std::size_t k = begin; k < end; ++k) run_one(k);
                });
        } else {
            for (std::size_t k = 0; k < batch.size(); ++k) run_one(k);
        }
    }

    void dispatch_loop() {
        for (;;) {
            std::vector<Pending> batch = take_batch(true);
            if (batch.empty()) {
                std::lock_guard lock(mx_);
                if (stopping_ && pending_.empty()) return;
                continue;
            }
            process(batch);
        }
    }

    const SnapshotStore<T>* store_;
    Config cfg_;

    mutable std::mutex mx_;
    std::condition_variable cv_;
    std::deque<Pending> pending_;
    bool stopping_ = false;

    std::array<ClassCounters, kQueryKindCount> stats_;
    // Registry instruments per query class (fetched once in the ctor).
    std::array<obs::Histogram*, kQueryKindCount> obs_latency_{};
    std::array<obs::Counter*, kQueryKindCount> obs_shed_{};
    std::array<obs::Counter*, kQueryKindCount> obs_expired_{};
    std::thread dispatcher_;
};

}  // namespace dsg::serve
