// Concurrent query executor with admission control: the compute side of the
// serving subsystem (docs/ARCHITECTURE.md, "The query serving layer").
//
// Typed queries (edge-exists, degree, k-hop neighborhood, analytics reads)
// are evaluated against the SnapshotStore's immutable published snapshots —
// never against the live matrix — so query work and epoch application never
// contend on the engine's locks. Two entry points:
//
//  - execute(q): synchronous, cache-aware evaluation on the calling thread.
//    The inline path for callers that want the answer now and the path the
//    cache gate benchmarks (cached vs uncached cost, same thread).
//  - submit(q) -> future: the admission-controlled path. A bounded pending
//    queue sheds on overflow (QueryStatus::Shed, counted per class) instead
//    of queueing unboundedly; queries that waited past their deadline are
//    expired un-executed (the client has given up — computing the answer
//    would be pure waste). A dispatcher thread drains the queue in batches
//    and fans each batch out over the SHARED par::ThreadPool (the same pool
//    the engine applies epochs with; parallel_for serializes jobs, so
//    serving borrows the pool between epochs instead of oversubscribing
//    the host). With background = false nothing is spawned and the test
//    harness pumps drain() deterministically.
//
// Caching: results are keyed by (query fingerprint, snapshot version) in
// the ResultCache. A submit whose answer is cached under the CURRENT
// version completes inline — it never consumes queue capacity. Version
// advance invalidates for free (see result_cache.hpp).
//
// Request-scoped tracing: every entering query mints a TraceContext (a
// process-unique qid), and all spans its processing emits — queue
// residence (ServeAdmit, recorded at drain with the submit-time start),
// cache lookups (ServeCache) and evaluation (ServeQuery) — carry the
// qid/class/snapshot-version under their args. The ServeQuery span is
// additionally flow-linked (id = snapshot version + 1) to the ServePublish
// span that produced the snapshot it was answered from, and completed
// queries are offered to the configured FlightRecorder with their span
// breakdown. See docs/ARCHITECTURE.md, "Request tracing & the watchdog".
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "par/profiler.hpp"
#include "par/thread_pool.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/query_types.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "sparse/types.hpp"

namespace dsg::serve {

/// Plain-value per-query-class accounting (copied out of atomics).
struct QueryClassStats {
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t not_found = 0;
    std::uint64_t no_snapshot = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t cache_hits = 0;
    double total_us = 0;  ///< latency over completed (non-shed) queries
    double max_us = 0;

    [[nodiscard]] std::uint64_t completed() const {
        return ok + not_found + no_snapshot + expired;
    }
    [[nodiscard]] double mean_us() const {
        return completed() > 0 ? total_us / static_cast<double>(completed())
                               : 0.0;
    }
};

struct ExecutorConfig {
    /// Admission control: submits beyond this many pending queries shed.
    std::size_t pending_capacity = 1024;
    /// Queries not started within this much of submit() expire unrun.
    std::chrono::milliseconds deadline{100};
    /// Queries per dispatcher batch (one pool job per batch).
    std::size_t batch_max = 64;
    /// Spawn the dispatcher thread. false = tests pump drain() manually.
    bool background = true;
    /// Shared pool for batch fan-out; nullptr evaluates on the
    /// dispatcher (or drain caller's) thread.
    par::ThreadPool* pool = nullptr;
    /// Result cache; nullptr disables caching entirely.
    ResultCache* cache = nullptr;
    /// Slow-query flight recorder; every completed (non-shed) query is
    /// offered when set. nullptr disables recording.
    FlightRecorder* recorder = nullptr;
};

template <typename T>
class QueryExecutor {
public:
    using Clock = std::chrono::steady_clock;
    using Config = ExecutorConfig;

    explicit QueryExecutor(const SnapshotStore<T>& store, Config cfg = {})
        : store_(&store), cfg_(cfg) {
        if (cfg_.batch_max == 0) cfg_.batch_max = 1;
        // Registry instruments, one family per query class (fetched once so
        // the completion path never touches the registry). The latency
        // histograms give the runtime p50/p99/p999 per class that
        // ROADMAP item 5(c) gates on.
        auto& reg = obs::registry();
        for (std::size_t k = 0; k < kQueryKindCount; ++k) {
            const obs::Labels cls = {
                {"class", query_kind_name(static_cast<QueryKind>(k))}};
            obs_latency_[k] = &reg.histogram("serve_query_ns", cls);
            obs_shed_[k] = &reg.counter("serve_query_shed", cls);
            obs_expired_[k] = &reg.counter("serve_query_expired", cls);
        }
        if (cfg_.background)
            dispatcher_ = std::thread([this] { dispatch_loop(); });
    }
    ~QueryExecutor() { stop(); }

    QueryExecutor(const QueryExecutor&) = delete;
    QueryExecutor& operator=(const QueryExecutor&) = delete;

    [[nodiscard]] const Config& config() const { return cfg_; }

    /// Synchronous cache-aware evaluation on the calling thread; bypasses
    /// admission control (inline callers self-limit by calling rate).
    QueryResult execute(const Query& q) {
        const auto t0 = Clock::now();
        const TraceContext ctx{next_query_id(), q.kind};
        auto& cls = stats_[static_cast<std::size_t>(q.kind)];
        cls.submitted.fetch_add(1, std::memory_order_relaxed);
        QueryTag tag(ctx);
        auto snap = store_->current();
        QueryResult r = evaluate(snap.get(), q, fingerprint(q));
        finish(cls, r, t0, ctx.qid, 0);
        return r;
    }

    /// Admission-controlled asynchronous evaluation. The returned future is
    /// always eventually fulfilled: with the answer, a cached answer
    /// (possibly inline), Shed on overflow/shutdown, or Expired past the
    /// deadline.
    std::future<QueryResult> submit(Query q) {
        const auto t0 = Clock::now();
        const TraceContext ctx{next_query_id(), q.kind};
        auto& cls = stats_[static_cast<std::size_t>(q.kind)];
        cls.submitted.fetch_add(1, std::memory_order_relaxed);
        std::promise<QueryResult> promise;
        auto future = promise.get_future();

        const std::uint64_t fp = fingerprint(q);
        if (cfg_.cache != nullptr) {
            if (const auto ver = store_->current_version()) {
                QueryTag tag(ctx);  // the cache-lookup span carries the qid
                if (const auto hit = cfg_.cache->lookup(*ver, fp)) {
                    QueryResult r{QueryStatus::Ok, *hit, *ver, true, 0};
                    finish(cls, r, t0, ctx.qid, 0);
                    promise.set_value(r);
                    return future;
                }
            }
        }
        {
            std::lock_guard lock(mx_);
            if (!stopping_ && pending_.size() < cfg_.pending_capacity) {
                pending_.push_back(
                    {std::move(q), fp, std::move(promise), t0, ctx.qid});
                cv_.notify_one();
                return future;
            }
        }
        cls.shed.fetch_add(1, std::memory_order_relaxed);
        obs_shed_[static_cast<std::size_t>(q.kind)]->add(1);
        promise.set_value({QueryStatus::Shed, 0, 0, false, 0, ctx.qid});
        return future;
    }

    /// Processes everything currently pending on the calling thread (the
    /// manual pump for background = false). Returns queries processed.
    std::size_t drain() {
        std::size_t done = 0;
        for (;;) {
            std::vector<Pending> batch = take_batch(false);
            if (batch.empty()) return done;
            process(batch);
            done += batch.size();
        }
    }

    /// Stops the dispatcher after it finishes the pending queue (idempotent;
    /// also run by the destructor). Subsequent submits shed.
    void stop() {
        {
            std::lock_guard lock(mx_);
            stopping_ = true;
            cv_.notify_all();
        }
        if (dispatcher_.joinable()) dispatcher_.join();
        // Without a dispatcher the pending tail is nobody else's to flush.
        if (!cfg_.background) drain();
    }

    [[nodiscard]] QueryClassStats stats(QueryKind kind) const {
        const auto& c = stats_[static_cast<std::size_t>(kind)];
        QueryClassStats out;
        out.submitted = c.submitted.load(std::memory_order_relaxed);
        out.ok = c.ok.load(std::memory_order_relaxed);
        out.not_found = c.not_found.load(std::memory_order_relaxed);
        out.no_snapshot = c.no_snapshot.load(std::memory_order_relaxed);
        out.shed = c.shed.load(std::memory_order_relaxed);
        out.expired = c.expired.load(std::memory_order_relaxed);
        out.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
        out.total_us =
            static_cast<double>(c.total_ns.load(std::memory_order_relaxed)) *
            1e-3;
        out.max_us =
            static_cast<double>(c.max_ns.load(std::memory_order_relaxed)) *
            1e-3;
        return out;
    }
    /// Queries shed across all classes (admission-control rejections).
    [[nodiscard]] std::uint64_t shed_total() const {
        std::uint64_t total = 0;
        for (const auto& c : stats_)
            total += c.shed.load(std::memory_order_relaxed);
        return total;
    }
    [[nodiscard]] std::size_t pending() const {
        std::lock_guard lock(mx_);
        return pending_.size();
    }

private:
    struct Pending {
        Query query;
        std::uint64_t fp = 0;
        std::promise<QueryResult> promise;
        Clock::time_point enqueued;
        std::uint64_t qid = 0;  ///< TraceContext minted at submit()
    };

    /// RAII thread tag for one query's processing: every span emitted while
    /// alive (admission, cache lookup, evaluation) carries the request's
    /// qid/class under its args.
    struct QueryTag {
        explicit QueryTag(const TraceContext& ctx) {
            par::Profiler::set_thread_query(ctx.qid,
                                            static_cast<int>(ctx.kind));
        }
        ~QueryTag() { par::Profiler::set_thread_query(0, -1); }
        QueryTag(const QueryTag&) = delete;
        QueryTag& operator=(const QueryTag&) = delete;
    };

    /// RAII thread tag for the snapshot version a query is answered from.
    struct VersionTag {
        explicit VersionTag(std::uint64_t v) {
            par::Profiler::set_thread_snapshot_version(
                static_cast<std::int64_t>(v));
        }
        ~VersionTag() { par::Profiler::set_thread_snapshot_version(-1); }
        VersionTag(const VersionTag&) = delete;
        VersionTag& operator=(const VersionTag&) = delete;
    };

    struct ClassCounters {
        std::atomic<std::uint64_t> submitted{0}, ok{0}, not_found{0},
            no_snapshot{0}, shed{0}, expired{0}, cache_hits{0};
        std::atomic<std::uint64_t> total_ns{0}, max_ns{0};
    };

    /// Evaluates one query against `snap` (may be null), consulting and
    /// filling the cache. Thread-safe: called from pool workers.
    QueryResult evaluate(const Snapshot<T>* snap, const Query& q,
                         std::uint64_t fp) {
        if (snap == nullptr) return {QueryStatus::NoSnapshot, 0, 0, false, 0};
        QueryResult r;
        r.version = snap->version();
        VersionTag vtag(r.version);
        if (cfg_.cache != nullptr) {
            if (const auto hit = cfg_.cache->lookup(r.version, fp)) {
                r.value = *hit;
                r.cache_hit = true;
                return r;
            }
        }
        {
            par::Profiler::Scope scope(par::Phase::ServeQuery);
            // Flow id = version + 1 (0 means "no flow"): the renderer links
            // this span back to the publish span that produced the snapshot.
            scope.set_flow(r.version + 1, par::FlowDir::Finish);
            switch (q.kind) {
                case QueryKind::EdgeExists:
                    r.value = snap->edge_exists(q.row, q.col) ? 1.0 : 0.0;
                    break;
                case QueryKind::Degree:
                    r.value = static_cast<double>(snap->degree(q.row));
                    break;
                case QueryKind::KHop:
                    r.value = static_cast<double>(
                        snap->k_hop_count(q.row, q.hops));
                    break;
                case QueryKind::AnalyticsRead: {
                    const auto v = snap->analytics(q.metric);
                    if (!v) {
                        r.status = QueryStatus::NotFound;
                        return r;
                    }
                    r.value = *v;
                    break;
                }
            }
        }
        if (cfg_.cache != nullptr) cfg_.cache->insert(r.version, fp, r.value);
        return r;
    }

    /// Completion bookkeeping shared by every path that produced a result.
    /// `wait_ns` is the admission wait (queue residence) of the submit
    /// path; inline paths pass 0.
    void finish(ClassCounters& cls, QueryResult& r, Clock::time_point t0,
                std::uint64_t qid, std::uint64_t wait_ns) {
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
        r.latency_us = static_cast<double>(ns) * 1e-3;
        r.qid = qid;
        const auto kind = static_cast<std::size_t>(&cls - stats_.data());
        switch (r.status) {
            case QueryStatus::Ok:
                cls.ok.fetch_add(1, std::memory_order_relaxed);
                if (r.cache_hit)
                    cls.cache_hits.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::NotFound:
                cls.not_found.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::NoSnapshot:
                cls.no_snapshot.fetch_add(1, std::memory_order_relaxed);
                break;
            case QueryStatus::Expired:
                cls.expired.fetch_add(1, std::memory_order_relaxed);
                obs_expired_[kind]->add(1);
                break;
            case QueryStatus::Shed:
                cls.shed.fetch_add(1, std::memory_order_relaxed);
                obs_shed_[kind]->add(1);
                return;  // shed latency is admission latency; not recorded
        }
        obs_latency_[kind]->record(ns);
        cls.total_ns.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t prev = cls.max_ns.load(std::memory_order_relaxed);
        while (prev < ns &&
               !cls.max_ns.compare_exchange_weak(prev, ns,
                                                 std::memory_order_relaxed)) {
        }
        if (cfg_.recorder != nullptr) {
            FlightRecorder::Entry e;
            e.qid = qid;
            e.kind = static_cast<QueryKind>(kind);
            e.status = r.status;
            e.cache_hit = r.cache_hit;
            e.snapshot_version = r.version;
            if (r.version > 0)
                if (const auto cur = store_->current_version())
                    e.snapshot_lag = static_cast<std::int64_t>(*cur) -
                                     static_cast<std::int64_t>(r.version);
            e.admission_wait_ns = std::min(wait_ns, ns);
            e.execute_ns = ns - e.admission_wait_ns;
            e.total_ns = ns;
            cfg_.recorder->record(e);
        }
    }

    /// Pops up to batch_max pending queries; with `wait` blocks until work
    /// arrives or stop() is called.
    std::vector<Pending> take_batch(bool wait) {
        std::unique_lock lock(mx_);
        if (wait)
            cv_.wait(lock, [&] { return !pending_.empty() || stopping_; });
        std::vector<Pending> batch;
        const std::size_t n = std::min(pending_.size(), cfg_.batch_max);
        batch.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            batch.push_back(std::move(pending_.front()));
            pending_.pop_front();
        }
        return batch;
    }

    void process(std::vector<Pending>& batch) {
        // One consistent snapshot per batch: every query of the batch is
        // answered at the same version.
        auto snap = store_->current();
        const auto now = Clock::now();
        auto run_one = [&](std::size_t k) {
            Pending& p = batch[k];
            auto& cls = stats_[static_cast<std::size_t>(p.query.kind)];
            const QueryTag tag(TraceContext{p.qid, p.query.kind});
            const auto wait_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - p.enqueued)
                    .count());
            // The admission span brackets queue residence: emitted here (the
            // wait is only known at drain) with the submit-time start.
            par::Profiler::emit_span(par::Phase::ServeAdmit, p.enqueued,
                                     wait_ns);
            QueryResult r;
            if (now - p.enqueued > cfg_.deadline) {
                r.status = QueryStatus::Expired;
            } else {
                r = evaluate(snap.get(), p.query, p.fp);
            }
            finish(cls, r, p.enqueued, p.qid, wait_ns);
            p.promise.set_value(r);
        };
        if (cfg_.pool != nullptr && batch.size() > 1) {
            cfg_.pool->parallel_for(
                batch.size(), [&](int, std::size_t begin, std::size_t end) {
                    for (std::size_t k = begin; k < end; ++k) run_one(k);
                });
        } else {
            for (std::size_t k = 0; k < batch.size(); ++k) run_one(k);
        }
    }

    void dispatch_loop() {
        for (;;) {
            std::vector<Pending> batch = take_batch(true);
            if (batch.empty()) {
                std::lock_guard lock(mx_);
                if (stopping_ && pending_.empty()) return;
                continue;
            }
            process(batch);
        }
    }

    const SnapshotStore<T>* store_;
    Config cfg_;

    mutable std::mutex mx_;
    std::condition_variable cv_;
    std::deque<Pending> pending_;
    bool stopping_ = false;

    std::array<ClassCounters, kQueryKindCount> stats_;
    // Registry instruments per query class (fetched once in the ctor).
    std::array<obs::Histogram*, kQueryKindCount> obs_latency_{};
    std::array<obs::Counter*, kQueryKindCount> obs_shed_{};
    std::array<obs::Counter*, kQueryKindCount> obs_expired_{};
    std::thread dispatcher_;
};

}  // namespace dsg::serve
