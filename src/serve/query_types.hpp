// Query vocabulary of the serving subsystem: typed queries, their stable
// fingerprints, and result/status types. Split from query_executor.hpp so
// sidecars (flight recorder, load generator) can speak the same types
// without pulling in the executor.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "sparse/types.hpp"

namespace dsg::serve {

enum class QueryKind : std::uint8_t {
    EdgeExists,     ///< is (row, col) a stored non-zero? value 1/0
    Degree,         ///< stored out-degree of `row`
    KHop,           ///< vertices within <= `hops` directed steps of `row`
    AnalyticsRead,  ///< frozen maintainer readout named `metric`
};
inline constexpr std::size_t kQueryKindCount = 4;

[[nodiscard]] constexpr const char* query_kind_name(QueryKind k) {
    switch (k) {
        case QueryKind::EdgeExists: return "edge-exists";
        case QueryKind::Degree: return "degree";
        case QueryKind::KHop: return "k-hop";
        case QueryKind::AnalyticsRead: return "analytics-read";
    }
    return "?";
}

/// One typed query. Fields beyond `kind` are read per kind (see QueryKind).
struct Query {
    QueryKind kind = QueryKind::EdgeExists;
    sparse::index_t row = 0;
    sparse::index_t col = 0;
    int hops = 1;        ///< KHop only
    std::string metric;  ///< AnalyticsRead only

    friend bool operator==(const Query&, const Query&) = default;
};

/// Stable 64-bit fingerprint of a query — the cache key next to the
/// snapshot version. Collisions are as likely as any 64-bit hash; a
/// colliding pair would serve one the other's cached double, which the
/// serving tier tolerates (caches trade exactness of THIS kind away; the
/// uncached path stays authoritative).
[[nodiscard]] inline std::uint64_t fingerprint(const Query& q) {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdull;
        return h ^ (h >> 33);
    };
    std::uint64_t h = 0x5851f42d4c957f2dull;
    h = mix(h, static_cast<std::uint64_t>(q.kind));
    h = mix(h, static_cast<std::uint64_t>(q.row));
    h = mix(h, static_cast<std::uint64_t>(q.col));
    h = mix(h, static_cast<std::uint64_t>(q.hops));
    for (const char c : q.metric)
        h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

enum class QueryStatus : std::uint8_t {
    Ok,          ///< value is the answer
    NotFound,    ///< AnalyticsRead named an unknown metric
    NoSnapshot,  ///< nothing published yet (store before first publication)
    Shed,        ///< rejected by admission control (queue full / shutdown)
    Expired,     ///< waited past its deadline; never executed
};

[[nodiscard]] constexpr const char* query_status_name(QueryStatus s) {
    switch (s) {
        case QueryStatus::Ok: return "ok";
        case QueryStatus::NotFound: return "not-found";
        case QueryStatus::NoSnapshot: return "no-snapshot";
        case QueryStatus::Shed: return "shed";
        case QueryStatus::Expired: return "expired";
    }
    return "?";
}

struct QueryResult {
    QueryStatus status = QueryStatus::Ok;
    double value = 0;           ///< answer (Ok): count, 0/1, or readout
    std::uint64_t version = 0;  ///< snapshot version that answered
    bool cache_hit = false;
    double latency_us = 0;  ///< submit/execute entry to completion
    std::uint64_t qid = 0;  ///< request id minted at submit()/execute()
};

/// Request-scoped trace context, minted when a query enters the executor
/// (submit() or execute()). The qid is process-unique and tags every span
/// the query's processing emits (admission, cache lookup, evaluation) via
/// par::Profiler::set_thread_query, giving each request an end-to-end
/// identity across the trace rings, the flight recorder, and QueryResult.
struct TraceContext {
    std::uint64_t qid = 0;
    QueryKind kind = QueryKind::EdgeExists;
};

/// Mints the next process-unique query id (never 0).
[[nodiscard]] inline std::uint64_t next_query_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace dsg::serve
