// Version-keyed query-result cache of the serving subsystem
// (docs/ARCHITECTURE.md, "The query serving layer").
//
// Entries are keyed by (snapshot version, query fingerprint): a cached value
// is the result of one query evaluated against one immutable published
// snapshot, so it can never go stale — when the engine applies epochs and
// the SnapshotStore publishes a newer version, lookups simply key on the new
// version and miss. That is the whole invalidation story: version advance
// invalidates for free, no per-write tracking, no TTLs. The entries of
// retired versions are physically dropped by invalidate_before(), which the
// SnapshotStore calls as its retention window slides.
//
// Internally the cache is sharded by version (one hash map per retained
// snapshot version), because every maintenance operation — retire a
// version, account a version's footprint, evict under pressure — is a
// whole-shard operation. Reads take a shared lock; inserts and invalidation
// take the exclusive lock. Counters are atomics so stats() is safe from any
// thread without touching the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "par/profiler.hpp"

namespace dsg::serve {

struct CacheConfig {
    /// Total entries across all version shards; inserting beyond this
    /// evicts the oldest version's shard wholesale (oldest results are
    /// the least likely to be queried again — readers follow current()).
    std::size_t capacity = std::size_t{1} << 16;
};

class ResultCache {
public:
    using Config = CacheConfig;

    /// Monotone counters; a plain-value copy is returned by stats().
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t invalidated = 0;  ///< entries dropped by version retire
        std::uint64_t evicted = 0;      ///< entries dropped by capacity
    };

    explicit ResultCache(Config cfg = {}) : cfg_(cfg) {
        if (cfg_.capacity == 0) cfg_.capacity = 1;
        // Registry instruments mirroring the atomics below (fetched once;
        // lookups/inserts are the serving hot path).
        auto& reg = obs::registry();
        obs_hits_ = &reg.counter("serve_cache_hits");
        obs_misses_ = &reg.counter("serve_cache_misses");
        obs_inserts_ = &reg.counter("serve_cache_inserts");
        obs_invalidated_ = &reg.counter("serve_cache_invalidated");
        obs_evicted_ = &reg.counter("serve_cache_evicted");
    }

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    [[nodiscard]] const Config& config() const { return cfg_; }

    /// The cached value of `fingerprint` under snapshot `version`, if any.
    [[nodiscard]] std::optional<double> lookup(std::uint64_t version,
                                               std::uint64_t fingerprint) const {
        par::Profiler::Scope scope(par::Phase::ServeCache);
        {
            std::shared_lock lock(mx_);
            if (const auto shard = shards_.find(version);
                shard != shards_.end()) {
                if (const auto it = shard->second.find(fingerprint);
                    it != shard->second.end()) {
                    hits_.fetch_add(1, std::memory_order_relaxed);
                    obs_hits_->add(1);
                    return it->second;
                }
            }
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        obs_misses_->add(1);
        return std::nullopt;
    }

    /// Caches `value` under (version, fingerprint), evicting the oldest
    /// version's shard first when the capacity is reached.
    void insert(std::uint64_t version, std::uint64_t fingerprint,
                double value) {
        par::Profiler::Scope scope(par::Phase::ServeCache);
        std::unique_lock lock(mx_);
        while (entries_ >= cfg_.capacity && !shards_.empty()) {
            auto oldest = shards_.begin();
            // When the oldest shard IS the target version the cache is
            // saturated by live-version results; dropping it still frees
            // room and the hot keys repopulate on their next miss.
            entries_ -= oldest->second.size();
            evicted_.fetch_add(oldest->second.size(),
                               std::memory_order_relaxed);
            obs_evicted_->add(oldest->second.size());
            shards_.erase(oldest);
        }
        if (shards_[version].insert_or_assign(fingerprint, value).second)
            ++entries_;
        inserts_.fetch_add(1, std::memory_order_relaxed);
        obs_inserts_->add(1);
    }

    /// Drops every shard with version < `version` — called by the
    /// SnapshotStore when its retention window slides past those versions,
    /// so cache memory tracks the set of snapshots still reachable.
    void invalidate_before(std::uint64_t version) {
        par::Profiler::Scope scope(par::Phase::ServeCache);
        std::unique_lock lock(mx_);
        while (!shards_.empty() && shards_.begin()->first < version) {
            entries_ -= shards_.begin()->second.size();
            invalidated_.fetch_add(shards_.begin()->second.size(),
                                   std::memory_order_relaxed);
            obs_invalidated_->add(shards_.begin()->second.size());
            shards_.erase(shards_.begin());
        }
    }

    void clear() {
        std::unique_lock lock(mx_);
        shards_.clear();
        entries_ = 0;
    }

    /// Entries currently cached (all versions).
    [[nodiscard]] std::size_t size() const {
        std::shared_lock lock(mx_);
        return entries_;
    }
    /// Retained version shards.
    [[nodiscard]] std::size_t versions() const {
        std::shared_lock lock(mx_);
        return shards_.size();
    }
    [[nodiscard]] Stats stats() const {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed),
                inserts_.load(std::memory_order_relaxed),
                invalidated_.load(std::memory_order_relaxed),
                evicted_.load(std::memory_order_relaxed)};
    }

private:
    Config cfg_;
    mutable std::shared_mutex mx_;
    // Version-ascending so "oldest shard" and "everything below v" are the
    // map's front; the per-version inner maps carry the O(1) lookups.
    std::map<std::uint64_t, std::unordered_map<std::uint64_t, double>> shards_;
    std::size_t entries_ = 0;

    mutable std::atomic<std::uint64_t> hits_{0}, misses_{0};
    std::atomic<std::uint64_t> inserts_{0}, invalidated_{0}, evicted_{0};

    // Registry instruments (fetched once in the ctor).
    obs::Counter* obs_hits_ = nullptr;
    obs::Counter* obs_misses_ = nullptr;
    obs::Counter* obs_inserts_ = nullptr;
    obs::Counter* obs_invalidated_ = nullptr;
    obs::Counter* obs_evicted_ = nullptr;
};

}  // namespace dsg::serve
