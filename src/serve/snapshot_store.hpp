// Versioned immutable snapshot store: the read path of the serving
// subsystem (docs/ARCHITECTURE.md, "The query serving layer").
//
// The problem this solves: EpochEngine::with_snapshot serves reads under a
// shared lock on the LIVE matrix, so every reader excludes epoch
// application for its whole read — one slow analytical reader stalls
// ingestion for everyone. The SnapshotStore decouples the two sides: it
// subscribes to the engine's snapshot-publication hook and, every
// `publish_every` applied epochs, freezes an immutable Snapshot — every
// rank's block as a DCSR tile (with O(1) row lookups) plus the frozen
// AnalyticsHub readouts, all under the engine's writer lock where matrix
// and maintainers are quiescent and mutually consistent. Readers then query
// the published Snapshot through a plain shared_ptr: no engine lock, no
// collectives, no waiting on epoch application — and epoch application
// never waits on them.
//
// Versioning and retirement: the store retains the last `retain` published
// versions. Retiring a version from the store only drops the store's
// reference — the shared_ptr refcount keeps the snapshot alive until its
// LAST reader drops, so a reader pinning an old version keeps exactly that
// version's memory and nothing else (live_snapshots() makes the population
// observable). A registered ResultCache is pruned in lockstep: entries of
// versions that slid out of the retention window are invalidated at
// publish time.
//
// SPMD contract: ONE store instance is shared by all ranks of a grid
// (ranks are threads — see docs/ARCHITECTURE.md on the runtime). attach()
// must be called by every rank, like constructing any SPMD object;
// publication then runs collectively inside the engine's hook: each rank
// freezes its own tile into a staging slot, a barrier joins them, and rank
// 0 seals the global snapshot. Published snapshots are whole-matrix
// objects — any thread can answer queries about ANY coordinate, which is
// what lets the query executor run on non-rank threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analytics/maintainer.hpp"
#include "core/dist_matrix.hpp"
#include "obs/metrics.hpp"
#include "par/profiler.hpp"
#include "serve/result_cache.hpp"
#include "sparse/dcsr.hpp"

namespace dsg::serve {

/// One immutable published snapshot of the whole distributed matrix plus
/// the frozen analytics readouts. Never mutated after construction, so any
/// number of threads may query it concurrently without synchronization;
/// lifetime is refcounted (hold it through the shared_ptr the store hands
/// out, and it cannot be retired under you).
template <typename T>
class Snapshot {
public:
    /// Grid geometry a snapshot needs to resolve global coordinates without
    /// keeping the (mutable, rank-affine) ProcessGrid alive.
    struct Geometry {
        sparse::index_t nrows = 0;
        sparse::index_t ncols = 0;
        int rows = 1;  ///< grid shape; tiles are indexed rank = i*cols + j
        int cols = 1;
        core::BlockPartition row_partition;
        core::BlockPartition col_partition;
    };

    Snapshot(std::uint64_t version, Geometry geom,
             std::vector<sparse::Dcsr<T>> tiles,
             std::vector<std::pair<std::string, double>> readouts,
             std::shared_ptr<std::atomic<std::int64_t>> live)
        : version_(version),
          geom_(std::move(geom)),
          tiles_(std::move(tiles)),
          readouts_(std::move(readouts)),
          live_(std::move(live)) {
        assert(tiles_.size() == static_cast<std::size_t>(geom_.rows) *
                                    static_cast<std::size_t>(geom_.cols));
        lookups_.reserve(tiles_.size());
        for (const auto& tile : tiles_) {
            lookups_.emplace_back(tile);
            nnz_ += tile.nnz();
        }
        if (live_) live_->fetch_add(1, std::memory_order_relaxed);
    }
    ~Snapshot() {
        if (live_) live_->fetch_sub(1, std::memory_order_relaxed);
    }

    // Immutable by contract; the row lookups hold pointers into tiles_.
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    /// Engine version this snapshot froze (monotone across publications).
    [[nodiscard]] std::uint64_t version() const { return version_; }
    [[nodiscard]] sparse::index_t nrows() const { return geom_.nrows; }
    [[nodiscard]] sparse::index_t ncols() const { return geom_.ncols; }
    /// Non-zeros across all tiles at freeze time.
    [[nodiscard]] std::size_t nnz() const { return nnz_; }

    // -- point and row queries (global coordinates, no locks) ----------------

    /// Whether (i, j) was a stored non-zero at freeze time.
    [[nodiscard]] bool edge_exists(sparse::index_t i, sparse::index_t j) const {
        if (!in_range(i, j)) return false;
        const auto& tile = tiles_[tile_of(i, j)];
        const auto& lookup = lookups_[tile_of(i, j)];
        const std::size_t pos =
            lookup.position(geom_.row_partition.to_local(i));
        if (pos == sparse::DcsrRowLookup<T>::npos) return false;
        const sparse::index_t lj = geom_.col_partition.to_local(j);
        for (const sparse::index_t c : tile.row_cols(pos))
            if (c == lj) return true;
        return false;
    }

    /// Stored value at (i, j), or nullopt when structurally zero.
    [[nodiscard]] std::optional<T> value_at(sparse::index_t i,
                                            sparse::index_t j) const {
        if (!in_range(i, j)) return std::nullopt;
        const auto& tile = tiles_[tile_of(i, j)];
        const std::size_t pos =
            lookups_[tile_of(i, j)].position(geom_.row_partition.to_local(i));
        if (pos == sparse::DcsrRowLookup<T>::npos) return std::nullopt;
        const sparse::index_t lj = geom_.col_partition.to_local(j);
        const auto cols = tile.row_cols(pos);
        for (std::size_t k = 0; k < cols.size(); ++k)
            if (cols[k] == lj) return tile.row_values(pos)[k];
        return std::nullopt;
    }

    /// Out-degree of row i (stored non-zeros across the row's grid blocks).
    [[nodiscard]] std::size_t degree(sparse::index_t i) const {
        if (i < 0 || i >= geom_.nrows) return 0;
        const int ib = geom_.row_partition.owner(i);
        const sparse::index_t li = geom_.row_partition.to_local(i);
        std::size_t deg = 0;
        for (int jb = 0; jb < geom_.cols; ++jb) {
            const std::size_t t = static_cast<std::size_t>(ib) *
                                      static_cast<std::size_t>(geom_.cols) +
                                  static_cast<std::size_t>(jb);
            const std::size_t pos = lookups_[t].position(li);
            if (pos != sparse::DcsrRowLookup<T>::npos)
                deg += tiles_[t].row_cols(pos).size();
        }
        return deg;
    }

    /// Invokes fn(global col, value) over the stored entries of row i.
    template <typename Fn>
    void for_row(sparse::index_t i, Fn&& fn) const {
        if (i < 0 || i >= geom_.nrows) return;
        const int ib = geom_.row_partition.owner(i);
        const sparse::index_t li = geom_.row_partition.to_local(i);
        for (int jb = 0; jb < geom_.cols; ++jb) {
            const std::size_t t = static_cast<std::size_t>(ib) *
                                      static_cast<std::size_t>(geom_.cols) +
                                  static_cast<std::size_t>(jb);
            const std::size_t pos = lookups_[t].position(li);
            if (pos == sparse::DcsrRowLookup<T>::npos) continue;
            const auto cols = tiles_[t].row_cols(pos);
            const auto vals = tiles_[t].row_values(pos);
            for (std::size_t k = 0; k < cols.size(); ++k)
                fn(geom_.col_partition.to_global(jb, cols[k]), vals[k]);
        }
    }

    /// Vertices reachable from `src` in at most `hops` directed steps,
    /// excluding `src` itself. This is k rounds of masked SpMV over the
    /// Boolean semiring — y = xᵀA with the complement of the visited set as
    /// mask — evaluated as sparse frontier expansion against the frozen
    /// tiles (the mask is what keeps each vertex expanded exactly once).
    [[nodiscard]] std::size_t k_hop_count(sparse::index_t src, int hops) const {
        if (src < 0 || src >= geom_.nrows || hops <= 0) return 0;
        std::vector<std::uint8_t> visited(
            static_cast<std::size_t>(std::max(geom_.nrows, geom_.ncols)), 0);
        visited[static_cast<std::size_t>(src)] = 1;
        std::vector<sparse::index_t> frontier{src}, next;
        std::size_t reached = 0;
        for (int h = 0; h < hops && !frontier.empty(); ++h) {
            next.clear();
            for (const sparse::index_t u : frontier) {
                if (u >= geom_.nrows) continue;  // col-only vertex: no out-edges
                for_row(u, [&](sparse::index_t v, const T&) {
                    auto& seen = visited[static_cast<std::size_t>(v)];
                    if (seen) return;
                    seen = 1;
                    ++reached;
                    next.push_back(v);
                });
            }
            frontier.swap(next);
        }
        return reached;
    }

    // -- frozen analytics readouts -------------------------------------------

    /// The derived value published under `name` at freeze time, if a
    /// maintainer by that name was attached.
    [[nodiscard]] std::optional<double> analytics(std::string_view name) const {
        for (const auto& [key, value] : readouts_)
            if (key == name) return value;
        return std::nullopt;
    }
    /// All frozen (name, value) readouts, in hub registration order.
    [[nodiscard]] const std::vector<std::pair<std::string, double>>& readouts()
        const {
        return readouts_;
    }

private:
    [[nodiscard]] bool in_range(sparse::index_t i, sparse::index_t j) const {
        return i >= 0 && i < geom_.nrows && j >= 0 && j < geom_.ncols;
    }
    [[nodiscard]] std::size_t tile_of(sparse::index_t i,
                                      sparse::index_t j) const {
        return static_cast<std::size_t>(geom_.row_partition.owner(i)) *
                   static_cast<std::size_t>(geom_.cols) +
               static_cast<std::size_t>(geom_.col_partition.owner(j));
    }

    std::uint64_t version_;
    Geometry geom_;
    std::vector<sparse::Dcsr<T>> tiles_;          // indexed by world rank
    std::vector<sparse::DcsrRowLookup<T>> lookups_;  // parallel to tiles_
    std::vector<std::pair<std::string, double>> readouts_;
    std::size_t nnz_ = 0;
    std::shared_ptr<std::atomic<std::int64_t>> live_;  // population counter
};

struct StoreConfig {
    /// Publish at every version divisible by this (1 = every applied
    /// epoch). Clamped to >= 1.
    std::uint64_t publish_every = 4;
    /// Published versions the store itself keeps alive. Clamped to >= 1.
    std::size_t retain = 3;
    /// Publish an initial snapshot during attach() (before any epoch),
    /// so readers are never snapshot-less — including immediately after
    /// recovery, where the initial version is the restored one.
    bool publish_on_attach = true;
};

/// The store: owns the publication protocol and the retention window. See
/// the header comment for the SPMD contract.
template <typename T>
class SnapshotStore {
public:
    using Config = StoreConfig;

    explicit SnapshotStore(Config cfg = {})
        : cfg_(cfg),
          live_(std::make_shared<std::atomic<std::int64_t>>(0)) {
        if (cfg_.publish_every == 0) cfg_.publish_every = 1;
        if (cfg_.retain == 0) cfg_.retain = 1;
        // Registry instruments (fetched once; rank 0 updates the gauges).
        auto& reg = obs::registry();
        obs_publish_ns_ = &reg.histogram("serve_publish_ns");
        obs_published_ = &reg.counter("serve_snapshots_published");
        obs_live_ = &reg.gauge("serve_snapshots_live");
        obs_lag_ = &reg.gauge("serve_snapshot_lag");
    }

    SnapshotStore(const SnapshotStore&) = delete;
    SnapshotStore& operator=(const SnapshotStore&) = delete;

    [[nodiscard]] const Config& config() const { return cfg_; }

    /// Registers a ResultCache to be pruned as the retention window slides.
    /// Call before attach() (rank 0 prunes it during publication).
    void set_cache(ResultCache* cache) { cache_ = cache; }

    /// Collective: subscribes this rank to `engine`'s publication hook and
    /// (by default) publishes the initial snapshot at the engine's starting
    /// version. Every rank of the grid must call attach with its own engine
    /// and matrix, before pumping starts; `hub`, when given, must be the
    /// rank's hub (rank 0's readouts are frozen — they are identical on
    /// every rank by the hub's collective contract).
    template <typename Engine>
    void attach(Engine& engine, core::DistDynamicMatrix<T>& A,
                const analytics::AnalyticsHub<T>* hub = nullptr) {
        auto& grid = A.shape().grid();
        const int rank = grid.world().rank();
        {
            std::lock_guard lock(reg_mx_);
            if (staging_.empty()) {
                staging_.resize(static_cast<std::size_t>(grid.world().size()));
                geom_.nrows = A.shape().nrows();
                geom_.ncols = A.shape().ncols();
                geom_.rows = grid.rows();
                geom_.cols = grid.cols();
                geom_.row_partition = A.shape().row_partition();
                geom_.col_partition = A.shape().col_partition();
            }
            if (rank == 0) hub_ = hub;
        }
        engine.set_publish_hook([this, &A, rank](std::uint64_t version) {
            if (version % cfg_.publish_every == 0) publish_now(A, rank, version);
            if (rank == 0) {
                // Version lag of the newest published snapshot behind the
                // engine (0 right after an on-cycle publication), refreshed
                // every applied epoch.
                const auto cur = current_version();
                obs_lag_->set(static_cast<std::int64_t>(
                    cur ? version - std::min(version, *cur) : version));
                obs_live_->set(live_snapshots());
            }
        });
        if (cfg_.publish_on_attach)
            publish_now(A, rank, engine.config().initial_version);
    }

    /// Collective: freezes and publishes a snapshot of `A` at `version`
    /// right now, regardless of cadence. The caller must guarantee the
    /// matrix is quiescent on every rank (the engine's hook guarantees it;
    /// attach-time publication happens before pumping starts).
    void publish_now(const core::DistDynamicMatrix<T>& A, int rank,
                     std::uint64_t version) {
        // Rank 0 (the sealer) marks its publish span as the flow producer
        // for this version: query spans answered from the snapshot carry
        // the matching flow id, and obs::to_chrome_trace renders the pairs
        // as s/f flow arrows ("this slow query waited on that publish").
        par::Profiler::set_thread_snapshot_version(
            static_cast<std::int64_t>(version));
        {
            par::Profiler::Scope scope(par::Phase::ServePublish);
            if (rank == 0)
                scope.set_flow(version + 1, par::FlowDir::Start);
            const auto t0 = std::chrono::steady_clock::now();
            staging_[static_cast<std::size_t>(rank)] = A.freeze_tile();
            auto& world = A.shape().grid().world();
            world.barrier();  // all tiles staged
            if (rank == 0) seal(version);
            world.barrier();  // sealed before any rank can restage
            if (rank == 0)
                obs_publish_ns_->record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
        }
        par::Profiler::set_thread_snapshot_version(-1);
    }

    // -- reader side (any thread, any time) ----------------------------------

    /// The newest published snapshot, or nullptr before the first
    /// publication. Holding the returned pointer pins the snapshot.
    [[nodiscard]] std::shared_ptr<const Snapshot<T>> current() const {
        std::lock_guard lock(mx_);
        return versions_.empty() ? nullptr : versions_.back();
    }
    /// A specific retained version, or nullptr if never published / retired.
    [[nodiscard]] std::shared_ptr<const Snapshot<T>> get(
        std::uint64_t version) const {
        std::lock_guard lock(mx_);
        for (const auto& s : versions_)
            if (s->version() == version) return s;
        return nullptr;
    }
    /// Version of current(), or nullopt before the first publication.
    [[nodiscard]] std::optional<std::uint64_t> current_version() const {
        std::lock_guard lock(mx_);
        return versions_.empty() ? std::nullopt
                                 : std::optional(versions_.back()->version());
    }
    /// Oldest version the store still retains (readers may pin older ones).
    [[nodiscard]] std::optional<std::uint64_t> oldest_version() const {
        std::lock_guard lock(mx_);
        return versions_.empty() ? std::nullopt
                                 : std::optional(versions_.front()->version());
    }
    /// Versions the store currently retains (<= config().retain).
    [[nodiscard]] std::size_t retained() const {
        std::lock_guard lock(mx_);
        return versions_.size();
    }
    /// Snapshots published since construction.
    [[nodiscard]] std::uint64_t published() const {
        std::lock_guard lock(mx_);
        return published_;
    }
    /// Snapshot objects alive right now: retained + reader-pinned retirees.
    /// This is what makes refcounted retirement observable — it exceeds
    /// retained() exactly while a retired version is still pinned.
    [[nodiscard]] std::int64_t live_snapshots() const {
        return live_->load(std::memory_order_relaxed);
    }

private:
    void seal(std::uint64_t version) {
        auto readouts = hub_ != nullptr
                            ? hub_->snapshots()
                            : std::vector<std::pair<std::string, double>>{};
        auto snap = std::make_shared<Snapshot<T>>(
            version, geom_, std::move(staging_), std::move(readouts), live_);
        staging_.assign(tile_count(), sparse::Dcsr<T>{});
        std::lock_guard lock(mx_);
        // Re-publishing the same version (attach on a store that already
        // holds it) replaces in place rather than duplicating the window.
        if (!versions_.empty() && versions_.back()->version() == version)
            versions_.pop_back();
        versions_.push_back(std::move(snap));
        ++published_;
        obs_published_->add(1);
        while (versions_.size() > cfg_.retain) versions_.pop_front();
        if (cache_ != nullptr)
            cache_->invalidate_before(versions_.front()->version());
    }

    [[nodiscard]] std::size_t tile_count() const {
        return static_cast<std::size_t>(geom_.rows) *
               static_cast<std::size_t>(geom_.cols);
    }

    Config cfg_;
    ResultCache* cache_ = nullptr;

    std::mutex reg_mx_;  // attach-time registration
    typename Snapshot<T>::Geometry geom_;
    std::vector<sparse::Dcsr<T>> staging_;  // slot r: rank r's frozen tile
    const analytics::AnalyticsHub<T>* hub_ = nullptr;  // rank 0's hub

    mutable std::mutex mx_;  // guards the published window
    std::deque<std::shared_ptr<const Snapshot<T>>> versions_;
    std::uint64_t published_ = 0;
    std::shared_ptr<std::atomic<std::int64_t>> live_;

    // Registry instruments (fetched once in the ctor).
    obs::Histogram* obs_publish_ns_ = nullptr;
    obs::Counter* obs_published_ = nullptr;
    obs::Gauge* obs_live_ = nullptr;
    obs::Gauge* obs_lag_ = nullptr;
};

}  // namespace dsg::serve
