// Coordinate-format utilities: counting sort (the redistribution kernel of
// Section IV-B), duplicate combination, and index permutation (the random
// remapping the paper applies for load balance, Section VII-A).
#pragma once

#include <algorithm>
#include <cassert>
#include <numeric>
#include <random>
#include <vector>

#include "sparse/semiring.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

/// Stable counting sort of triples into `buckets` groups by key(triple) in
/// [0, buckets). Returns the bucket boundaries: offsets[b] .. offsets[b+1] is
/// bucket b. This is the O(nnz + buckets) grouping the paper's two-phase
/// redistribution uses with buckets = sqrt(p).
template <typename T, typename KeyFn>
std::vector<std::size_t> counting_sort(std::vector<Triple<T>>& triples,
                                       std::size_t buckets, KeyFn&& key) {
    std::vector<std::size_t> counts(buckets + 1, 0);
    for (const auto& t : triples) {
        const auto b = static_cast<std::size_t>(key(t));
        assert(b < buckets);
        ++counts[b + 1];
    }
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    std::vector<Triple<T>> out(triples.size());
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (auto& t : triples)
        out[cursor[static_cast<std::size_t>(key(t))]++] = std::move(t);
    triples = std::move(out);
    return counts;
}

/// Sorts triples by (row, col) with a comparison sort. This is deliberately
/// the *competitor's* strategy (CombBLAS-style, Section VII-B a); our own
/// code paths use counting_sort.
template <typename T>
void comparison_sort_row_col(std::vector<Triple<T>>& triples) {
    std::sort(triples.begin(), triples.end(),
              [](const Triple<T>& a, const Triple<T>& b) {
                  return std::tie(a.row, a.col) < std::tie(b.row, b.col);
              });
}

/// Combines duplicate (row, col) entries with the semiring addition; input
/// need not be sorted. Output order is sorted by (row, col).
template <Semiring SR>
void combine_duplicates(std::vector<Triple<typename SR::value_type>>& triples) {
    using T = typename SR::value_type;
    comparison_sort_row_col(triples);
    std::size_t w = 0;
    for (std::size_t r = 0; r < triples.size(); ++r) {
        if (w > 0 && triples[w - 1].row == triples[r].row &&
            triples[w - 1].col == triples[r].col) {
            triples[w - 1].value = SR::add(triples[w - 1].value, triples[r].value);
        } else {
            triples[w++] = triples[r];
        }
    }
    triples.resize(w);
    (void)static_cast<T*>(nullptr);
}

/// A random bijection on [0, n) applied to row/column indices before
/// distribution; makes the 2D block distribution load-balanced on skewed
/// inputs [29]. Deterministic in `seed`.
class IndexPermutation {
public:
    IndexPermutation() = default;
    IndexPermutation(index_t n, std::uint64_t seed) : perm_(static_cast<std::size_t>(n)) {
        std::iota(perm_.begin(), perm_.end(), index_t{0});
        std::mt19937_64 rng(seed);
        std::shuffle(perm_.begin(), perm_.end(), rng);
    }

    [[nodiscard]] index_t operator()(index_t i) const {
        return perm_[static_cast<std::size_t>(i)];
    }
    [[nodiscard]] index_t size() const {
        return static_cast<index_t>(perm_.size());
    }

    /// Applies the permutation to both coordinates of every triple.
    template <typename T>
    void apply(std::vector<Triple<T>>& triples) const {
        for (auto& t : triples) {
            t.row = (*this)(t.row);
            t.col = (*this)(t.col);
        }
    }

private:
    std::vector<index_t> perm_;
};

}  // namespace dsg::sparse
