// Compressed sparse row storage for static matrices (Section IV).
//
// Column indices within a row are *not* sorted and no per-row search
// structure exists: the paper's algorithms never index into a static layout
// (they only stream over it), so sorting would be wasted work.
#pragma once

#include <cassert>
#include <numeric>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace dsg::sparse {

template <typename T>
class Csr {
public:
    Csr() = default;
    Csr(index_t nrows, index_t ncols)
        : nrows_(nrows), ncols_(ncols),
          rowptr_(static_cast<std::size_t>(nrows) + 1, 0) {}

    /// Builds from triples via counting sort by row: O(nnz + nrows).
    /// Duplicate coordinates are kept as-is (callers combine beforehand if
    /// they need canonical form).
    static Csr from_triples(index_t nrows, index_t ncols,
                            std::span<const Triple<T>> triples) {
        Csr m(nrows, ncols);
        for (const auto& t : triples) {
            assert(t.row >= 0 && t.row < nrows && t.col >= 0 && t.col < ncols);
            ++m.rowptr_[static_cast<std::size_t>(t.row) + 1];
        }
        std::partial_sum(m.rowptr_.begin(), m.rowptr_.end(), m.rowptr_.begin());
        m.colidx_.resize(triples.size());
        m.values_.resize(triples.size());
        std::vector<index_t> cursor(m.rowptr_.begin(), m.rowptr_.end() - 1);
        for (const auto& t : triples) {
            auto& c = cursor[static_cast<std::size_t>(t.row)];
            m.colidx_[static_cast<std::size_t>(c)] = t.col;
            m.values_[static_cast<std::size_t>(c)] = t.value;
            ++c;
        }
        return m;
    }

    [[nodiscard]] index_t nrows() const { return nrows_; }
    [[nodiscard]] index_t ncols() const { return ncols_; }
    [[nodiscard]] std::size_t nnz() const { return colidx_.size(); }

    [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
        const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
        const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
        return {colidx_.data() + b, e - b};
    }
    [[nodiscard]] std::span<const T> row_values(index_t i) const {
        const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
        const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
        return {values_.data() + b, e - b};
    }

    /// Streams fn(row, col, value) over every non-zero in row-major order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (index_t i = 0; i < nrows_; ++i) {
            auto cols = row_cols(i);
            auto vals = row_values(i);
            for (std::size_t k = 0; k < cols.size(); ++k) fn(i, cols[k], vals[k]);
        }
    }

    [[nodiscard]] std::vector<Triple<T>> to_triples() const {
        std::vector<Triple<T>> out;
        out.reserve(nnz());
        for_each([&](index_t i, index_t j, const T& v) {
            out.push_back({i, j, v});
        });
        return out;
    }

    /// Column-major transpose: counting sort by column, O(nnz + ncols).
    [[nodiscard]] Csr transpose() const {
        std::vector<Triple<T>> flipped;
        flipped.reserve(nnz());
        for_each([&](index_t i, index_t j, const T& v) {
            flipped.push_back({j, i, v});
        });
        return from_triples(ncols_, nrows_, flipped);
    }

    [[nodiscard]] std::span<const index_t> rowptr() const { return rowptr_; }

private:
    index_t nrows_ = 0;
    index_t ncols_ = 0;
    std::vector<index_t> rowptr_;
    std::vector<index_t> colidx_;
    std::vector<T> values_;
};

}  // namespace dsg::sparse
