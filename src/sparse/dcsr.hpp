// Doubly-compressed sparse row storage for hypersparse matrices
// (Buluc & Gilbert [28]; Section IV of the paper).
//
// Only non-empty rows store a row pointer, so memory and — crucially —
// communication volume scale with nnz rather than with the dimension. All
// update matrices (A*, B*) and all blocks that cross rank boundaries travel
// in this layout. Like Csr, columns within a row are unsorted and the layout
// is stream-only; the transient RowLookup below provides O(1) row access for
// the one kernel that needs it (the right-hand side of A·B*, Section V-A).
// docs/ARCHITECTURE.md covers the stored-vs-travelling storage split.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "par/buffer.hpp"
#include "sparse/flat_map.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

template <typename T>
class Dcsr {
public:
    Dcsr() = default;
    Dcsr(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
        rowptr_.push_back(0);
    }

    /// Builds from triples grouped by row (all entries of a row contiguous,
    /// rows in ascending order) — the natural output order of counting sort.
    static Dcsr from_row_grouped(index_t nrows, index_t ncols,
                                 std::span<const Triple<T>> triples) {
        Dcsr m(nrows, ncols);
        m.colidx_.reserve(triples.size());
        m.values_.reserve(triples.size());
        for (const auto& t : triples) {
            assert(t.row >= 0 && t.row < nrows && t.col >= 0 && t.col < ncols);
            if (m.rows_.empty() || m.rows_.back() != t.row) {
                assert(m.rows_.empty() || m.rows_.back() < t.row);
                m.rows_.push_back(t.row);
                m.rowptr_.push_back(m.rowptr_.back());
            }
            m.colidx_.push_back(t.col);
            m.values_.push_back(t.value);
            ++m.rowptr_.back();
        }
        return m;
    }

    /// Starts a new row (id must exceed all existing row ids). Entries are
    /// then appended with push_entry. Used by kernels that emit rows in order.
    void begin_row(index_t row) {
        assert(rows_.empty() || rows_.back() < row);
        assert(row >= 0 && row < nrows_);
        rows_.push_back(row);
        rowptr_.push_back(rowptr_.back());
    }
    void push_entry(index_t col, const T& value) {
        assert(!rows_.empty());
        assert(col >= 0 && col < ncols_);
        colidx_.push_back(col);
        values_.push_back(value);
        ++rowptr_.back();
    }
    /// Drops the current row again if nothing was appended to it.
    void end_row() {
        if (rowptr_.back() == rowptr_[rowptr_.size() - 2]) {
            rows_.pop_back();
            rowptr_.pop_back();
        }
    }

    [[nodiscard]] index_t nrows() const { return nrows_; }
    [[nodiscard]] index_t ncols() const { return ncols_; }
    [[nodiscard]] std::size_t nnz() const { return colidx_.size(); }
    [[nodiscard]] bool empty() const { return colidx_.empty(); }
    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    [[nodiscard]] index_t row_id(std::size_t r) const { return rows_[r]; }
    [[nodiscard]] std::span<const index_t> row_cols(std::size_t r) const {
        return {colidx_.data() + rowptr_[r], rowptr_[r + 1] - rowptr_[r]};
    }
    [[nodiscard]] std::span<const T> row_values(std::size_t r) const {
        return {values_.data() + rowptr_[r], rowptr_[r + 1] - rowptr_[r]};
    }

    /// Streams fn(row, col, value) over every non-zero.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            auto cols = row_cols(r);
            auto vals = row_values(r);
            for (std::size_t k = 0; k < cols.size(); ++k)
                fn(rows_[r], cols[k], vals[k]);
        }
    }

    [[nodiscard]] std::vector<Triple<T>> to_triples() const {
        std::vector<Triple<T>> out;
        out.reserve(nnz());
        for_each([&](index_t i, index_t j, const T& v) { out.push_back({i, j, v}); });
        return out;
    }

    /// Appends the rows of `other`, whose row ids must all exceed this
    /// matrix's last row id (chunked kernels concatenate in row order).
    void append_rows(const Dcsr& other) {
        if (other.rows_.empty()) return;
        assert(rows_.empty() || rows_.back() < other.rows_.front());
        const std::size_t base = colidx_.size();
        rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
        for (std::size_t r = 1; r < other.rowptr_.size(); ++r)
            rowptr_.push_back(other.rowptr_[r] + base);
        colidx_.insert(colidx_.end(), other.colidx_.begin(), other.colidx_.end());
        values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    }

    // -- wire format -----------------------------------------------------------

    /// Serializes into buf (for broadcast / reduction); requires POD T.
    void serialize(par::Buffer& buf) const
        requires std::is_trivially_copyable_v<T>
    {
        par::BufferWriter w(buf);
        w.write(nrows_);
        w.write(ncols_);
        w.write_vector(rows_);
        w.write_vector(rowptr_);
        w.write_vector(colidx_);
        w.write_vector(values_);
    }
    [[nodiscard]] par::Buffer serialize() const
        requires std::is_trivially_copyable_v<T>
    {
        par::Buffer buf;
        buf.reserve(wire_size());
        serialize(buf);
        return buf;
    }
    static Dcsr deserialize(par::BufferReader& r)
        requires std::is_trivially_copyable_v<T>
    {
        Dcsr m;
        m.nrows_ = r.read<index_t>();
        m.ncols_ = r.read<index_t>();
        m.rows_ = r.read_vector<index_t>();
        m.rowptr_ = r.read_vector<std::size_t>();
        m.colidx_ = r.read_vector<index_t>();
        m.values_ = r.read_vector<T>();
        // Validate the structural invariants before anything indexes through
        // rowptr_: buffers from the wire come from a peer rank, but the same
        // frames also come back from disk (src/persist/), where corruption
        // is a matter of time, not trust.
        const auto fail = [](const char* what) {
            throw par::TruncatedBufferError(std::string("corrupt DCSR: ") +
                                            what);
        };
        if (m.nrows_ < 0 || m.ncols_ < 0) fail("negative dimension");
        if (m.colidx_.size() != m.values_.size())
            fail("colidx/values size mismatch");
        if (m.rowptr_.size() != m.rows_.size() + 1) {
            // A default-constructed (never begun) matrix serializes with an
            // empty rows_ and rowptr_ == {0}; anything else must pair up.
            if (!(m.rows_.empty() && m.rowptr_.empty() && m.colidx_.empty()))
                fail("rowptr/rows size mismatch");
        }
        if (!m.rowptr_.empty()) {
            if (m.rowptr_.front() != 0) fail("rowptr does not start at 0");
            for (std::size_t k = 1; k < m.rowptr_.size(); ++k)
                if (m.rowptr_[k] < m.rowptr_[k - 1]) fail("rowptr not monotone");
            if (m.rowptr_.back() != m.colidx_.size())
                fail("rowptr/colidx size mismatch");
        }
        for (std::size_t k = 0; k < m.rows_.size(); ++k) {
            if (m.rows_[k] < 0 || m.rows_[k] >= m.nrows_)
                fail("row id out of range");
            if (k > 0 && m.rows_[k] <= m.rows_[k - 1])
                fail("row ids not ascending");
        }
        for (const index_t c : m.colidx_)
            if (c < 0 || c >= m.ncols_) fail("column id out of range");
        return m;
    }
    static Dcsr deserialize(const par::Buffer& buf)
        requires std::is_trivially_copyable_v<T>
    {
        par::BufferReader r(buf);
        return deserialize(r);
    }

    /// Bytes this matrix occupies on the wire. For hypersparse matrices this
    /// is O(nnz) — the whole point of double compression (vs O(nrows) for a
    /// CSR rowptr), measured by bench_ablation_dcsr.
    [[nodiscard]] std::size_t wire_size() const {
        return 2 * sizeof(index_t) + 4 * sizeof(std::uint64_t) +
               rows_.size() * sizeof(index_t) +
               rowptr_.size() * sizeof(std::size_t) +
               colidx_.size() * sizeof(index_t) + values_.size() * sizeof(T);
    }

private:
    index_t nrows_ = 0;
    index_t ncols_ = 0;
    std::vector<index_t> rows_;       // ids of non-empty rows, ascending
    std::vector<std::size_t> rowptr_; // size rows_.size() + 1
    std::vector<index_t> colidx_;
    std::vector<T> values_;
};

/// Transient hash index row-id -> compressed row position, giving a Dcsr O(1)
/// expected row access. Build cost O(row_count); used only where the paper's
/// algorithm multiplies with a hypersparse *right* operand (A·B*).
template <typename T>
class DcsrRowLookup {
public:
    explicit DcsrRowLookup(const Dcsr<T>& m) : m_(&m), index_(m.row_count()) {
        for (std::size_t r = 0; r < m.row_count(); ++r)
            index_.get_or_insert(m.row_id(r), r);
    }

    /// Compressed position of row id, or npos when the row is empty.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    [[nodiscard]] std::size_t position(index_t row) const {
        const auto* p = index_.find(row);
        return p ? *p : npos;
    }
    [[nodiscard]] const Dcsr<T>& matrix() const { return *m_; }

private:
    const Dcsr<T>* m_;
    FlatMap<std::size_t> index_;
};

}  // namespace dsg::sparse
