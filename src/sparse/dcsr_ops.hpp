// Element-wise and structural operations on DCSR matrices: the merge step of
// the sparse tree reduction (Section VI-A), transposition (Section V-C), the
// row/column block slices that feed the rectangular-grid SUMMA and slab
// exchanges, and the value/bits splitting helpers of the Bloom machinery.
#pragma once

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "sparse/dcsr.hpp"
#include "sparse/flat_map.hpp"
#include "sparse/local_spgemm.hpp"
#include "sparse/spa.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

/// C = A (+) B element-wise with add(old, new); structural union. Both inputs
/// and the output are DCSR with ascending rows (columns unsorted). This is
/// the combine function of the binomial-tree sparse reduction.
template <typename V, typename AddOp>
Dcsr<V> dcsr_add(const Dcsr<V>& a, const Dcsr<V>& b, AddOp&& add) {
    Dcsr<V> out(a.nrows(), a.ncols());
    SparseAccumulator<V> acc;
    std::size_t ra = 0;
    std::size_t rb = 0;
    auto emit_plain = [&](const Dcsr<V>& m, std::size_t r) {
        out.begin_row(m.row_id(r));
        auto cols = m.row_cols(r);
        auto vals = m.row_values(r);
        for (std::size_t x = 0; x < cols.size(); ++x)
            out.push_entry(cols[x], vals[x]);
    };
    while (ra < a.row_count() || rb < b.row_count()) {
        if (rb == b.row_count() ||
            (ra < a.row_count() && a.row_id(ra) < b.row_id(rb))) {
            emit_plain(a, ra++);
        } else if (ra == a.row_count() || b.row_id(rb) < a.row_id(ra)) {
            emit_plain(b, rb++);
        } else {
            // Shared row: combine through an accumulator.
            auto push = [&](const Dcsr<V>& m, std::size_t r) {
                auto cols = m.row_cols(r);
                auto vals = m.row_values(r);
                for (std::size_t x = 0; x < cols.size(); ++x)
                    acc.add(cols[x], vals[x], add);
            };
            push(a, ra);
            push(b, rb);
            out.begin_row(a.row_id(ra));
            auto cols = acc.cols();
            auto vals = acc.values();
            for (std::size_t x = 0; x < cols.size(); ++x)
                out.push_entry(cols[x], vals[x]);
            acc.reset();
            ++ra;
            ++rb;
        }
    }
    return out;
}

/// Transpose via counting sort by column; O(nnz + ncols). Used to
/// pre-transpose hypersparse blocks when SpGEMM operands are transposed
/// (Section V-C).
template <typename V>
Dcsr<V> dcsr_transpose(const Dcsr<V>& m) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(m.ncols()) + 1, 0);
    m.for_each([&](index_t, index_t j, const V&) {
        ++counts[static_cast<std::size_t>(j) + 1];
    });
    for (std::size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
    std::vector<Triple<V>> flipped(m.nnz());
    m.for_each([&](index_t i, index_t j, const V& v) {
        flipped[counts[static_cast<std::size_t>(j)]++] = {j, i, v};
    });
    return Dcsr<V>::from_row_grouped(m.ncols(), m.nrows(), flipped);
}

/// The rows of m with ids in [lo, hi), reindexed to start at zero; the
/// result has dimensions (hi - lo, m.ncols()).
template <typename V>
Dcsr<V> dcsr_row_block(const Dcsr<V>& m, index_t lo, index_t hi) {
    Dcsr<V> out(hi - lo, m.ncols());
    for (std::size_t r = 0; r < m.row_count(); ++r) {
        const index_t row = m.row_id(r);
        if (row < lo) continue;
        if (row >= hi) break;
        out.begin_row(row - lo);
        auto cols = m.row_cols(r);
        auto vals = m.row_values(r);
        for (std::size_t x = 0; x < cols.size(); ++x)
            out.push_entry(cols[x], vals[x]);
    }
    return out;
}

/// The columns of m with ids in [lo, hi), reindexed to start at zero; rows
/// emptied by the slice are dropped (double compression preserved). The
/// result has dimensions (m.nrows(), hi - lo).
template <typename V>
Dcsr<V> dcsr_col_block(const Dcsr<V>& m, index_t lo, index_t hi) {
    Dcsr<V> out(m.nrows(), hi - lo);
    for (std::size_t r = 0; r < m.row_count(); ++r) {
        out.begin_row(m.row_id(r));
        auto cols = m.row_cols(r);
        auto vals = m.row_values(r);
        for (std::size_t x = 0; x < cols.size(); ++x)
            if (cols[x] >= lo && cols[x] < hi)
                out.push_entry(cols[x] - lo, vals[x]);
        out.end_row();
    }
    return out;
}

/// Assembles triples with pairwise-distinct coordinates — e.g. blocks whose
/// row or column ranges are disjoint — into a DCSR. Sorts by (row, col);
/// O(nnz log nnz).
template <typename V>
Dcsr<V> dcsr_from_unique_triples(index_t nrows, index_t ncols,
                                 std::vector<Triple<V>> triples) {
    std::sort(triples.begin(), triples.end(), [](const auto& a, const auto& b) {
        return std::tie(a.row, a.col) < std::tie(b.row, b.col);
    });
    return Dcsr<V>::from_row_grouped(nrows, ncols, triples);
}

/// Splits a ValueBits matrix into its value part and its Bloom-bits part
/// (same sparsity structure).
template <typename T>
std::pair<Dcsr<T>, Dcsr<std::uint64_t>> split_value_bits(
    const Dcsr<ValueBits<T>>& m) {
    Dcsr<T> values(m.nrows(), m.ncols());
    Dcsr<std::uint64_t> bits(m.nrows(), m.ncols());
    for (std::size_t r = 0; r < m.row_count(); ++r) {
        values.begin_row(m.row_id(r));
        bits.begin_row(m.row_id(r));
        auto cols = m.row_cols(r);
        auto vals = m.row_values(r);
        for (std::size_t x = 0; x < cols.size(); ++x) {
            values.push_entry(cols[x], vals[x].value);
            bits.push_entry(cols[x], vals[x].bits);
        }
    }
    return {std::move(values), std::move(bits)};
}

/// The set of coordinates of a DCSR, as a PairSet keyed within the block.
template <typename V>
PairSet dcsr_pattern(const Dcsr<V>& m) {
    PairSet set(m.ncols(), m.nnz());
    m.for_each([&](index_t i, index_t j, const V&) { set.insert(i, j); });
    return set;
}

}  // namespace dsg::sparse
