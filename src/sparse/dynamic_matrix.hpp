// DHB-style dynamic sparse matrix (Section IV; van der Grinten et al. [27]).
//
// Per-row adjacency arrays hold the non-zeros; rows beyond a small threshold
// additionally carry an open-addressing hash index mapping column -> slot, so
// point queries and updates run in O(1) expected time regardless of degree.
// Short rows skip the index entirely (a linear scan of <= 8 entries is faster
// and far smaller — the bulk of rows in power-law graphs stay in this mode).
//
// Deletion swaps the victim with the row's last entry, so adjacency arrays
// stay dense. Entry order within a row is therefore unspecified, which is
// fine: no algorithm in this library relies on column order (a deliberate
// library-wide invariant; see docs/ARCHITECTURE.md).
#pragma once

#include <atomic>
#include <cassert>
#include <span>
#include <vector>

#include "sparse/dcsr.hpp"
#include "sparse/flat_map.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

/// Copyable size counter with relaxed atomic increments. The parallel update
/// paths (core::update_ops) bucket rows across threads so all per-row state
/// is thread-disjoint — but the matrix-wide nnz counter is shared, and plain
/// increments would race. Only the final sum matters, and the thread pool's
/// join provides the happens-before for readers, so relaxed ordering is
/// exactly enough.
class RelaxedCounter {
public:
    RelaxedCounter(std::size_t v = 0) : v_(v) {}
    RelaxedCounter(const RelaxedCounter& other) : v_(other.get()) {}
    RelaxedCounter& operator=(const RelaxedCounter& other) {
        v_.store(other.get(), std::memory_order_relaxed);
        return *this;
    }
    RelaxedCounter& operator=(std::size_t v) {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }
    RelaxedCounter& operator++() {
        v_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    RelaxedCounter& operator--() {
        v_.fetch_sub(1, std::memory_order_relaxed);
        return *this;
    }
    [[nodiscard]] std::size_t get() const {
        return v_.load(std::memory_order_relaxed);
    }
    operator std::size_t() const { return get(); }

private:
    std::atomic<std::size_t> v_;
};

template <typename T>
class DynamicMatrix {
public:
    struct Entry {
        index_t col;
        T value;
    };

    /// Rows at most this long are searched linearly and carry no hash index.
    static constexpr std::size_t kIndexThreshold = 8;

    DynamicMatrix() = default;
    DynamicMatrix(index_t nrows, index_t ncols)
        : nrows_(nrows), ncols_(ncols),
          rows_(static_cast<std::size_t>(nrows)) {}

    [[nodiscard]] index_t nrows() const { return nrows_; }
    [[nodiscard]] index_t ncols() const { return ncols_; }
    [[nodiscard]] std::size_t nnz() const { return nnz_; }

    /// Pointer to the stored value at (i, j), or nullptr if structurally zero.
    [[nodiscard]] T* find(index_t i, index_t j) {
        auto& row = rows_[static_cast<std::size_t>(i)];
        const std::size_t pos = locate(row, j);
        return pos == npos ? nullptr : &row.entries[pos].value;
    }
    [[nodiscard]] const T* find(index_t i, index_t j) const {
        return const_cast<DynamicMatrix*>(this)->find(i, j);
    }
    [[nodiscard]] bool contains(index_t i, index_t j) const {
        return find(i, j) != nullptr;
    }

    /// Inserts or overwrites (i, j); returns true if the entry is new.
    bool insert_or_assign(index_t i, index_t j, const T& value) {
        return upsert(i, j, value,
                      [&](T& existing) { existing = value; });
    }

    /// Inserts (i, j) or combines with the existing value via add(old, new) —
    /// the semiring-addition update path of Section IV-A.
    template <typename AddFn>
    bool insert_or_add(index_t i, index_t j, const T& value, AddFn&& add) {
        return upsert(i, j, value, [&](T& existing) {
            existing = add(existing, value);
        });
    }

    /// Removes (i, j); returns whether it existed. O(1) expected.
    bool erase(index_t i, index_t j) {
        assert(i >= 0 && i < nrows_ && j >= 0 && j < ncols_);
        auto& row = rows_[static_cast<std::size_t>(i)];
        const std::size_t pos = locate(row, j);
        if (pos == npos) return false;
        const std::size_t last = row.entries.size() - 1;
        if (pos != last) {
            row.entries[pos] = row.entries[last];
            if (auto* p = row.index.find(row.entries[pos].col))
                *p = static_cast<std::uint32_t>(pos);
        }
        row.entries.pop_back();
        row.index.erase(j);
        --nnz_;
        return true;
    }

    /// The entries of row i (unspecified order).
    [[nodiscard]] std::span<const Entry> row(index_t i) const {
        return rows_[static_cast<std::size_t>(i)].entries;
    }
    [[nodiscard]] std::size_t row_size(index_t i) const {
        return rows_[static_cast<std::size_t>(i)].entries.size();
    }

    /// Invokes fn(i, j, value) over all non-zeros, rows ascending.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (index_t i = 0; i < nrows_; ++i)
            for (const auto& e : row(i)) fn(i, e.col, e.value);
    }

    [[nodiscard]] std::vector<Triple<T>> to_triples() const {
        std::vector<Triple<T>> out;
        out.reserve(nnz_);
        for_each([&](index_t i, index_t j, const T& v) { out.push_back({i, j, v}); });
        return out;
    }

    /// Snapshot in DCSR layout (rows ascending); O(nnz).
    [[nodiscard]] Dcsr<T> to_dcsr() const {
        Dcsr<T> out(nrows_, ncols_);
        for (index_t i = 0; i < nrows_; ++i) {
            const auto r = row(i);
            if (r.empty()) continue;
            out.begin_row(i);
            for (const auto& e : r) out.push_entry(e.col, e.value);
        }
        return out;
    }

    void clear() {
        for (auto& row : rows_) {
            row.entries.clear();
            row.index.clear();
        }
        nnz_ = 0;
    }

    // -- wire format (checkpoint tiles; src/persist/) ------------------------

    /// Serializes this block as a DCSR tile (the library's one wire layout);
    /// round trips through deserialize() bit-identically: rows ascending and
    /// the within-row entry order both survive, so a restored matrix is
    /// indistinguishable from the original, including iteration order.
    void serialize(par::Buffer& buf) const
        requires std::is_trivially_copyable_v<T>
    {
        to_dcsr().serialize(buf);
    }

    static DynamicMatrix deserialize(par::BufferReader& r)
        requires std::is_trivially_copyable_v<T>
    {
        const auto tile = Dcsr<T>::deserialize(r);
        DynamicMatrix m(tile.nrows(), tile.ncols());
        tile.for_each([&](index_t i, index_t j, const T& v) {
            if (i < 0 || i >= m.nrows_ || j < 0 || j >= m.ncols_)
                throw par::TruncatedBufferError(
                    "dynamic-matrix tile entry out of bounds");
            m.append_entry(i, j, v);
        });
        return m;
    }

    /// Heap bytes held by adjacency arrays and hash indices.
    [[nodiscard]] std::size_t memory_bytes() const {
        std::size_t bytes = rows_.capacity() * sizeof(Row);
        for (const auto& row : rows_)
            bytes += row.entries.capacity() * sizeof(Entry) +
                     row.index.memory_bytes();
        return bytes;
    }

private:
    struct Row {
        std::vector<Entry> entries;
        FlatMap<std::uint32_t> index;  // col -> slot; live iff entries > threshold
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t locate(const Row& row, index_t j) const {
        if (!row.index.empty()) {
            const auto* p = row.index.find(j);
            return p ? *p : npos;
        }
        for (std::size_t k = 0; k < row.entries.size(); ++k)
            if (row.entries[k].col == j) return k;
        return npos;
    }

    /// Appends (i, j) to its row WITHOUT checking for a duplicate — only for
    /// entry streams already known duplicate-free (deserialize).
    void append_entry(index_t i, index_t j, const T& value) {
        auto& row = rows_[static_cast<std::size_t>(i)];
        row.entries.push_back({j, value});
        ++nnz_;
        if (!row.index.empty()) {
            row.index.get_or_insert(
                j, static_cast<std::uint32_t>(row.entries.size() - 1));
        } else if (row.entries.size() > kIndexThreshold) {
            row.index.reserve(row.entries.size() * 2);
            for (std::size_t k = 0; k < row.entries.size(); ++k)
                row.index.get_or_insert(row.entries[k].col,
                                        static_cast<std::uint32_t>(k));
        }
    }

    template <typename Update>
    bool upsert(index_t i, index_t j, const T& value, Update&& update) {
        assert(i >= 0 && i < nrows_ && j >= 0 && j < ncols_);
        auto& row = rows_[static_cast<std::size_t>(i)];
        const std::size_t pos = locate(row, j);
        if (pos != npos) {
            update(row.entries[pos].value);
            return false;
        }
        append_entry(i, j, value);
        return true;
    }

    index_t nrows_ = 0;
    index_t ncols_ = 0;
    std::vector<Row> rows_;
    RelaxedCounter nnz_;
};

}  // namespace dsg::sparse
