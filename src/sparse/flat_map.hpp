// Open-addressing hash structures used across the library:
//  - FlatMap: index_t -> V; the per-row column index of DynamicMatrix (the
//    DHB design of Section IV), sparse-accumulator index, DCSR row lookup.
//  - PairSet: hash set over (row, col) pairs; the output mask of the masked
//    local multiplication in Algorithm 2 (Section VI-B).
//
// Linear probing with tombstones; capacity is a power of two and grows when
// (size + tombstones) exceeds 3/4 of capacity. Keys must be non-negative
// (index_t guarantees this by construction; see docs/ARCHITECTURE.md).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace dsg::sparse {

namespace detail {
/// splitmix64 finalizer; excellent avalanche for sequential keys.
inline std::uint64_t hash_u64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
}  // namespace detail

/// Hash map from non-negative index_t keys to V.
template <typename V>
class FlatMap {
    static constexpr index_t kEmpty = -1;
    static constexpr index_t kTombstone = -2;

public:
    FlatMap() = default;
    explicit FlatMap(std::size_t expected) { reserve(expected); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Removes all entries but keeps the allocated capacity (cheap reuse by
    /// the sparse accumulator).
    void clear() {
        std::fill(slots_.begin(), slots_.end(), Slot{});
        size_ = 0;
        tombstones_ = 0;
    }

    void reserve(std::size_t expected) {
        std::size_t cap = 16;
        while (cap * 3 < expected * 4 + 4) cap <<= 1;
        if (cap > slots_.size()) rehash(cap);
    }

    /// Returns the value slot for key, inserting default_value if absent.
    V& get_or_insert(index_t key, const V& default_value) {
        assert(key >= 0);
        maybe_grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t pos = detail::hash_u64(static_cast<std::uint64_t>(key)) & mask;
        std::size_t first_tomb = slots_.size();
        for (;;) {
            auto& s = slots_[pos];
            if (s.key == key) return s.value;
            if (s.key == kEmpty) {
                if (first_tomb != slots_.size()) {
                    auto& t = slots_[first_tomb];
                    t.key = key;
                    t.value = default_value;
                    --tombstones_;
                    ++size_;
                    return t.value;
                }
                s.key = key;
                s.value = default_value;
                ++size_;
                return s.value;
            }
            if (s.key == kTombstone && first_tomb == slots_.size())
                first_tomb = pos;
            pos = (pos + 1) & mask;
        }
    }

    /// Pointer to the value for key, or nullptr when absent.
    [[nodiscard]] V* find(index_t key) {
        if (slots_.empty()) return nullptr;
        const std::size_t mask = slots_.size() - 1;
        std::size_t pos = detail::hash_u64(static_cast<std::uint64_t>(key)) & mask;
        for (;;) {
            auto& s = slots_[pos];
            if (s.key == key) return &s.value;
            if (s.key == kEmpty) return nullptr;
            pos = (pos + 1) & mask;
        }
    }
    [[nodiscard]] const V* find(index_t key) const {
        return const_cast<FlatMap*>(this)->find(key);
    }
    [[nodiscard]] bool contains(index_t key) const {
        return find(key) != nullptr;
    }

    /// Removes key; returns whether it was present.
    bool erase(index_t key) {
        if (slots_.empty()) return false;
        const std::size_t mask = slots_.size() - 1;
        std::size_t pos = detail::hash_u64(static_cast<std::uint64_t>(key)) & mask;
        for (;;) {
            auto& s = slots_[pos];
            if (s.key == key) {
                s.key = kTombstone;
                --size_;
                ++tombstones_;
                return true;
            }
            if (s.key == kEmpty) return false;
            pos = (pos + 1) & mask;
        }
    }

    /// Invokes fn(key, value&) for every live entry (unspecified order).
    template <typename Fn>
    void for_each(Fn&& fn) {
        for (auto& s : slots_)
            if (s.key >= 0) fn(s.key, s.value);
    }
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const auto& s : slots_)
            if (s.key >= 0) fn(s.key, s.value);
    }

    /// Bytes of heap memory held (for the memory accounting in benchmarks).
    [[nodiscard]] std::size_t memory_bytes() const {
        return slots_.capacity() * sizeof(Slot);
    }

private:
    struct Slot {
        index_t key = kEmpty;
        V value{};
    };

    void maybe_grow() {
        if (slots_.empty()) {
            rehash(16);
        } else if ((size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
            rehash(size_ * 4 < slots_.size() * 2 ? slots_.size()
                                                 : slots_.size() * 2);
        }
    }

    void rehash(std::size_t new_cap) {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{});
        size_ = 0;
        tombstones_ = 0;
        const std::size_t mask = new_cap - 1;
        for (auto& s : old) {
            if (s.key < 0) continue;
            std::size_t pos =
                detail::hash_u64(static_cast<std::uint64_t>(s.key)) & mask;
            while (slots_[pos].key != kEmpty) pos = (pos + 1) & mask;
            slots_[pos] = s;
            ++size_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

/// Hash set of (row, col) index pairs within a local block.
class PairSet {
public:
    PairSet() = default;
    /// ncols must exceed every col inserted; keys are packed row*ncols+col.
    explicit PairSet(index_t ncols, std::size_t expected = 0)
        : ncols_(ncols), set_(expected) {}

    void insert(index_t row, index_t col) { set_.get_or_insert(key(row, col), 0); }
    [[nodiscard]] bool contains(index_t row, index_t col) const {
        return set_.contains(key(row, col));
    }
    [[nodiscard]] std::size_t size() const { return set_.size(); }
    [[nodiscard]] bool empty() const { return set_.empty(); }

private:
    [[nodiscard]] index_t key(index_t row, index_t col) const {
        assert(col < ncols_);
        return row * ncols_ + col;
    }

    index_t ncols_ = 1;
    FlatMap<std::uint8_t> set_;
};

}  // namespace dsg::sparse
