// Gustavson row-wise local SpGEMM (Section VI-A), generic over:
//  - the left operand layout (CSR, DCSR, DynamicMatrix) — streamed row-wise;
//  - the right operand layout — accessed by row id in O(1) expected time;
//  - the accumulation (semiring add) and the per-term value (semiring mul,
//    or the Bloom bit 1 << (k mod 64) for the pattern computation of
//    Algorithm 2, or both at once);
//  - an optional output mask (the C* mask of the general algorithm);
//  - intra-rank parallelism across left rows via a ThreadPool, each thread
//    owning a private sparse accumulator (Section VI-A).
//
// The output is a DCSR with rows in ascending order; columns within a row are
// unsorted (insertion order of the accumulator), consistent with the rest of
// the library.
#pragma once

#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/semiring.hpp"
#include "sparse/spa.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

// -- left-operand adapters (row streams) ---------------------------------------

template <typename T>
struct CsrLeft {
    const Csr<T>& m;
    [[nodiscard]] std::size_t stream_count() const {
        return static_cast<std::size_t>(m.nrows());
    }
    [[nodiscard]] index_t row_id(std::size_t slot) const {
        return static_cast<index_t>(slot);
    }
    template <typename G>
    void entries(std::size_t slot, G&& g) const {
        const auto i = static_cast<index_t>(slot);
        auto cols = m.row_cols(i);
        auto vals = m.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) g(cols[k], vals[k]);
    }
};

template <typename T>
struct DcsrLeft {
    const Dcsr<T>& m;
    [[nodiscard]] std::size_t stream_count() const { return m.row_count(); }
    [[nodiscard]] index_t row_id(std::size_t slot) const { return m.row_id(slot); }
    template <typename G>
    void entries(std::size_t slot, G&& g) const {
        auto cols = m.row_cols(slot);
        auto vals = m.row_values(slot);
        for (std::size_t k = 0; k < cols.size(); ++k) g(cols[k], vals[k]);
    }
};

template <typename T>
struct DynLeft {
    const DynamicMatrix<T>& m;
    [[nodiscard]] std::size_t stream_count() const {
        return static_cast<std::size_t>(m.nrows());
    }
    [[nodiscard]] index_t row_id(std::size_t slot) const {
        return static_cast<index_t>(slot);
    }
    template <typename G>
    void entries(std::size_t slot, G&& g) const {
        for (const auto& e : m.row(static_cast<index_t>(slot))) g(e.col, e.value);
    }
};

template <typename T>
CsrLeft<T> as_left(const Csr<T>& m) { return {m}; }
template <typename T>
DcsrLeft<T> as_left(const Dcsr<T>& m) { return {m}; }
template <typename T>
DynLeft<T> as_left(const DynamicMatrix<T>& m) { return {m}; }

// -- right-operand adapters (row lookup) ----------------------------------------

template <typename T>
struct CsrRight {
    const Csr<T>& m;
    template <typename G>
    void row(index_t k, G&& g) const {
        auto cols = m.row_cols(k);
        auto vals = m.row_values(k);
        for (std::size_t x = 0; x < cols.size(); ++x) g(cols[x], vals[x]);
    }
};

template <typename T>
struct DynRight {
    const DynamicMatrix<T>& m;
    template <typename G>
    void row(index_t k, G&& g) const {
        for (const auto& e : m.row(k)) g(e.col, e.value);
    }
};

/// Right access into a DCSR via a transient row-id hash (see dcsr.hpp).
template <typename T>
struct DcsrRight {
    DcsrRowLookup<T> lookup;
    explicit DcsrRight(const Dcsr<T>& m) : lookup(m) {}
    template <typename G>
    void row(index_t k, G&& g) const {
        const auto pos = lookup.position(k);
        if (pos == DcsrRowLookup<T>::npos) return;
        const auto& m = lookup.matrix();
        auto cols = m.row_cols(pos);
        auto vals = m.row_values(pos);
        for (std::size_t x = 0; x < cols.size(); ++x) g(cols[x], vals[x]);
    }
};

template <typename T>
CsrRight<T> as_right(const Csr<T>& m) { return {m}; }
template <typename T>
DynRight<T> as_right(const DynamicMatrix<T>& m) { return {m}; }
template <typename T>
DcsrRight<T> as_right(const Dcsr<T>& m) { return DcsrRight<T>(m); }

// -- kernel ----------------------------------------------------------------------

struct SpgemmOptions {
    /// Output mask: only (i, j) contained in the mask are produced
    /// (Algorithm 2's "masked at C*"). Keys are (output row, output col).
    const PairSet* mask = nullptr;
    /// Added to the left operand's (local) column index to obtain the global
    /// inner-dimension index k used for Bloom bits.
    index_t inner_offset = 0;
    /// Intra-rank worker pool; nullptr runs sequentially.
    par::ThreadPool* pool = nullptr;
};

/// Value + Bloom bitfield accumulated together (initial SpGEMM that also
/// builds the filter matrix F, Section V-B).
template <typename T>
struct ValueBits {
    T value;
    std::uint64_t bits;
};

namespace detail {

template <typename V, typename AddOp, typename TermFn, typename Left,
          typename Right>
void spgemm_chunk(const Left& A, const Right& B, AddOp& add, TermFn& term,
                  const SpgemmOptions& opts, SparseAccumulator<V>& acc,
                  std::size_t slot_begin, std::size_t slot_end, Dcsr<V>& out) {
    for (std::size_t s = slot_begin; s < slot_end; ++s) {
        const index_t i = A.row_id(s);
        A.entries(s, [&](index_t k, const auto& a) {
            B.row(k, [&](index_t j, const auto& b) {
                if (opts.mask != nullptr && !opts.mask->contains(i, j)) return;
                acc.add(j, term(a, b, k + opts.inner_offset), add);
            });
        });
        if (acc.empty()) continue;
        out.begin_row(i);
        auto cols = acc.cols();
        auto vals = acc.values();
        for (std::size_t x = 0; x < cols.size(); ++x)
            out.push_entry(cols[x], vals[x]);
        acc.reset();
    }
}

}  // namespace detail

/// Generic Gustavson SpGEMM: out(i, j) = add-reduction over k of
/// term(A(i, k), B(k, j), k + inner_offset).
template <typename V, typename AddOp, typename TermFn, typename Left,
          typename Right>
Dcsr<V> spgemm_generic(index_t out_nrows, index_t out_ncols, const Left& A,
                       const Right& B, AddOp add, TermFn term,
                       const SpgemmOptions& opts = {}) {
    const std::size_t n = A.stream_count();
    if (opts.pool == nullptr || opts.pool->thread_count() == 1 || n < 2) {
        Dcsr<V> out(out_nrows, out_ncols);
        SparseAccumulator<V> acc;
        detail::spgemm_chunk(A, B, add, term, opts, acc, 0, n, out);
        return out;
    }
    // Fixed contiguous chunks so per-chunk outputs concatenate in row order.
    const int threads = opts.pool->thread_count();
    const std::size_t nchunks =
        std::min<std::size_t>(n, static_cast<std::size_t>(threads) * 4);
    const std::size_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<Dcsr<V>> parts(nchunks);
    std::vector<SparseAccumulator<V>> accs(static_cast<std::size_t>(threads));
    opts.pool->parallel_for(nchunks, [&](int t, std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
            const std::size_t b = c * chunk;
            const std::size_t e = std::min(b + chunk, n);
            Dcsr<V> part(out_nrows, out_ncols);
            detail::spgemm_chunk(A, B, add, term, opts,
                                 accs[static_cast<std::size_t>(t)], b, e, part);
            parts[c] = std::move(part);
        }
    });
    Dcsr<V> out = std::move(parts[0]);
    for (std::size_t c = 1; c < nchunks; ++c) out.append_rows(parts[c]);
    return out;
}

/// Plain semiring SpGEMM: C = A · B over SR.
template <Semiring SR, typename Left, typename Right>
Dcsr<typename SR::value_type> spgemm(index_t out_nrows, index_t out_ncols,
                                     const Left& A, const Right& B,
                                     const SpgemmOptions& opts = {}) {
    using T = typename SR::value_type;
    return spgemm_generic<T>(
        out_nrows, out_ncols, A, B,
        [](const T& a, const T& b) { return SR::add(a, b); },
        [](const T& a, const T& b, index_t) { return SR::mul(a, b); }, opts);
}

/// Pattern-only SpGEMM: values are the Bloom bitfields of the contributing
/// inner indices (COMPUTEPATTERN of Algorithm 2). Input values are ignored.
template <typename Left, typename Right>
Dcsr<std::uint64_t> spgemm_pattern(index_t out_nrows, index_t out_ncols,
                                   const Left& A, const Right& B,
                                   const SpgemmOptions& opts = {}) {
    return spgemm_generic<std::uint64_t>(
        out_nrows, out_ncols, A, B,
        [](std::uint64_t a, std::uint64_t b) { return a | b; },
        [](const auto&, const auto&, index_t k) { return bloom_bit(k); }, opts);
}

/// SpGEMM producing both semiring values and Bloom bitfields in one pass
/// (used when the initial C = AB must also build the filter F).
template <Semiring SR, typename Left, typename Right>
Dcsr<ValueBits<typename SR::value_type>> spgemm_with_bloom(
    index_t out_nrows, index_t out_ncols, const Left& A, const Right& B,
    const SpgemmOptions& opts = {}) {
    using T = typename SR::value_type;
    using VB = ValueBits<T>;
    return spgemm_generic<VB>(
        out_nrows, out_ncols, A, B,
        [](const VB& a, const VB& b) {
            return VB{SR::add(a.value, b.value), a.bits | b.bits};
        },
        [](const T& a, const T& b, index_t k) {
            return VB{SR::mul(a, b), bloom_bit(k)};
        },
        opts);
}

}  // namespace dsg::sparse
