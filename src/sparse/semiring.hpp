// Semirings for generalized sparse matrix algebra (Section III).
//
// A semiring supplies the additive monoid (add, zero) and the multiplicative
// operation (mul) used by every SpGEMM kernel in this library. Structural
// zeros (entries absent from the data structures) are implicitly the additive
// neutral element zero().
//
// PlusTimes is a ring: updates can always be expressed as matrix addition, so
// the algebraic dynamic SpGEMM (Algorithm 1) covers all updates. MinPlus and
// BoolOrAnd are not rings; updates that increase values / clear bits require
// the general algorithm (Algorithm 2).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

namespace dsg::sparse {

/// Requirements every semiring type must satisfy.
template <typename S>
concept Semiring = requires(typename S::value_type a, typename S::value_type b) {
    typename S::value_type;
    { S::zero() } -> std::convertible_to<typename S::value_type>;
    { S::add(a, b) } -> std::convertible_to<typename S::value_type>;
    { S::mul(a, b) } -> std::convertible_to<typename S::value_type>;
};

/// The ordinary (+, *) ring over T.
template <typename T>
struct PlusTimes {
    using value_type = T;
    static constexpr bool is_ring = true;
    static constexpr T zero() { return T{0}; }
    static constexpr T one() { return T{1}; }
    static constexpr T add(T a, T b) { return a + b; }
    static constexpr T mul(T a, T b) { return a * b; }
    /// Additive inverse; only rings provide this (used to express deletions
    /// and value changes as algebraic updates, Section V).
    static constexpr T neg(T a) { return -a; }
};

/// The tropical (min, +) semiring, the workhorse of algebraic shortest paths.
/// zero() is +infinity; min can only decrease values, so increases and
/// deletions are general updates.
template <typename T>
struct MinPlus {
    using value_type = T;
    static constexpr bool is_ring = false;
    static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
    static constexpr T one() { return T{0}; }
    static constexpr T add(T a, T b) { return std::min(a, b); }
    static constexpr T mul(T a, T b) { return a + b; }
};

/// The (max, +) semiring (longest paths / critical paths).
template <typename T>
struct MaxPlus {
    using value_type = T;
    static constexpr bool is_ring = false;
    static constexpr T zero() { return -std::numeric_limits<T>::infinity(); }
    static constexpr T one() { return T{0}; }
    static constexpr T add(T a, T b) { return std::max(a, b); }
    static constexpr T mul(T a, T b) { return a + b; }
};

/// The Boolean (or, and) semiring over {0, 1} (reachability).
struct BoolOrAnd {
    using value_type = std::uint8_t;
    static constexpr bool is_ring = false;
    static constexpr value_type zero() { return 0; }
    static constexpr value_type one() { return 1; }
    static constexpr value_type add(value_type a, value_type b) {
        return a | b;
    }
    static constexpr value_type mul(value_type a, value_type b) {
        return a & b;
    }
};

/// (|, |) over 64-bit words: the "semiring" that the pattern/Bloom
/// computation of Algorithm 2 runs in. Values are bitfields; the term functor
/// supplies the actual bloom_bit(k) per contribution (see local_spgemm.hpp).
struct BitsOr {
    using value_type = std::uint64_t;
    static constexpr bool is_ring = false;
    static constexpr value_type zero() { return 0; }
    static constexpr value_type add(value_type a, value_type b) {
        return a | b;
    }
    static constexpr value_type mul(value_type a, value_type b) {
        return a | b;
    }
};

static_assert(Semiring<PlusTimes<double>>);
static_assert(Semiring<MinPlus<double>>);
static_assert(Semiring<MaxPlus<float>>);
static_assert(Semiring<BoolOrAnd>);
static_assert(Semiring<BitsOr>);

}  // namespace dsg::sparse
