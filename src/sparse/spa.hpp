// Hash-based sparse accumulator for Gustavson's row-wise SpGEMM
// (Section VI-A: "a sparse accumulator based on a dynamic array combined
// with a hash table"). One instance per shared-memory thread.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/flat_map.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

template <typename V>
class SparseAccumulator {
public:
    /// Accumulates value into column j with add(old, new).
    template <typename AddOp>
    void add(index_t j, const V& value, AddOp&& add) {
        auto& pos = pos_.get_or_insert(j, kUnset);
        if (pos == kUnset) {
            pos = static_cast<std::uint32_t>(cols_.size());
            cols_.push_back(j);
            vals_.push_back(value);
        } else {
            vals_[pos] = add(vals_[pos], value);
        }
    }

    [[nodiscard]] std::size_t size() const { return cols_.size(); }
    [[nodiscard]] bool empty() const { return cols_.empty(); }
    [[nodiscard]] std::span<const index_t> cols() const { return cols_; }
    [[nodiscard]] std::span<const V> values() const { return vals_; }

    /// Clears for the next row; hash capacity is retained across rows.
    void reset() {
        for (index_t j : cols_) pos_.erase(j);
        cols_.clear();
        vals_.clear();
    }

private:
    static constexpr std::uint32_t kUnset = 0xffffffffu;
    FlatMap<std::uint32_t> pos_;
    std::vector<index_t> cols_;
    std::vector<V> vals_;
};

}  // namespace dsg::sparse
