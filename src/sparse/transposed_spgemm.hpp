// Local SpGEMM with a transposed left operand: out = L^T * R, where L is a
// row-accessible matrix and R is hypersparse (DCSR).
//
// Needed by the transposed variants of the dynamic SpGEMM (Section V-C):
// there the Y-term multiplies the *stored* block of A (row-major, not
// transposable for free) against a hypersparse update block. Instead of
// materializing L^T, we iterate the few non-empty rows t of R and pair them
// with row t of L:   out(u, v) = add-reduce over t of term(L(t,u), R(t,v), t).
// The accumulation is pair-keyed (outer-product order), then grouped by
// output row with a counting sort — total cost O(partials + out_rows).
#pragma once

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dynamic_matrix.hpp"
#include "sparse/flat_map.hpp"
#include "sparse/semiring.hpp"
#include "sparse/types.hpp"

namespace dsg::sparse {

/// out = L^T * R with out(u, v) = add-reduction over t of
/// term(L(t, u), R(t, v), t + inner_offset). L: (inner x out_rows) row-major;
/// R: (inner x out_cols) hypersparse.
template <typename V, typename AddOp, typename TermFn, typename T>
Dcsr<V> spgemm_transposed_left(index_t out_rows, index_t out_cols,
                               const DynamicMatrix<T>& L, const Dcsr<T>& R,
                               AddOp add, TermFn term,
                               index_t inner_offset = 0) {
    FlatMap<std::uint32_t> pos;
    std::vector<Triple<V>> partials;
    for (std::size_t r = 0; r < R.row_count(); ++r) {
        const index_t t = R.row_id(r);
        const auto lrow = L.row(t);
        if (lrow.empty()) continue;
        auto rcols = R.row_cols(r);
        auto rvals = R.row_values(r);
        for (const auto& le : lrow) {
            const index_t u = le.col;  // output row
            for (std::size_t x = 0; x < rcols.size(); ++x) {
                const index_t v = rcols[x];  // output col
                const V value = term(le.value, rvals[x], t + inner_offset);
                auto& slot = pos.get_or_insert(u * out_cols + v, 0xffffffffu);
                if (slot == 0xffffffffu) {
                    slot = static_cast<std::uint32_t>(partials.size());
                    partials.push_back({u, v, value});
                } else {
                    partials[slot].value = add(partials[slot].value, value);
                }
            }
        }
    }
    if (out_rows > 0) {
        counting_sort(partials, static_cast<std::size_t>(out_rows),
                      [](const Triple<V>& p) {
                          return static_cast<std::size_t>(p.row);
                      });
    }
    return Dcsr<V>::from_row_grouped(out_rows, out_cols, partials);
}

/// Semiring convenience wrapper.
template <Semiring SR, typename T = typename SR::value_type>
Dcsr<T> spgemm_transposed_left(index_t out_rows, index_t out_cols,
                               const DynamicMatrix<T>& L, const Dcsr<T>& R) {
    return spgemm_transposed_left<T>(
        out_rows, out_cols, L, R,
        [](const T& a, const T& b) { return SR::add(a, b); },
        [](const T& a, const T& b, index_t) { return SR::mul(a, b); });
}

}  // namespace dsg::sparse
