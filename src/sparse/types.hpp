// Fundamental index/entry types shared by all sparse structures.
#pragma once

#include <cstdint>

namespace dsg::sparse {

/// Global and local matrix index type. 64-bit so that billion-scale graphs
/// (the paper's largest instance has 3.6B non-zeros) index safely.
using index_t = std::int64_t;

/// A matrix entry in coordinate form; the unit of redistribution (the paper's
/// update tuples (i, j, x), Section IV-B).
template <typename T>
struct Triple {
    index_t row;
    index_t col;
    T value;

    friend bool operator==(const Triple&, const Triple&) = default;
};

/// Bloom-filter bit for inner-dimension index k (Section V-B, l = 64).
inline constexpr std::uint64_t bloom_bit(index_t k) {
    return std::uint64_t{1} << (static_cast<std::uint64_t>(k) & 63u);
}

}  // namespace dsg::sparse
