#include "stream/epoch_engine.hpp"

#include <algorithm>
#include <cstdio>

namespace dsg::stream {

void StreamStats::record(const EpochStats& e) {
    ++epochs;
    if (e.global_ops > 0) ++applied_epochs;
    local_ops += e.drained;
    adds += e.adds;
    merges += e.merges;
    masks += e.masks;
    drain_ms += e.drain_ms;
    apply_ms += e.apply_ms;
    hook_ms += e.hook_ms;
    publish_ms += e.publish_ms;
    persist_ms += e.persist_ms;
    max_hook_ms = std::max(max_hook_ms, e.hook_ms);
    max_epoch_ms = std::max(max_epoch_ms, e.drain_ms + e.apply_ms + e.hook_ms +
                                              e.publish_ms + e.persist_ms);
    max_backlog = std::max(max_backlog, e.backlog_after);
}

double StreamStats::ops_per_second() const {
    if (run_seconds <= 0) return 0;
    return static_cast<double>(local_ops) / run_seconds;
}

std::string StreamStats::summary() const {
    char buf[320];
    int len = std::snprintf(buf, sizeof buf,
                            "%llu ops in %llu epochs (%llu applied): "
                            "%.0f ops/s, drain %.1f ms, apply %.1f ms, "
                            "worst epoch %.2f ms, worst backlog %zu",
                            static_cast<unsigned long long>(local_ops),
                            static_cast<unsigned long long>(epochs),
                            static_cast<unsigned long long>(applied_epochs),
                            ops_per_second(), drain_ms, apply_ms, max_epoch_ms,
                            max_backlog);
    if (hook_ms > 0 && len > 0 && static_cast<std::size_t>(len) < sizeof buf)
        len += std::snprintf(buf + len,
                             sizeof buf - static_cast<std::size_t>(len),
                             ", analytics %.1f ms", hook_ms);
    if (publish_ms > 0 && len > 0 && static_cast<std::size_t>(len) < sizeof buf)
        len += std::snprintf(buf + len,
                             sizeof buf - static_cast<std::size_t>(len),
                             ", publish %.1f ms", publish_ms);
    if (persist_ms > 0 && len > 0 && static_cast<std::size_t>(len) < sizeof buf)
        std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                      ", persist %.1f ms", persist_ms);
    return std::string(buf);
}

}  // namespace dsg::stream
