// Epoch-batched application of streamed updates (the streaming engine's
// consumer side; docs/ARCHITECTURE.md, "The streaming engine").
//
// Concurrent producers push StreamOps into the rank's UpdateQueue; the rank
// thread pumps epochs. An epoch triggers when the local queue buffers
// epoch_batch ops or epoch_deadline elapses, whichever comes first — bursty
// scenarios ride the deadline, sustained load rides the batch size. Each
// epoch then
//   1. drains the local queue (Phase::StreamDrain),
//   2. agrees collectively on the per-kind global op counts and whether
//      every rank's queue is exhausted (one allreduce),
//   3. partitions the drained ops into ADD / MERGE / MASK streams in queue
//      order and applies each globally non-empty stream through
//      core::build_update_matrix + add_update / merge_update / mask_delete
//      (Phase::StreamApply; globally empty streams skip their collective
//      round entirely).
// The apply order within an epoch is fixed (ADDs, then MERGEs, then MASKs);
// ops whose relative order must be preserved therefore belong in the same
// stream or in different epochs.
//
// Readers see a consistent snapshot between epochs: with_snapshot(fn) runs
// fn(core::SnapshotView) under a shared lock that epoch application
// excludes, so any number of reader threads may query concurrently with
// producers pushing — they only ever wait while an epoch is being applied.
//
// Epoch subscribers: set_epoch_hook(fn) registers a callback invoked at
// every *applied* epoch boundary — after the drained ops are applied to the
// matrix and before the reader lock is released — with an EpochDelta holding
// this rank's drained ops partitioned by kind. The hook fires on every rank
// of the same epoch (the trigger is the agreed global op count), so hook
// bodies may issue collectives; src/analytics/ builds on exactly this to
// keep derived values (triangle counts, distances, contractions)
// continuously consistent with the matrix readers observe. Further
// subscriber slots with the same all-ranks-or-none contract exist for the
// durability layer (set_wal_hook / set_checkpoint_hook; src/persist/) and
// for snapshot publication (set_publish_hook; src/serve/ freezes immutable
// serving snapshots here, after analytics so the frozen readouts match the
// frozen tiles).
//
// Every rank of the grid must construct the engine and call run()/pump()
// collectively (the engine issues collectives even for ranks whose queues
// are empty, exactly like any SPMD object in src/core/).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dist_matrix.hpp"
#include "core/update_ops.hpp"
#include "obs/metrics.hpp"
#include "par/profiler.hpp"
#include "stream/update_queue.hpp"

namespace dsg::stream {

struct EngineConfig {
    std::size_t queue_capacity = std::size_t{1} << 15;
    /// Epoch trigger: ops buffered locally...
    std::size_t epoch_batch = 4096;
    /// ...or time elapsed since the previous epoch, whichever comes first.
    std::chrono::milliseconds epoch_deadline{20};
    core::RedistMode redist = core::RedistMode::TwoPhase;
    /// Comm mode for the epoch's A* builds (sync collectives or the
    /// post/wait path). Results are bit-identical either way.
    par::CommMode comm_mode = par::CommMode::Sync;
    /// When true the WAL hook runs on a background thread that is joined
    /// before the NEXT epoch's write-ahead point, so the log write of epoch
    /// N overlaps N's apply and N+1's drain. This trades the strict
    /// WAL-before-apply ordering for throughput: a crash may lose the redo
    /// record of the single in-flight epoch (recovery still restores a
    /// consistent prefix). Requires a rank-local WAL hook (no collectives);
    /// default off preserves the kill -9 redo guarantee bench_recovery and
    /// the recovery tests assert.
    bool overlap_persist = false;
    par::ThreadPool* pool = nullptr;  ///< intra-rank threads for apply
    /// Per-epoch log entries kept (the aggregate totals are always exact).
    std::size_t max_epoch_log = std::size_t{1} << 16;
    /// Version the engine starts counting epochs from. 0 for a fresh run;
    /// recovery (src/persist/) sets it to the restored checkpoint's version
    /// so replayed and post-restart epochs continue the original numbering.
    std::uint64_t initial_version = 0;
};

/// What ONE rank contributed to one applied epoch, as handed to the epoch
/// hook: the drained local ops partitioned by kind, queue order preserved
/// within each list (the order the engine applied them in, ADDs before
/// MERGEs before MASKs). Tuples are in global coordinates; lists may be
/// empty on ranks that drained nothing while another rank's ops triggered
/// the epoch.
template <typename T>
struct EpochDelta {
    std::uint64_t version = 0;    ///< engine version after this epoch's apply
    std::uint64_t global_ops = 0; ///< ops applied across all ranks this epoch
    std::vector<sparse::Triple<T>> adds;
    std::vector<sparse::Triple<T>> merges;
    std::vector<sparse::Triple<T>> masks;
};

/// Per-epoch measurements of ONE rank.
struct EpochStats {
    std::uint64_t epoch = 0;       ///< epoch index (counts empty epochs too)
    std::size_t drained = 0;       ///< ops drained locally this epoch
    std::size_t adds = 0, merges = 0, masks = 0;
    std::uint64_t global_ops = 0;  ///< drained summed over all ranks
    double drain_ms = 0;           ///< trigger wait + queue drain
    double apply_ms = 0;           ///< A* builds + local application
    double hook_ms = 0;            ///< epoch hook (analytics maintainers)
    double publish_ms = 0;         ///< snapshot publication (src/serve/)
    double persist_ms = 0;         ///< WAL append + checkpoint (src/persist/)
    std::size_t backlog_after = 0; ///< ops already buffered for the next epoch
};

/// Aggregate totals of one rank's engine across a run.
struct StreamStats {
    std::uint64_t epochs = 0;          ///< pump() calls
    std::uint64_t applied_epochs = 0;  ///< epochs with global_ops > 0
    std::uint64_t local_ops = 0;
    std::uint64_t adds = 0, merges = 0, masks = 0;
    double drain_ms = 0;
    double apply_ms = 0;
    double hook_ms = 0;          ///< total epoch-hook time (0 without a hook)
    double publish_ms = 0;       ///< total snapshot-publication time (serve)
    double persist_ms = 0;       ///< total WAL + checkpoint time (0 without)
    double max_hook_ms = 0;      ///< slowest single hook invocation
    double max_epoch_ms = 0;     ///< slowest epoch (drain + apply + hook
                                 ///< + publish + persist)
    std::size_t max_backlog = 0; ///< worst backlog left behind by an epoch
    double run_seconds = 0;      ///< wall time of run() (0 if pumped manually)

    void record(const EpochStats& e);
    /// Locally drained ops per second of run() wall time (0 without run()).
    [[nodiscard]] double ops_per_second() const;
    /// One human-readable summary line.
    [[nodiscard]] std::string summary() const;
};

template <sparse::Semiring SR>
class EpochEngine {
public:
    using T = typename SR::value_type;
    using Clock = std::chrono::steady_clock;

    explicit EpochEngine(core::DistDynamicMatrix<T>& A, EngineConfig cfg = {})
        : A_(&A),
          cfg_(cfg),
          queue_(cfg.queue_capacity),
          version_(cfg.initial_version) {
        // Registry instruments, fetched once here so pump() never takes the
        // registry lock. Latency histograms and op counters merge across
        // ranks (epochs are collective, so the distributions are symmetric);
        // point-in-time values (queue depth, backlog, blocked time) are
        // per-rank labeled so ranks don't overwrite each other.
        auto& reg = obs::registry();
        const obs::Labels rank_label = {
            {"rank", std::to_string(A.shape().grid().world().rank())}};
        obs_drain_ns_ = &reg.histogram("stream_epoch_drain_ns");
        obs_apply_ns_ = &reg.histogram("stream_epoch_apply_ns");
        obs_hook_ns_ = &reg.histogram("stream_epoch_hook_ns");
        obs_publish_ns_ = &reg.histogram("stream_epoch_publish_ns");
        obs_persist_ns_ = &reg.histogram("stream_epoch_persist_ns");
        obs_adds_ = &reg.counter("stream_ops_adds");
        obs_merges_ = &reg.counter("stream_ops_merges");
        obs_masks_ = &reg.counter("stream_ops_masks");
        obs_epochs_ = &reg.counter("stream_epochs_total");
        obs_applied_ = &reg.counter("stream_epochs_applied");
        obs_backlog_ = &reg.gauge("stream_backlog", rank_label);
        queue_.set_instruments(
            {&reg.gauge("stream_queue_depth", rank_label),
             &reg.counter("stream_queue_blocked_ns", rank_label)});
    }

    EpochEngine(const EpochEngine&) = delete;
    EpochEngine& operator=(const EpochEngine&) = delete;
    ~EpochEngine() { join_wal_worker(); }

    [[nodiscard]] UpdateQueue<T>& queue() { return queue_; }
    [[nodiscard]] const EngineConfig& config() const { return cfg_; }

    /// Called at every applied epoch boundary, after apply and before the
    /// reader lock is released, with this rank's drained ops.
    using EpochHook = std::function<void(const EpochDelta<T>&)>;

    /// Subscribes to epoch boundaries. Must be set before pumping starts,
    /// and — because the hook fires on every rank of an applied epoch — on
    /// either all ranks of the grid or none, with hooks that agree on the
    /// collectives they issue (analytics::AnalyticsHub::attach satisfies
    /// this by construction).
    void set_epoch_hook(EpochHook hook) { hook_ = std::move(hook); }

    /// Write-ahead subscriber: called on every rank of an applied epoch
    /// BEFORE any of the epoch's ops touch the matrix, with the same
    /// EpochDelta the epoch hook will see (delta.version is the version the
    /// epoch is about to produce). The durability layer (src/persist/)
    /// appends the delta to the rank's op log here, so a crash between log
    /// write and apply replays the epoch instead of losing it (redo
    /// semantics). Same all-ranks-or-none rule as set_epoch_hook.
    void set_wal_hook(EpochHook hook) { wal_hook_ = std::move(hook); }

    /// Called after the epoch hook (still under the writer lock, so the
    /// matrix and any epoch-subscribed maintainers are quiescent and
    /// mutually consistent) with the epoch's version — the point where the
    /// durability layer takes its epoch-consistent checkpoints. Fires on
    /// every rank of the same epochs, so hook bodies may issue collectives.
    using CheckpointHook = std::function<void(std::uint64_t version)>;
    void set_checkpoint_hook(CheckpointHook hook) {
        checkpoint_hook_ = std::move(hook);
    }

    /// Snapshot-publication subscriber (src/serve/): called with the same
    /// semantics as the checkpoint hook — after the epoch hook, under the
    /// writer lock, on every rank of an applied epoch — but BEFORE the
    /// checkpoint hook, so a published serving snapshot never reflects
    /// state newer than what durability could replay to. The serving layer
    /// freezes its immutable tile + readout snapshots here; the subscriber
    /// decides its own cadence (cheap early-out on off-cycle versions).
    using PublishHook = std::function<void(std::uint64_t version)>;
    void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

    /// Multi-subscriber epoch observers: appended (never replaced), invoked
    /// LAST among the applied-epoch subscribers — after the checkpoint hook,
    /// on every rank of the same epochs — so observers see the fully
    /// published + persisted state. Same all-ranks-or-none contract as the
    /// other hooks: observer bodies may issue collectives (the live
    /// introspection plane federates per-rank metric snapshots here,
    /// obs/federate.hpp). Register before the collective loop starts.
    void add_epoch_observer(PublishHook observer) {
        epoch_observers_.push_back(std::move(observer));
    }

    /// Runs one epoch (collective). Returns false once every rank's queue is
    /// exhausted — the caller may stop pumping.
    bool pump() {
        const auto t0 = Clock::now();
        EpochStats e;
        e.epoch = stats_.epochs;

        scratch_.clear();
        {
            par::Profiler::Scope scope(par::Phase::StreamDrain);
            queue_.wait_ready(cfg_.epoch_batch, cfg_.epoch_deadline);
            e.drained = queue_.drain(scratch_);
        }
        e.drain_ms = ms_since(t0);

        // Partition into the three update streams, preserving queue order
        // within each stream.
        adds_.clear();
        merges_.clear();
        masks_.clear();
        for (const auto& op : scratch_) {
            switch (op.kind) {
                case OpKind::Add: adds_.push_back(op.tuple); break;
                case OpKind::Merge: merges_.push_back(op.tuple); break;
                case OpKind::Mask: masks_.push_back(op.tuple); break;
            }
        }
        e.adds = adds_.size();
        e.merges = merges_.size();
        e.masks = masks_.size();

        // One collective agreement: per-kind global op counts and global
        // exhaustion. The counts also decide, identically on every rank,
        // which of the three collective apply rounds can be skipped this
        // epoch (ADD-only traffic pays one round, not three). exhausted()
        // is evaluated after the drain, so a true verdict is final (a
        // closed queue accepts no further pushes).
        struct Sync {
            std::uint64_t adds, merges, masks;
            std::uint8_t done;
        };
        auto& world = A_->shape().grid().world();
        const Sync g = world.allreduce(
            Sync{adds_.size(), merges_.size(), masks_.size(),
                 queue_.exhausted() ? std::uint8_t{1} : std::uint8_t{0}},
            [](Sync a, Sync b) {
                return Sync{a.adds + b.adds, a.merges + b.merges,
                            a.masks + b.masks,
                            static_cast<std::uint8_t>(a.done & b.done)};
            });
        e.global_ops = g.adds + g.merges + g.masks;

        if (e.global_ops > 0) {
            // Trace spans emitted while this epoch is applied (apply, hooks,
            // publish, checkpoint) carry the version the epoch produces.
            par::Profiler::set_thread_epoch(
                static_cast<std::int64_t>(version_ + 1));
            auto t1 = Clock::now();
            std::unique_lock lock(snapshot_mx_);
            // The applies below consume the partitioned streams, so the
            // hooks' delta is captured first. With an epoch hook the lists
            // are copied (the hook reads them after apply consumed the
            // originals); with ONLY a WAL hook they are moved through the
            // delta and moved back out by the applies — zero copies, which
            // keeps the durable-ingest overhead bench_recovery gates low.
            EpochDelta<T> delta;
            // The move-through-the-delta fast path needs the lists dead
            // after apply; the overlapped WAL worker instead keeps its own
            // copy of the delta alive past this pump call.
            const bool wal_only = wal_hook_ && !hook_ && !cfg_.overlap_persist;
            if (hook_ || wal_hook_) {
                delta.version = version_ + 1;
                delta.global_ops = e.global_ops;
                if (wal_only) {
                    delta.adds = std::move(adds_);
                    delta.merges = std::move(merges_);
                    delta.masks = std::move(masks_);
                } else {
                    delta.adds = adds_;
                    delta.merges = merges_;
                    delta.masks = masks_;
                }
            }
            auto& apply_adds = wal_only ? delta.adds : adds_;
            auto& apply_merges = wal_only ? delta.merges : merges_;
            auto& apply_masks = wal_only ? delta.masks : masks_;
            if (wal_hook_) {
                const auto tw = Clock::now();
                // Any WAL write still in flight from the previous epoch must
                // land before this epoch's write-ahead point (keeps the log
                // in epoch order and bounds the loss window to one epoch).
                join_wal_worker();
                if (cfg_.overlap_persist) {
                    // The write itself proceeds under this epoch's apply and
                    // the next epoch's drain; on crash the in-flight record
                    // may be missing, hence the default-off documentation in
                    // EngineConfig.
                    auto d = std::make_shared<EpochDelta<T>>(delta);
                    wal_worker_ = std::thread(
                        [hook = &wal_hook_, d] { (*hook)(*d); });
                } else {
                    // Write-ahead: the epoch is logged (buffered; durability
                    // follows the subscriber's fsync cadence) before any of
                    // its ops become visible, so replay can redo exactly
                    // what readers may have observed minus a clean suffix.
                    wal_hook_(delta);
                }
                e.persist_ms += ms_since(tw);
                t1 = Clock::now();  // keep WAL time out of apply_ms
            }
            {
                par::Profiler::Scope scope(par::Phase::StreamApply);
                auto& grid = A_->shape().grid();
                const index_t nr = A_->shape().nrows();
                const index_t nc = A_->shape().ncols();
                if (g.adds > 0) {
                    auto ua = core::build_update_matrix(
                        grid, nr, nc, std::move(apply_adds), cfg_.redist,
                        cfg_.comm_mode);
                    core::add_update<SR>(*A_, ua, cfg_.pool);
                }
                if (g.merges > 0) {
                    auto um = core::build_update_matrix(
                        grid, nr, nc, std::move(apply_merges), cfg_.redist,
                        cfg_.comm_mode);
                    core::merge_update(*A_, um, cfg_.pool);
                }
                if (g.masks > 0) {
                    auto ud = core::build_update_matrix(
                        grid, nr, nc, std::move(apply_masks), cfg_.redist,
                        cfg_.comm_mode);
                    core::mask_delete(*A_, ud, cfg_.pool);
                }
                ++version_;
            }
            e.apply_ms = ms_since(t1);
            if (hook_) {
                const auto t2 = Clock::now();
                par::Profiler::Scope scope(par::Phase::Analytics);
                hook_(delta);
                e.hook_ms = ms_since(t2);
            }
            if (publish_hook_) {
                // The subscriber brackets its own Phase::ServePublish (it
                // also publishes outside the engine, at attach/recovery).
                const auto tp = Clock::now();
                publish_hook_(version_);
                e.publish_ms = ms_since(tp);
            }
            if (checkpoint_hook_) {
                const auto t3 = Clock::now();
                // A checkpoint reads/truncates the op log, so the epoch's
                // own WAL record must have landed first.
                join_wal_worker();
                checkpoint_hook_(version_);
                e.persist_ms += ms_since(t3);
            }
            for (const PublishHook& observer : epoch_observers_)
                observer(version_);
        }

        e.backlog_after = queue_.size();
        obs_epochs_->add(1);
        if (e.global_ops > 0) {
            obs_applied_->add(1);
            obs_adds_->add(e.adds);
            obs_merges_->add(e.merges);
            obs_masks_->add(e.masks);
            obs_drain_ns_->record_ms(e.drain_ms);
            obs_apply_ns_->record_ms(e.apply_ms);
            if (hook_) obs_hook_ns_->record_ms(e.hook_ms);
            if (publish_hook_) obs_publish_ns_->record_ms(e.publish_ms);
            if (wal_hook_ || checkpoint_hook_)
                obs_persist_ns_->record_ms(e.persist_ms);
        }
        obs_backlog_->set(static_cast<std::int64_t>(e.backlog_after));
        stats_.record(e);
        if (epoch_log_.size() < cfg_.max_epoch_log) epoch_log_.push_back(e);
        // Quiesce the overlapped WAL write before reporting exhaustion, so
        // a caller that stops pumping observes a complete log.
        if (g.done != 0) join_wal_worker();
        return g.done == 0;
    }

    /// Pumps until every rank's queue is exhausted (collective); records the
    /// run's wall time in stats().run_seconds.
    void run() {
        const auto t0 = Clock::now();
        while (pump()) {
        }
        stats_.run_seconds += ms_since(t0) * 1e-3;
    }

    /// Runs fn(core::SnapshotView<T>) under the reader lock: safe from any
    /// thread, any time — it waits only while an epoch is being applied.
    template <typename Fn>
    auto with_snapshot(Fn&& fn) const {
        std::shared_lock lock(snapshot_mx_);
        return fn(core::SnapshotView<T>(*A_, version_));
    }

    [[nodiscard]] const StreamStats& stats() const { return stats_; }
    /// Per-epoch log (capped at config().max_epoch_log entries).
    [[nodiscard]] const std::vector<EpochStats>& epoch_log() const {
        return epoch_log_;
    }

private:
    using index_t = sparse::index_t;

    static double ms_since(Clock::time_point t0) {
        return std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    }

    void join_wal_worker() {
        if (wal_worker_.joinable()) wal_worker_.join();
    }

    core::DistDynamicMatrix<T>* A_;
    EngineConfig cfg_;
    UpdateQueue<T> queue_;
    EpochHook hook_;
    EpochHook wal_hook_;
    std::thread wal_worker_;  // in-flight overlapped WAL write, if any
    CheckpointHook checkpoint_hook_;
    PublishHook publish_hook_;
    std::vector<PublishHook> epoch_observers_;

    mutable std::shared_mutex snapshot_mx_;
    std::uint64_t version_ = 0;  // written under unique snapshot_mx_

    std::vector<StreamOp<T>> scratch_;
    std::vector<sparse::Triple<T>> adds_, merges_, masks_;
    StreamStats stats_;
    std::vector<EpochStats> epoch_log_;

    // Registry instruments (fetched once in the ctor; see there).
    obs::Histogram* obs_drain_ns_ = nullptr;
    obs::Histogram* obs_apply_ns_ = nullptr;
    obs::Histogram* obs_hook_ns_ = nullptr;
    obs::Histogram* obs_publish_ns_ = nullptr;
    obs::Histogram* obs_persist_ns_ = nullptr;
    obs::Counter* obs_adds_ = nullptr;
    obs::Counter* obs_merges_ = nullptr;
    obs::Counter* obs_masks_ = nullptr;
    obs::Counter* obs_epochs_ = nullptr;
    obs::Counter* obs_applied_ = nullptr;
    obs::Gauge* obs_backlog_ = nullptr;
};

}  // namespace dsg::stream
