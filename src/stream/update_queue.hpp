// Bounded multi-producer update queue: the entry point of the streaming
// ingestion engine (docs/ARCHITECTURE.md, "The streaming engine").
//
// Each rank owns one UpdateQueue. Any number of producer threads push
// StreamOps (an ADD/MERGE/MASK opcode plus an (i, j, x) tuple in global
// coordinates); the rank's epoch engine is the single consumer, draining
// everything buffered at each epoch boundary. The ring is bounded: push()
// blocks while the queue is full (backpressure — producers cannot outrun
// the apply path by more than one ring), try_push() refuses instead.
//
// Shutdown follows the producer-token protocol: producers register with
// register_producer() and announce completion with producer_done(); when the
// last registered producer finishes (or close() is called explicitly) the
// queue closes. Register every producer before the first one can finish —
// typically on the launching thread, before spawning — so the count cannot
// touch zero (closing the queue) while producers are still starting up. A closed queue rejects pushes but keeps serving drains until
// empty, so no accepted op is ever lost. Like par::ThreadPool, all
// synchronization is a single mutex plus condition variables — simple,
// TSan-clean, and plenty for ops that are ~1 cache line each.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "sparse/types.hpp"

namespace dsg::stream {

/// The three update operations of Section IV-A, as stream opcodes.
enum class OpKind : std::uint8_t {
    Add,    ///< A <- A (+) (i, j, x) with the semiring addition
    Merge,  ///< overwrite/insert the value at (i, j)
    Mask,   ///< delete (i, j) if present (x is ignored)
};

/// One streamed update in global coordinates.
template <typename T>
struct StreamOp {
    OpKind kind;
    sparse::Triple<T> tuple;

    friend bool operator==(const StreamOp&, const StreamOp&) = default;
};

template <typename T>
class UpdateQueue {
public:
    explicit UpdateQueue(std::size_t capacity)
        : buf_(capacity == 0 ? 1 : capacity) {}

    UpdateQueue(const UpdateQueue&) = delete;
    UpdateQueue& operator=(const UpdateQueue&) = delete;

    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

    /// Optional registry instruments (see docs/ARCHITECTURE.md, "The
    /// observability layer"): depth tracks the buffered-op count, blocked_ns
    /// accumulates producer time spent inside a full-ring push(). References
    /// are fetched once by the owner (the engine or example) so the hot path
    /// never touches the registry.
    struct Instruments {
        obs::Gauge* depth = nullptr;
        obs::Counter* blocked_ns = nullptr;
    };
    void set_instruments(Instruments ins) {
        std::lock_guard lock(mx_);
        ins_ = ins;
    }

    // -- producer side -------------------------------------------------------

    /// Announces a producer thread; pair with producer_done().
    void register_producer() {
        std::lock_guard lock(mx_);
        assert(!closed_);
        ++producers_;
    }

    /// Announces that one registered producer has finished. When the last
    /// one finishes, the queue closes.
    void producer_done() {
        std::lock_guard lock(mx_);
        assert(producers_ > 0);
        if (--producers_ == 0 && !closed_) close_locked();
    }

    /// Blocks while the queue is full; returns false (dropping the op) if
    /// the queue is or becomes closed.
    bool push(const StreamOp<T>& op) {
        std::unique_lock lock(mx_);
        if (count_ == buf_.size() && !closed_) {
            // Measure backpressure only when the push actually parks, so
            // the uncontended fast path stays instrument-free.
            const auto t0 = std::chrono::steady_clock::now();
            not_full_.wait(lock,
                           [&] { return count_ < buf_.size() || closed_; });
            if (ins_.blocked_ns != nullptr)
                ins_.blocked_ns->add(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
        }
        if (closed_) return false;
        push_locked(op);
        return true;
    }

    /// Non-blocking push; returns false when full or closed.
    bool try_push(const StreamOp<T>& op) {
        std::lock_guard lock(mx_);
        if (closed_ || count_ == buf_.size()) return false;
        push_locked(op);
        return true;
    }

    /// Closes the queue explicitly (idempotent): pending pushes fail, buffered
    /// ops remain drainable. Normally reached via producer_done() instead.
    void close() {
        std::lock_guard lock(mx_);
        close_locked();
    }

    // -- consumer side (single thread: the rank's epoch engine) --------------

    /// Blocks until at least min_ops are buffered, the queue is closed, or
    /// the deadline elapses — the epoch trigger. Returns the buffered count.
    /// min_ops is clamped to the capacity (it could never be reached
    /// otherwise and every epoch would stall for the full deadline).
    std::size_t wait_ready(std::size_t min_ops,
                           std::chrono::nanoseconds deadline) {
        std::unique_lock lock(mx_);
        wait_min_ = std::min(min_ops, buf_.size());
        not_empty_.wait_for(lock, deadline,
                            [&] { return count_ >= wait_min_ || closed_; });
        wait_min_ = 1;
        return count_;
    }

    /// Appends everything buffered to out in FIFO order and frees the ring.
    /// Returns the number of ops drained.
    std::size_t drain(std::vector<StreamOp<T>>& out) {
        std::lock_guard lock(mx_);
        const std::size_t n = count_;
        out.reserve(out.size() + n);
        for (std::size_t k = 0; k < n; ++k)
            out.push_back(buf_[(head_ + k) % buf_.size()]);
        head_ = 0;
        count_ = 0;
        if (ins_.depth != nullptr) ins_.depth->set(0);
        not_full_.notify_all();
        return n;
    }

    // -- introspection -------------------------------------------------------

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mx_);
        return count_;
    }
    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mx_);
        return closed_;
    }
    /// True once no further op can ever be drained (closed and empty).
    [[nodiscard]] bool exhausted() const {
        std::lock_guard lock(mx_);
        return closed_ && count_ == 0;
    }
    /// Total ops ever accepted (monotone; drained + buffered).
    [[nodiscard]] std::uint64_t accepted() const {
        std::lock_guard lock(mx_);
        return accepted_;
    }

private:
    void push_locked(const StreamOp<T>& op) {
        buf_[(head_ + count_) % buf_.size()] = op;
        ++count_;
        ++accepted_;
        if (ins_.depth != nullptr)
            ins_.depth->set(static_cast<std::int64_t>(count_));
        // Wake the (single) consumer only once its trigger threshold is
        // reached — below it the wakeup would fail the wait predicate and
        // go straight back to sleep, syscalling on every push for nothing.
        // The deadline path needs no notification (wait_for times out).
        if (count_ >= wait_min_) not_empty_.notify_one();
    }
    void close_locked() {
        closed_ = true;
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    mutable std::mutex mx_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::vector<StreamOp<T>> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t wait_min_ = 1;  // the parked consumer's trigger threshold
    std::uint64_t accepted_ = 0;
    int producers_ = 0;
    bool closed_ = false;
    Instruments ins_;
};

}  // namespace dsg::stream
