// Workload scenario driver for the streaming ingestion engine.
//
// A WorkloadProducer is a deterministic per-thread event source: given a
// (config, producer_id) pair it emits the same sequence on every run, so
// engine tests can replay a concurrent ingest against a sequential
// reference. Events are writes (the StreamOps the producer pushes into its
// rank's UpdateQueue), reads (point probes served from a reader snapshot
// between epochs), and pauses (burst gaps the driver may honor by sleeping
// or yield to model think time).
//
// The nine scenarios cover the axes that stress distinct parts of the
// engine: sustained-uniform — steady uniform load (the paper's R-MAT-batch
// regime); bursty — deadline-triggered epochs + backpressure; hot-vertex-skew
// — long DHB rows and unbalanced grid blocks; sliding-window-delete —
// MASK-heavy traffic over the producer's own recent inserts; mixed-read-write
// — point-probe readers racing epoch application; analytics-read —
// weighted inserts plus windowed deletes with frequent reads, where a read
// means "poll the derived analytics" (the driver's on_read typically samples
// analytics::AnalyticsHub snapshots instead of probing the matrix);
// checkpoint-under-load — all three op kinds sustained so the durability
// layer (src/persist/) logs and checkpoints under real write pressure;
// kill-and-recover — deterministic ADD bursts + MASK sweeps whose every
// prefix is exactly regenerable, the stream crash drills kill mid-flight;
// and serving-read-heavy — the query-serving stress (src/serve/): at least
// nine reads per write, read keys zipf-skewed onto a small hot set (real
// query traffic concentrates on celebrities), writes a thin stream of
// uniform ADDs so snapshot versions keep advancing under the readers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "stream/update_queue.hpp"

namespace dsg::stream {

enum class Scenario : int {
    SustainedUniform,     ///< steady uniform ADDs
    Bursty,               ///< uniform ADDs in bursts separated by pauses
    HotVertexSkew,        ///< ADD/MERGE concentrated on a small hot row set
    SlidingWindowDelete,  ///< ADD new edges, MASK those older than a window
    MixedReadWrite,       ///< uniform ADDs interleaved with point reads
    AnalyticsRead,        ///< weighted ADDs + windowed MASKs + derived-value reads
    CheckpointUnderLoad,  ///< all three kinds sustained: durability pressure
    KillAndRecover,       ///< deterministic ADD bursts + MASK sweeps, kill-friendly
    ServingReadHeavy,     ///< >= 9:1 zipf-skewed reads : uniform ADD writes
};

[[nodiscard]] constexpr const char* scenario_name(Scenario s) {
    switch (s) {
        case Scenario::SustainedUniform: return "sustained-uniform";
        case Scenario::Bursty: return "bursty";
        case Scenario::HotVertexSkew: return "hot-vertex-skew";
        case Scenario::SlidingWindowDelete: return "sliding-window-delete";
        case Scenario::MixedReadWrite: return "mixed-read-write";
        case Scenario::AnalyticsRead: return "analytics-read";
        case Scenario::CheckpointUnderLoad: return "checkpoint-under-load";
        case Scenario::KillAndRecover: return "kill-and-recover";
        case Scenario::ServingReadHeavy: return "serving-read-heavy";
    }
    return "?";
}

[[nodiscard]] inline const std::vector<Scenario>& all_scenarios() {
    static const std::vector<Scenario> all = {
        Scenario::SustainedUniform,    Scenario::Bursty,
        Scenario::HotVertexSkew,       Scenario::SlidingWindowDelete,
        Scenario::MixedReadWrite,      Scenario::AnalyticsRead,
        Scenario::CheckpointUnderLoad, Scenario::KillAndRecover,
        Scenario::ServingReadHeavy};
    return all;
}

struct WorkloadConfig {
    Scenario scenario = Scenario::SustainedUniform;
    sparse::index_t n = 1024;         ///< square matrix dimension
    std::size_t writes = 10'000;      ///< StreamOps emitted per producer
    std::uint64_t seed = 1;           ///< base seed (combined with producer_id)

    // Scenario knobs (ignored by scenarios they do not apply to).
    std::size_t burst_len = 256;      ///< Bursty: writes per burst
    double hot_fraction = 0.9;        ///< HotVertexSkew: P(row in hot set)
    sparse::index_t hot_rows = 16;    ///< HotVertexSkew: hot-set size
    double merge_fraction = 0.3;      ///< HotVertexSkew: P(MERGE | write)
    std::size_t window = 512;         ///< SlidingWindowDelete/AnalyticsRead: live inserts
    double read_fraction = 0.5;       ///< MixedReadWrite/AnalyticsRead: P(read)
    double zipf_skew = 4.0;           ///< ServingReadHeavy: read-key skew (>= 1;
                                      ///< P(key < t·n) = t^(1/skew), so skew 4
                                      ///< sends ~56% of reads to the top 10%)
};

/// One workload event.
struct Event {
    enum class Type : std::uint8_t {
        Write,  ///< op is a StreamOp to push into the queue
        Read,   ///< op.tuple carries the (row, col) coordinates to probe
        Pause,  ///< burst boundary; the driver may sleep/yield here
    };
    Type type;
    StreamOp<double> op;
};

class WorkloadProducer {
public:
    WorkloadProducer(const WorkloadConfig& cfg, int producer_id)
        : cfg_(cfg),
          rng_(cfg.seed * 0x9e3779b97f4a7c15ull +
               static_cast<std::uint64_t>(producer_id) + 1) {
        assert(cfg_.n > 0);
        // Clamp the knobs into ranges where every scenario makes progress:
        // burst_len/window of 0 would divide by zero / pop an empty window,
        // and read_fraction == 1 would emit reads forever without ever
        // consuming the write budget (next() must terminate).
        cfg_.burst_len = std::max<std::size_t>(1, cfg_.burst_len);
        cfg_.window = std::max<std::size_t>(1, cfg_.window);
        cfg_.hot_fraction = std::clamp(cfg_.hot_fraction, 0.0, 1.0);
        cfg_.merge_fraction = std::clamp(cfg_.merge_fraction, 0.0, 1.0);
        cfg_.read_fraction = std::clamp(cfg_.read_fraction, 0.0, 0.95);
        cfg_.hot_rows = std::max<sparse::index_t>(1, cfg_.hot_rows);
        cfg_.zipf_skew = std::max(1.0, cfg_.zipf_skew);
    }

    [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }

    /// The next event, or nullopt once `writes` write events were emitted.
    std::optional<Event> next() {
        if (writes_emitted_ >= cfg_.writes) return std::nullopt;
        switch (cfg_.scenario) {
            case Scenario::SustainedUniform: return write(uniform_add());
            case Scenario::Bursty: {
                if (writes_emitted_ > 0 && !pause_pending_ &&
                    writes_emitted_ % cfg_.burst_len == 0) {
                    pause_pending_ = true;
                    return Event{Event::Type::Pause, {}};
                }
                pause_pending_ = false;
                return write(uniform_add());
            }
            case Scenario::HotVertexSkew: {
                const sparse::index_t row =
                    chance(cfg_.hot_fraction)
                        ? rand_index(std::min(cfg_.hot_rows, cfg_.n))
                        : rand_index(cfg_.n);
                const OpKind kind =
                    chance(cfg_.merge_fraction) ? OpKind::Merge : OpKind::Add;
                return write({kind, {row, rand_index(cfg_.n), rand_value()}});
            }
            case Scenario::SlidingWindowDelete: {
                if (live_.size() >= cfg_.window && !just_masked_) {
                    // Alternate: retire the oldest live edge of this producer.
                    auto victim = live_.front();
                    live_.pop_front();
                    just_masked_ = true;
                    return write({OpKind::Mask, {victim.row, victim.col, 0.0}});
                }
                just_masked_ = false;
                auto op = uniform_add();
                live_.push_back({op.tuple.row, op.tuple.col});
                return write(op);
            }
            case Scenario::MixedReadWrite: {
                if (chance(cfg_.read_fraction)) {
                    // Probe a previously written coordinate when possible so
                    // reads actually hit; do not consume the write budget.
                    sparse::Triple<double> probe{rand_index(cfg_.n),
                                                 rand_index(cfg_.n), 0.0};
                    if (!live_.empty()) {
                        const auto& c =
                            live_[static_cast<std::size_t>(rng_()) % live_.size()];
                        probe.row = c.row;
                        probe.col = c.col;
                    }
                    return Event{Event::Type::Read, {OpKind::Add, probe}};
                }
                auto op = uniform_add();
                if (live_.size() < 4096) live_.push_back({op.tuple.row, op.tuple.col});
                return write(op);
            }
            case Scenario::AnalyticsRead: {
                // Sustained weighted ingestion with a sliding deletion
                // window, sampled by frequent reads. A read event here means
                // "poll the derived analytics" — the driver's on_read
                // decides what to sample; the carried coordinates are a
                // recently written edge for drivers that also want a point
                // probe. Reads do not consume the write budget.
                if (chance(cfg_.read_fraction)) {
                    sparse::Triple<double> probe{rand_index(cfg_.n),
                                                 rand_index(cfg_.n), 0.0};
                    if (!live_.empty()) {
                        const auto& c =
                            live_[static_cast<std::size_t>(rng_()) % live_.size()];
                        probe.row = c.row;
                        probe.col = c.col;
                    }
                    return Event{Event::Type::Read, {OpKind::Add, probe}};
                }
                if (live_.size() >= cfg_.window && !just_masked_) {
                    auto victim = live_.front();
                    live_.pop_front();
                    just_masked_ = true;
                    return write({OpKind::Mask, {victim.row, victim.col, 0.0}});
                }
                just_masked_ = false;
                StreamOp<double> op{
                    OpKind::Add,
                    {rand_index(cfg_.n), rand_index(cfg_.n), rand_value()}};
                live_.push_back({op.tuple.row, op.tuple.col});
                return write(op);
            }
            case Scenario::CheckpointUnderLoad: {
                // Durability pressure: every op kind, sustained, writes
                // only. The live window keeps the log's MASK share honest
                // (only ever retiring this producer's own inserts), MERGEs
                // re-weight live edges, ADDs grow the matrix — so both the
                // WAL (all three streams per epoch) and the checkpoint (a
                // steadily growing tile) are exercised while the driver
                // runs a small checkpoint stride underneath.
                if (live_.size() >= cfg_.window && !just_masked_) {
                    auto victim = live_.front();
                    live_.pop_front();
                    just_masked_ = true;
                    return write(
                        {OpKind::Mask, {victim.row, victim.col, 0.0}});
                }
                just_masked_ = false;
                if (!live_.empty() && chance(cfg_.merge_fraction)) {
                    const auto& c =
                        live_[static_cast<std::size_t>(rng_()) % live_.size()];
                    return write({OpKind::Merge, {c.row, c.col, rand_value()}});
                }
                StreamOp<double> op{
                    OpKind::Add,
                    {rand_index(cfg_.n), rand_index(cfg_.n), rand_value()}};
                live_.push_back({op.tuple.row, op.tuple.col});
                return write(op);
            }
            case Scenario::ServingReadHeavy: {
                // Query-serving stress: read-dominated (at least 9:1 —
                // read_fraction can only push the ratio HIGHER, up to its
                // 0.95 clamp) with zipf-skewed read keys, so the serving
                // tier sees both a hot cached working set and a cold tail.
                // A read event's coordinates are the query key; the driver
                // decides the query mix (point probe, degree, k-hop,
                // analytics read — src/serve/). Writes are uniform ADDs:
                // enough traffic that epochs apply and snapshot versions
                // advance underneath the readers. Reads do not consume the
                // write budget.
                if (chance(std::max(cfg_.read_fraction, 0.9))) {
                    return Event{Event::Type::Read,
                                 {OpKind::Add,
                                  {zipf_index(cfg_.n), zipf_index(cfg_.n),
                                   0.0}}};
                }
                return write(uniform_add());
            }
            case Scenario::KillAndRecover: {
                // Deterministic phased rounds for crash drills: burst_len
                // weighted ADDs, then a MASK sweep retiring the oldest
                // quarter of the live set. Writes only, no pauses — a
                // driver killed at ANY point leaves a prefix this same
                // producer regenerates exactly, which is what the recovery
                // equivalence tests replay against.
                if (mask_sweep_ > 0 && !live_.empty()) {
                    --mask_sweep_;
                    auto victim = live_.front();
                    live_.pop_front();
                    return write(
                        {OpKind::Mask, {victim.row, victim.col, 0.0}});
                }
                mask_sweep_ = 0;
                if (phase_pos_ >= cfg_.burst_len) {
                    phase_pos_ = 0;
                    mask_sweep_ = live_.size() / 4;
                }
                ++phase_pos_;
                StreamOp<double> op{
                    OpKind::Add,
                    {rand_index(cfg_.n), rand_index(cfg_.n), rand_value()}};
                live_.push_back({op.tuple.row, op.tuple.col});
                return write(op);
            }
        }
        return std::nullopt;
    }

    /// Collects just the write ops of the remaining sequence — the sequential
    /// reference an engine test replays against the concurrent run.
    [[nodiscard]] std::vector<StreamOp<double>> remaining_writes() {
        std::vector<StreamOp<double>> out;
        out.reserve(cfg_.writes - writes_emitted_);
        while (auto ev = next())
            if (ev->type == Event::Type::Write) out.push_back(ev->op);
        return out;
    }

private:
    struct Coord {
        sparse::index_t row, col;
    };

    Event write(const StreamOp<double>& op) {
        ++writes_emitted_;
        return {Event::Type::Write, op};
    }
    StreamOp<double> uniform_add() {
        return {OpKind::Add, {rand_index(cfg_.n), rand_index(cfg_.n), 1.0}};
    }
    sparse::index_t rand_index(sparse::index_t n) {
        return static_cast<sparse::index_t>(rng_() %
                                            static_cast<std::uint64_t>(n));
    }
    /// Zipf-like skewed index: u^skew concentrates mass near 0, giving the
    /// power-law key popularity serving workloads see (exact Zipf sampling
    /// needs a harmonic-number table; this one-liner preserves the property
    /// the serving layer cares about — a small hot set absorbing most
    /// reads — and stays deterministic and O(1)).
    sparse::index_t zipf_index(sparse::index_t n) {
        const double u =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
        const auto idx = static_cast<sparse::index_t>(
            std::pow(u, cfg_.zipf_skew) * static_cast<double>(n));
        return std::min(idx, n - 1);
    }
    double rand_value() {
        return 1.0 + static_cast<double>(rng_() % 1000) / 1000.0;
    }
    bool chance(double p) {
        return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
    }

    WorkloadConfig cfg_;
    std::mt19937_64 rng_;
    std::size_t writes_emitted_ = 0;
    bool pause_pending_ = false;
    bool just_masked_ = false;
    std::size_t phase_pos_ = 0;   // KillAndRecover: position within a burst
    std::size_t mask_sweep_ = 0;  // KillAndRecover: MASKs left in the sweep
    std::deque<Coord> live_;
};

/// The canonical producer-thread body: pumps one producer's events into an
/// engine's queue — writes push (blocking on backpressure), reads invoke
/// on_read(row, col) (callers typically probe engine.with_snapshot), pauses
/// yield — and returns the producer token when the source is exhausted.
/// Templated on the engine so this header stays semiring-agnostic.
template <typename Engine, typename OnRead>
void drive_producer(Engine& engine, WorkloadProducer producer,
                    OnRead&& on_read) {
    while (auto ev = producer.next()) {
        switch (ev->type) {
            case Event::Type::Write:
                engine.queue().push(ev->op);
                break;
            case Event::Type::Read:
                on_read(ev->op.tuple.row, ev->op.tuple.col);
                break;
            case Event::Type::Pause:
                std::this_thread::yield();
                break;
        }
    }
    engine.queue().producer_done();
}

}  // namespace dsg::stream
