// Live analytics acceptance suite: the AnalyticsHub contract (dispatch
// order, stats, engine attachment) and THE end-to-end property — after
// every applied epoch of a mixed insert/delete workload with concurrent
// producers, every maintainer's value equals a from-scratch recomputation
// over the stream's replicated history.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "core/dist_test_utils.hpp"
#include "par/comm.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

namespace {

using namespace dsg;
using test::CoordMap;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using sparse::index_t;
using sparse::Triple;
using stream::OpKind;

constexpr int kRanks = 4;  // 2x2 grid

/// Test double: records every delta it is handed and publishes the last
/// version seen.
class Recorder final : public analytics::Maintainer<double> {
public:
    explicit Recorder(const char* name, std::vector<std::string>* order)
        : name_(name), order_(order) {}

    [[nodiscard]] const char* name() const override { return name_; }
    void on_epoch(const stream::EpochDelta<double>& delta) override {
        if (order_ != nullptr) order_->push_back(name_);
        deltas_.push_back(delta);
        version_.store(static_cast<double>(delta.version),
                       std::memory_order_release);
    }
    [[nodiscard]] double snapshot() const override {
        return version_.load(std::memory_order_acquire);
    }
    [[nodiscard]] const std::vector<stream::EpochDelta<double>>& deltas()
        const {
        return deltas_;
    }

private:
    const char* name_;
    std::vector<std::string>* order_;
    std::vector<stream::EpochDelta<double>> deltas_;
    std::atomic<double> version_{-1.0};
};

TEST(AnalyticsHub, DispatchesInRegistrationOrderAndAccountsStats) {
    std::vector<std::string> order;
    analytics::AnalyticsHub<double> hub;
    auto& a = hub.emplace<Recorder>("a", &order);
    auto& b = hub.emplace<Recorder>("b", &order);
    ASSERT_EQ(hub.size(), 2u);

    stream::EpochDelta<double> delta;
    delta.version = 7;
    delta.adds = {{1, 2, 3.0}};
    hub.on_epoch(delta);
    delta.version = 8;
    hub.on_epoch(delta);

    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b"}));
    EXPECT_EQ(a.deltas().size(), 2u);
    EXPECT_EQ(b.deltas().size(), 2u);
    EXPECT_EQ(a.deltas()[0].adds.size(), 1u);
    EXPECT_DOUBLE_EQ(a.snapshot(), 8.0);
    EXPECT_EQ(hub.stats(0).epochs, 2u);
    EXPECT_EQ(hub.stats(1).epochs, 2u);
    EXPECT_GE(hub.stats(0).total_ms, 0.0);
    EXPECT_GE(hub.stats(0).max_ms, 0.0);

    const auto snaps = hub.snapshots();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].first, "a");
    EXPECT_DOUBLE_EQ(snaps[1].second, 8.0);
}

// The engine invokes an attached hub at every APPLIED epoch — after the ops
// hit the matrix, with this rank's drained ops partitioned by kind — and
// never for globally empty epochs.
TEST(AnalyticsHub, EngineHookFiresPerAppliedEpochWithPartitionedDelta) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 32;
        core::DistDynamicMatrix<double> A(grid, n, n);
        Engine engine(A);

        analytics::AnalyticsHub<double> hub;
        auto& rec = hub.emplace<Recorder>("rec", nullptr);
        hub.attach(engine);

        const auto r = static_cast<index_t>(comm.rank());
        auto& q = engine.queue();
        ASSERT_TRUE(q.push({OpKind::Add, {r, 0, 1.0}}));
        ASSERT_TRUE(q.push({OpKind::Add, {r, 1, 1.0}}));
        ASSERT_TRUE(q.push({OpKind::Merge, {r, 0, 5.0}}));
        ASSERT_TRUE(q.push({OpKind::Mask, {r, 1, 0.0}}));
        EXPECT_TRUE(engine.pump());  // deadline epoch applies everything

        // A globally empty epoch must not reach the hub.
        q.close();
        while (engine.pump()) {
        }

        ASSERT_EQ(rec.deltas().size(), 1u);
        const auto& d = rec.deltas()[0];
        EXPECT_EQ(d.version, 1u);
        EXPECT_EQ(d.global_ops, 4u * kRanks);
        ASSERT_EQ(d.adds.size(), 2u);
        EXPECT_EQ(d.adds[0], (Triple<double>{r, 0, 1.0}));
        ASSERT_EQ(d.merges.size(), 1u);
        EXPECT_EQ(d.merges[0], (Triple<double>{r, 0, 5.0}));
        ASSERT_EQ(d.masks.size(), 1u);
        EXPECT_EQ(rec.deltas().size(), engine.stats().applied_epochs);

        // The hook observed the POST-apply matrix version.
        const auto version =
            engine.with_snapshot([](auto snap) { return snap.version(); });
        EXPECT_EQ(version, 1u);
    });
}

// ---------------------------------------------------------------------------
// The acceptance property. A MirrorChecker maintainer registers LAST in the
// hub, so at every applied epoch it runs after the live maintainers. It
// allgathers the epoch's ops from all ranks, applies the engine's ordering
// contract (all ADDs, then all MASKs) to replicated from-scratch mirrors,
// and asserts each maintainer's published value and underlying distributed
// state equal the mirror-derived recomputation.
// ---------------------------------------------------------------------------

std::uint64_t pair_key(index_t i, index_t j) {
    return (static_cast<std::uint64_t>(i) << 32) |
           static_cast<std::uint64_t>(j);
}

class MirrorChecker final : public analytics::Maintainer<double> {
public:
    MirrorChecker(par::Comm& comm,
                  const analytics::LiveTriangleMaintainer& tri,
                  const analytics::LiveDistanceMaintainer& dist,
                  const analytics::LiveContractionMaintainer& contr,
                  std::vector<index_t> sources,
                  std::vector<index_t> assignment)
        : comm_(comm),
          tri_(tri),
          dist_(dist),
          contr_(contr),
          sources_(std::move(sources)),
          assignment_(std::move(assignment)) {}

    [[nodiscard]] const char* name() const override { return "checker"; }
    [[nodiscard]] double snapshot() const override {
        return static_cast<double>(checked_.load(std::memory_order_acquire));
    }

    void on_epoch(const stream::EpochDelta<double>& delta) override {
        // Replicate the epoch identically on every rank.
        par::Buffer mine;
        par::BufferWriter w(mine);
        w.write_vector(delta.adds);
        w.write_vector(delta.masks);
        auto all = comm_.allgather(std::move(mine));
        std::vector<Triple<double>> adds, masks;
        for (auto& buf : all) {
            par::BufferReader r(buf);
            auto a = r.read_vector<Triple<double>>();
            auto m = r.read_vector<Triple<double>>();
            adds.insert(adds.end(), a.begin(), a.end());
            masks.insert(masks.end(), m.begin(), m.end());
        }

        // The engine's ordering contract: the epoch's ADDs apply before its
        // MASKs, so a MASK wins over same-epoch ADDs of the same edge.
        for (const auto& t : adds) {
            if (t.row != t.col)
                edges_.insert(pair_key(std::min(t.row, t.col),
                                       std::max(t.row, t.col)));
            auto [it, fresh] = weights_.try_emplace({t.row, t.col}, t.value);
            if (!fresh) it->second = std::min(it->second, t.value);
            cells_[{assignment_[static_cast<std::size_t>(t.row)],
                    assignment_[static_cast<std::size_t>(t.col)]}] += t.value;
        }
        for (const auto& t : masks)
            if (t.row != t.col)
                edges_.erase(pair_key(std::min(t.row, t.col),
                                      std::max(t.row, t.col)));

        verify_triangles();
        verify_distances();
        verify_contraction();
        checked_.fetch_add(1, std::memory_order_release);
    }

private:
    void verify_triangles() {
        // From-scratch count: once per triangle, via its lexicographically
        // smallest edge.
        std::map<index_t, std::set<index_t>> adj;
        for (const auto key : edges_) {
            const auto i = static_cast<index_t>(key >> 32);
            const auto j = static_cast<index_t>(key & 0xffffffffu);
            adj[i].insert(j);
            adj[j].insert(i);
        }
        std::size_t expected = 0;
        for (const auto key : edges_) {
            const auto i = static_cast<index_t>(key >> 32);
            const auto j = static_cast<index_t>(key & 0xffffffffu);
            for (const index_t k : adj[i])
                if (k > j && adj[j].count(k) > 0) ++expected;
        }
        EXPECT_DOUBLE_EQ(tri_.snapshot(), static_cast<double>(expected));

        // The maintained adjacency IS the stream-induced graph.
        CoordMap expect_adj;
        for (const auto key : edges_) {
            const auto i = static_cast<index_t>(key >> 32);
            const auto j = static_cast<index_t>(key & 0xffffffffu);
            expect_adj[{i, j}] = 1.0;
            expect_adj[{j, i}] = 1.0;
        }
        test::expect_matches_exactly(tri_.counter().adjacency(), expect_adj);
    }

    void verify_distances() {
        CoordMap expect;
        double sum = 0.0;
        for (std::size_t s = 0; s < sources_.size(); ++s)
            for (const auto& [coord, wgt] : weights_)
                if (coord.first == sources_[s]) {
                    expect[{static_cast<index_t>(s), coord.second}] = wgt;
                    sum += wgt;
                }
        test::expect_matches_exactly(dist_.product().distances(), expect);
        EXPECT_NEAR(dist_.snapshot(), sum, 1e-6);
        EXPECT_EQ(dist_.reached_pairs(), expect.size());
    }

    void verify_contraction() {
        CoordMap expect;
        double total = 0.0;
        for (const auto& [cell, wgt] : cells_) {
            expect[cell] = wgt;
            total += wgt;
        }
        test::expect_matches(contr_.contraction().contracted(), expect, 1e-6);
        EXPECT_NEAR(contr_.snapshot(), total, 1e-6);
    }

    par::Comm& comm_;
    const analytics::LiveTriangleMaintainer& tri_;
    const analytics::LiveDistanceMaintainer& dist_;
    const analytics::LiveContractionMaintainer& contr_;
    std::vector<index_t> sources_;
    std::vector<index_t> assignment_;

    std::set<std::uint64_t> edges_;                          // undirected
    std::map<std::pair<index_t, index_t>, double> weights_;  // directed min
    std::map<std::pair<index_t, index_t>, double> cells_;    // cluster sums
    std::atomic<std::uint64_t> checked_{0};
};

TEST(LiveAnalytics, MatchFromScratchRecomputationAfterEveryEpoch) {
    constexpr int kProducers = 2;  // >= 2 concurrent producers per rank
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 40;
        const std::vector<index_t> sources = {0, 5, 11};
        std::vector<index_t> assignment(static_cast<std::size_t>(n));
        for (std::size_t v = 0; v < assignment.size(); ++v)
            assignment[v] = static_cast<index_t>(v % 6);

        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        auto& dist =
            hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);
        auto& contr = hub.emplace<analytics::LiveContractionMaintainer>(
            grid, n, 6, assignment);
        auto& checker = hub.emplace<MirrorChecker>(comm, tri, dist, contr,
                                                   sources, assignment);

        // Mixed insert/delete traffic with frequent reads: the small n makes
        // duplicate coordinates, re-ADDs of live edges and MASKs of absent
        // edges common, which is exactly what the maintainers must absorb.
        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::AnalyticsRead;
        wl.n = n;
        wl.writes = 500;
        wl.window = 60;
        wl.read_fraction = 0.2;
        wl.seed = 1'234 + static_cast<std::uint64_t>(comm.rank());

        stream::EngineConfig cfg;
        cfg.queue_capacity = 512;
        cfg.epoch_batch = 256;
        cfg.epoch_deadline = std::chrono::milliseconds(3);
        Engine engine(A, cfg);
        hub.attach(engine);
        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        std::vector<std::thread> producers;
        for (int prod = 0; prod < kProducers; ++prod) {
            producers.emplace_back([&, prod] {
                stream::drive_producer(
                    engine, stream::WorkloadProducer(wl, prod),
                    [&](index_t, index_t) {
                        // Concurrent snapshot readers polling derived values
                        // under sustained ingestion.
                        (void)tri.snapshot();
                        (void)dist.snapshot();
                        (void)contr.snapshot();
                    });
            });
        }
        engine.run();
        for (auto& t : producers) t.join();

        // Every applied epoch was verified, and there were several.
        EXPECT_EQ(static_cast<std::uint64_t>(checker.snapshot()),
                  engine.stats().applied_epochs);
        EXPECT_GE(engine.stats().applied_epochs, 2u)
            << "traffic should span multiple epochs";
        EXPECT_EQ(engine.stats().local_ops,
                  static_cast<std::uint64_t>(kProducers) * wl.writes);
        for (std::size_t k = 0; k < hub.size(); ++k)
            EXPECT_EQ(hub.stats(k).epochs, engine.stats().applied_epochs);
    });
}

}  // namespace
