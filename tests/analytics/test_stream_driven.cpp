// Deterministic epoch-delta edge cases for the graph maintainers: the
// satellite coverage for DynamicTriangleCounter::remove_edges and
// DynamicMultiSourceProduct::apply_decreases when driven from streamed
// epochs — duplicates within an epoch, insert-then-delete of the same edge
// in one epoch, re-ADDs of live edges, MASKs of absent edges, and empty /
// locally-empty epochs. Ranks push before pumping, so every epoch's content
// is exact.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "analytics/maintainer.hpp"
#include "core/dist_test_utils.hpp"
#include "par/comm.hpp"
#include "stream/epoch_engine.hpp"

namespace {

using namespace dsg;
using test::CoordMap;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using sparse::index_t;
using sparse::Triple;
using stream::OpKind;

constexpr int kRanks = 4;  // 2x2 grid

stream::EngineConfig fast_epochs() {
    stream::EngineConfig cfg;
    cfg.epoch_batch = 1 << 12;  // everything pushed so far fits one epoch
    cfg.epoch_deadline = std::chrono::milliseconds(2);
    return cfg;
}

CoordMap undirected(std::initializer_list<std::pair<index_t, index_t>> edges) {
    CoordMap m;
    for (const auto& [i, j] : edges) {
        m[{i, j}] = 1.0;
        m[{j, i}] = 1.0;
    }
    return m;
}

TEST(StreamDrivenTriangles, DuplicatesWithinOneEpochCollapse) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        Engine engine(A, fast_epochs());
        hub.attach(engine);

        // Epoch 1: the triangle {1,2,3} streamed with a duplicate ADD, a
        // reversed-direction duplicate, and a self-loop.
        if (comm.rank() == 0) {
            auto& q = engine.queue();
            ASSERT_TRUE(q.push({OpKind::Add, {1, 2, 1.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {2, 1, 1.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {1, 2, 1.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {2, 3, 1.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {1, 3, 1.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {7, 7, 1.0}}));  // self-loop
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 1.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{1, 2}, {2, 3}, {1, 3}}));
        if (comm.rank() == 0) {
            EXPECT_EQ(tri.ops_skipped(), 1u);
        }

        // Epoch 2: duplicate MASKs of the same edge, one direction reversed
        // — removed exactly once (remove_edges driven from the delta).
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {2, 1, 0.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {1, 2, 0.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 0.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{2, 3}, {1, 3}}));
        comm.barrier();
    });
}

TEST(StreamDrivenTriangles, InsertThenDeleteSameEdgeInOneEpoch) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        Engine engine(A, fast_epochs());
        hub.attach(engine);

        // Epoch 1: {4,5} inserted and deleted within the epoch nets to
        // nothing; the unrelated {5,6} survives.
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {4, 5, 1.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {4, 5, 0.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {5, 6, 1.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 0.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{5, 6}}));

        // Epoch 2: completing the triangle counts it.
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {4, 5, 1.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {4, 6, 1.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 1.0);

        // Epoch 3: on a LIVE edge, same-epoch ADD + MASK nets to a delete
        // (the engine applies the epoch's ADDs before its MASKs).
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {4, 5, 1.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {4, 5, 0.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 0.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{5, 6}, {4, 6}}));
        comm.barrier();
    });
}

TEST(StreamDrivenTriangles, ReAddOfLiveEdgeAndMaskOfAbsentEdgeAreNoops) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        Engine engine(A, fast_epochs());
        hub.attach(engine);

        if (comm.rank() == 0) {
            for (auto [i, j] : {std::pair<index_t, index_t>{1, 2},
                                {2, 3},
                                {1, 3}}) {
                ASSERT_TRUE(engine.queue().push({OpKind::Add, {i, j, 1.0}}));
            }
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 1.0);

        // Re-ADD of a live edge (from a DIFFERENT rank's queue) and a MASK
        // of an edge that was never inserted: both dissolve in the
        // membership round; the adjacency stays a 0/1 matrix.
        if (comm.rank() == 1) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {2, 1, 1.0}}));
        }
        if (comm.rank() == 2) {
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {8, 9, 0.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_DOUBLE_EQ(tri.snapshot(), 1.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{1, 2}, {2, 3}, {1, 3}}));
        comm.barrier();
    });
}

TEST(StreamDrivenDistances, ApplyDecreasesFromEpochDeltas) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        const std::vector<index_t> sources = {0, 2};
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& dist =
            hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);
        Engine engine(A, fast_epochs());
        hub.attach(engine);

        // Epoch 1: duplicate ADD of (0,1) with a worse weight loses to min;
        // (1,3) is not incident to a source and must not appear in D.
        if (comm.rank() == 0) {
            auto& q = engine.queue();
            ASSERT_TRUE(q.push({OpKind::Add, {0, 1, 5.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {0, 1, 7.0}}));
            ASSERT_TRUE(q.push({OpKind::Add, {2, 3, 2.5}}));
            ASSERT_TRUE(q.push({OpKind::Add, {1, 3, 1.0}}));
        }
        EXPECT_TRUE(engine.pump());
        test::expect_matches_exactly(dist.product().distances(),
                                     CoordMap{{{0, 1}, 5.0}, {{1, 3}, 2.5}});
        EXPECT_NEAR(dist.snapshot(), 7.5, 1e-12);
        EXPECT_EQ(dist.reached_pairs(), 2u);

        // Epoch 2: a genuine decrease, an attempted increase (loses to the
        // already-stored minimum), and a new source edge from another rank.
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {0, 1, 2.0}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {0, 1, 9.0}}));
        }
        if (comm.rank() == 3) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {2, 4, 1.5}}));
        }
        EXPECT_TRUE(engine.pump());
        test::expect_matches_exactly(
            dist.product().distances(),
            CoordMap{{{0, 1}, 2.0}, {{1, 3}, 2.5}, {{1, 4}, 1.5}});
        EXPECT_NEAR(dist.snapshot(), 6.0, 1e-12);
        EXPECT_EQ(dist.reached_pairs(), 3u);

        // Epoch 3: MERGEs and MASKs are outside the (min,+) algebra — they
        // are counted, and the maintained product is untouched even though
        // the epoch carried no ADD at all.
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Merge, {0, 1, 0.5}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Mask, {2, 3, 0.0}}));
        }
        EXPECT_TRUE(engine.pump());
        test::expect_matches_exactly(
            dist.product().distances(),
            CoordMap{{{0, 1}, 2.0}, {{1, 3}, 2.5}, {{1, 4}, 1.5}});
        EXPECT_NEAR(dist.snapshot(), 6.0, 1e-12);
        if (comm.rank() == 0) {
            EXPECT_EQ(dist.ops_skipped(), 2u);
        }
        comm.barrier();
    });
}

TEST(StreamDrivenHub, LocallyEmptyDeltasAndGloballyEmptyEpochs) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        const std::vector<index_t> sources = {1};
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        auto& dist =
            hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);
        Engine engine(A, fast_epochs());
        hub.attach(engine);

        // Only rank 0 contributes; every other rank's delta is empty, yet
        // all ranks run the hook and publish identical derived values.
        if (comm.rank() == 0) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {1, 2, 3.0}}));
        }
        EXPECT_TRUE(engine.pump());
        EXPECT_EQ(hub.stats(0).epochs, 1u);
        EXPECT_EQ(hub.stats(1).epochs, 1u);
        EXPECT_DOUBLE_EQ(tri.snapshot(), 0.0);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{1, 2}}));
        EXPECT_NEAR(dist.snapshot(), 3.0, 1e-12);

        // A globally empty epoch (deadline fires, nothing drained anywhere)
        // never reaches the hub.
        EXPECT_TRUE(engine.pump());
        EXPECT_EQ(hub.stats(0).epochs, 1u);
        EXPECT_EQ(engine.stats().applied_epochs, 1u);

        // A fully empty delta fed directly is a published no-op (the
        // collective rounds still run on every rank).
        stream::EpochDelta<double> empty;
        tri.on_epoch(empty);
        dist.on_epoch(empty);
        EXPECT_DOUBLE_EQ(tri.snapshot(), 0.0);
        EXPECT_NEAR(dist.snapshot(), 3.0, 1e-12);
        test::expect_matches_exactly(tri.counter().adjacency(),
                                     undirected({{1, 2}}));
        comm.barrier();
    });
}

}  // namespace
