// The competitor baselines must be *correct* (identical content to the
// dynamic data structure after the same batches) — they only differ in work.
#include <gtest/gtest.h>

#include <random>

#include "baseline/static_rebuild.hpp"
#include "core/update_ops.hpp"
#include "../core/dist_test_utils.hpp"

namespace {

using namespace dsg;
using baseline::PreallocCsrMatrix;
using baseline::SortedTupleMatrix;
using baseline::StaticRebuildMatrix;
using core::ProcessGrid;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::PlusTimes;
using sparse::Triple;
using test::CoordMap;
using test::random_triples;

CoordMap gather_rebuild(const StaticRebuildMatrix<double>& m) {
    CoordMap out;
    for (const auto& t : m.gather_global()) out[{t.row, t.col}] = t.value;
    return out;
}

class BaselineP : public ::testing::TestWithParam<int> {};

TEST_P(BaselineP, StaticRebuildMatchesDynamicAfterInsertions) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(50 + static_cast<std::uint64_t>(c.rank()));
        const index_t n = 32;
        auto base = random_triples(rng, n, n, 200);
        StaticRebuildMatrix<double> stat(grid, n, n);
        stat.construct<PlusTimes<double>>(base);
        auto dyn = core::build_dynamic_matrix<PlusTimes<double>>(grid, n, n, base);

        for (int b = 0; b < 3; ++b) {
            auto batch = random_triples(rng, n, n, 50);
            stat.insert_batch<PlusTimes<double>>(batch);
            auto U = core::build_update_matrix(grid, n, n, batch);
            core::add_update<PlusTimes<double>>(dyn, U);
            const auto sm = gather_rebuild(stat);
            const auto dm = test::as_map(dyn.gather_global());
            ASSERT_EQ(sm.size(), dm.size());
            for (const auto& [coord, v] : dm) {
                auto it = sm.find(coord);
                ASSERT_NE(it, sm.end());
                EXPECT_NEAR(it->second, v, 1e-9);
            }
        }
    });
}

TEST_P(BaselineP, StaticRebuildUpdateOverwrites) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 10;
        std::vector<Triple<double>> base{{1, 1, 5.0}, {2, 3, 6.0}};
        StaticRebuildMatrix<double> m(grid, n, n);
        m.construct<PlusTimes<double>>(
            c.rank() == 0 ? base : std::vector<Triple<double>>{});
        m.update_batch(c.rank() == 0
                           ? std::vector<Triple<double>>{{1, 1, 9.0}, {4, 4, 1.0}}
                           : std::vector<Triple<double>>{});
        auto got = gather_rebuild(m);
        EXPECT_EQ(got.size(), 3u);
        EXPECT_EQ((got[{1, 1}]), 9.0);
        EXPECT_EQ((got[{2, 3}]), 6.0);
        EXPECT_EQ((got[{4, 4}]), 1.0);
    });
}

TEST_P(BaselineP, StaticRebuildDeleteRemoves) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 10;
        std::vector<Triple<double>> base{{1, 1, 5.0}, {2, 3, 6.0}, {7, 8, 7.0}};
        StaticRebuildMatrix<double> m(grid, n, n);
        m.construct<PlusTimes<double>>(
            c.rank() == 0 ? base : std::vector<Triple<double>>{});
        m.delete_batch(c.rank() == 0
                           ? std::vector<Triple<double>>{{2, 3, 0.0}, {9, 9, 0.0}}
                           : std::vector<Triple<double>>{});
        auto got = gather_rebuild(m);
        EXPECT_EQ(got.size(), 2u);
        EXPECT_TRUE(got.count({1, 1}));
        EXPECT_TRUE(got.count({7, 8}));
    });
}

TEST_P(BaselineP, SortedTupleMatrixStaysSortedAndCorrect) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(60 + static_cast<std::uint64_t>(c.rank()));
        const index_t n = 24;
        SortedTupleMatrix<double> m(grid, n, n);
        m.construct<PlusTimes<double>>(random_triples(rng, n, n, 100));
        for (int b = 0; b < 2; ++b)
            m.insert_batch<PlusTimes<double>>(random_triples(rng, n, n, 40));
        // Locally sorted row-major, no duplicate coordinates.
        const auto& es = m.local_entries();
        for (std::size_t x = 1; x < es.size(); ++x)
            EXPECT_TRUE(std::tie(es[x - 1].row, es[x - 1].col) <
                        std::tie(es[x].row, es[x].col));
    });
}

TEST_P(BaselineP, PreallocCsrMatchesDynamicAfterInsertions) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(70 + static_cast<std::uint64_t>(c.rank()));
        const index_t n = 20;
        auto base = random_triples(rng, n, n, 120);
        PreallocCsrMatrix<double> pet(grid, n, n);
        pet.construct<PlusTimes<double>>(base);
        auto dyn = core::build_dynamic_matrix<PlusTimes<double>>(grid, n, n, base);
        auto batch = random_triples(rng, n, n, 30);
        pet.insert_batch<PlusTimes<double>>(batch);
        auto U = core::build_update_matrix(grid, n, n, batch);
        core::add_update<PlusTimes<double>>(dyn, U);

        // Compare local blocks entry-by-entry.
        CoordMap pm;
        pet.local_csr().for_each(
            [&](index_t i, index_t j, double v) { pm[{i, j}] = v; });
        CoordMap dm;
        dyn.local().for_each(
            [&](index_t i, index_t j, double v) { dm[{i, j}] = v; });
        ASSERT_EQ(pm.size(), dm.size());
        for (const auto& [coord, v] : dm) {
            auto it = pm.find(coord);
            ASSERT_NE(it, pm.end());
            EXPECT_NEAR(it->second, v, 1e-9);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, BaselineP, ::testing::Values(1, 4, 9));

}  // namespace
