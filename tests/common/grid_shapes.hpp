// The grid-shape test matrix: one parameterized sweep shared by the core,
// stream, persist, and serve suites.
//
// Each GridCase names a process-grid shape (square AND rectangular) plus a
// comm mode (blocking collectives vs the post/wait path). Suites adopt the
// sweep with
//
//   class MySuiteG : public ::testing::TestWithParam<dsg::test::GridCase> {};
//   INSTANTIATE_TEST_SUITE_P(GridShapes, MySuiteG,
//                            ::testing::ValuesIn(dsg::test::grid_shape_cases()),
//                            dsg::test::grid_case_name);
//
// and construct the grid inside run_world with make_grid(comm, GetParam()).
// The default sweep covers p in {1, 2, 3, 4, 6} — shapes 1x1, 1x2, 1x3,
// 2x2, 2x3 — in both comm modes; configuring with -DDSG_GRID_SHAPES=extended
// adds larger shapes (3x3, 2x4, 1x6, 3x4) for the dedicated CI job.
#pragma once

#include <gtest/gtest.h>

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/process_grid.hpp"
#include "par/comm.hpp"

namespace dsg::test {

struct GridCase {
    int rows = 1;
    int cols = 1;
    par::CommMode comm_mode = par::CommMode::Sync;

    [[nodiscard]] int p() const { return rows * cols; }
};

inline std::ostream& operator<<(std::ostream& os, const GridCase& c) {
    return os << c.rows << "x" << c.cols
              << (c.comm_mode == par::CommMode::Async ? " async" : " sync");
}

/// gtest parameter-name generator: "2x3_async" etc.
inline std::string grid_case_name(
    const ::testing::TestParamInfo<GridCase>& info) {
    const GridCase& c = info.param;
    return std::to_string(c.rows) + "x" + std::to_string(c.cols) +
           (c.comm_mode == par::CommMode::Async ? "_async" : "_sync");
}

/// The shapes of the sweep, without comm modes (for suites where the comm
/// mode is exercised separately or not at all).
inline std::vector<std::pair<int, int>> grid_shapes() {
    return {
        {1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3},
#ifdef DSG_GRID_SHAPES_EXTENDED
        {3, 3}, {2, 4}, {1, 6}, {3, 4},
#endif
    };
}

/// The full sweep: every shape in both comm modes.
inline std::vector<GridCase> grid_shape_cases() {
    std::vector<GridCase> out;
    for (const auto& [r, c] : grid_shapes())
        for (const par::CommMode m :
             {par::CommMode::Sync, par::CommMode::Async})
            out.push_back({r, c, m});
    return out;
}

/// One case per shape, sync mode only (for suites that assert sync/async
/// equivalence themselves and only need the shape axis).
inline std::vector<GridCase> grid_shape_cases_sync_only() {
    std::vector<GridCase> out;
    for (const auto& [r, c] : grid_shapes())
        out.push_back({r, c, par::CommMode::Sync});
    return out;
}

/// Constructs the case's grid (explicit shape override, so rectangular
/// worlds like p = 6 get the exact rows x cols the case names, not the
/// auto-factored default).
inline core::ProcessGrid make_grid(par::Comm& comm, const GridCase& c) {
    return core::ProcessGrid(comm, c.rows, c.cols);
}

}  // namespace dsg::test
