// Shared helpers for distributed tests: random inputs, serial reference
// SpGEMM over a semiring, and map-based comparison of distributed results.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "core/dist_matrix.hpp"
#include "sparse/coo.hpp"
#include "sparse/semiring.hpp"

namespace dsg::test {

using core::DistDynamicMatrix;
using sparse::index_t;
using sparse::Triple;

using CoordMap = std::map<std::pair<index_t, index_t>, double>;

inline std::vector<Triple<double>> random_triples(std::mt19937_64& rng,
                                                  index_t rows, index_t cols,
                                                  int count,
                                                  double lo = 1.0,
                                                  double hi = 9.0) {
    std::uniform_real_distribution<double> val(lo, hi);
    std::vector<Triple<double>> ts;
    ts.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        ts.push_back({static_cast<index_t>(rng() % rows),
                      static_cast<index_t>(rng() % cols), val(rng)});
    return ts;
}

inline CoordMap as_map(const std::vector<Triple<double>>& ts) {
    CoordMap m;
    for (const auto& t : ts) m[{t.row, t.col}] = t.value;
    return m;
}

/// Serial reference SpGEMM over a semiring, from coordinate maps.
template <typename SR>
CoordMap reference_multiply(const CoordMap& a, const CoordMap& b) {
    CoordMap out;
    for (const auto& [ca, va] : a)
        for (const auto& [cb, vb] : b) {
            if (ca.second != cb.first) continue;
            const double term = SR::mul(va, vb);
            auto [it, fresh] = out.try_emplace({ca.first, cb.second}, term);
            if (!fresh) it->second = SR::add(it->second, term);
        }
    return out;
}

/// Applies semiring addition of updates onto a map (A' = A + A*).
template <typename SR>
CoordMap reference_add(CoordMap a, const std::vector<Triple<double>>& updates) {
    for (const auto& t : updates) {
        auto [it, fresh] = a.try_emplace({t.row, t.col}, t.value);
        if (!fresh) it->second = SR::add(it->second, t.value);
    }
    return a;
}

/// Expects the distributed matrix to hold exactly `expect` up to numerically
/// zero extras (dynamic results may retain structural entries whose value is
/// the additive identity of the +,* ring after cancellation).
inline void expect_matches(const DistDynamicMatrix<double>& m,
                           const CoordMap& expect, double tol = 1e-9) {
    const CoordMap got = as_map(m.gather_global());
    for (const auto& [coord, v] : expect) {
        auto it = got.find(coord);
        ASSERT_NE(it, got.end()) << "missing (" << coord.first << ", "
                                 << coord.second << ")";
        EXPECT_NEAR(it->second, v, tol)
            << "(" << coord.first << ", " << coord.second << ")";
    }
    for (const auto& [coord, v] : got) {
        if (expect.find(coord) == expect.end()) {
            EXPECT_NEAR(v, 0.0, tol) << "spurious non-zero (" << coord.first
                                     << ", " << coord.second << ")";
        }
    }
}

/// Strict variant: identical structure and values.
inline void expect_matches_exactly(const DistDynamicMatrix<double>& m,
                                   const CoordMap& expect, double tol = 1e-9) {
    const CoordMap got = as_map(m.gather_global());
    ASSERT_EQ(got.size(), expect.size());
    for (const auto& [coord, v] : expect) {
        auto it = got.find(coord);
        ASSERT_NE(it, got.end());
        EXPECT_NEAR(it->second, v, tol);
    }
}

}  // namespace dsg::test
