// Distributed matrix construction and the update operations of Section IV-A
// (ADD / MERGE / MASK), validated against coordinate-map models.
#include <gtest/gtest.h>

#include <random>

#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::build_update_matrix;
using core::DistDynamicMatrix;
using core::ProcessGrid;
using core::RedistMode;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::MinPlus;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;

class DistMatrixP : public ::testing::TestWithParam<int> {};

TEST_P(DistMatrixP, BuildFromDistributedTuples) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(77 + static_cast<std::uint64_t>(c.rank()));
        auto mine = random_triples(rng, 50, 40, 300);
        // Reference: union of all ranks' tuples with + combination.
        auto all = [&] {
            par::Buffer b;
            par::BufferWriter w(b);
            w.write_vector(mine);
            auto bufs = c.allgather(std::move(b));
            std::vector<Triple<double>> ts;
            for (auto& buf : bufs) {
                par::BufferReader r(buf);
                auto part = r.read_vector<Triple<double>>();
                ts.insert(ts.end(), part.begin(), part.end());
            }
            return ts;
        }();
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, 50, 40, mine);
        CoordMap expect;
        for (const auto& t : all) expect[{t.row, t.col}] += t.value;
        test::expect_matches_exactly(A, expect);
        EXPECT_EQ(A.global_nnz(), expect.size());
    });
}

TEST_P(DistMatrixP, BuildAgreesAcrossRedistributionModes) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(3 + static_cast<std::uint64_t>(c.rank()));
        auto mine = random_triples(rng, 30, 30, 150);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, mine, RedistMode::TwoPhase);
        auto B = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, mine, RedistMode::DirectSort);
        // The modes may combine duplicate coordinates in different orders, so
        // floating-point sums can differ in the last bits.
        const auto ma = as_map(A.gather_global());
        const auto mb = as_map(B.gather_global());
        ASSERT_EQ(ma.size(), mb.size());
        for (const auto& [coord, v] : ma) {
            auto it = mb.find(coord);
            ASSERT_NE(it, mb.end());
            EXPECT_NEAR(it->second, v, 1e-9);
        }
    });
}

TEST_P(DistMatrixP, UpdateMatrixIsHypersparseLocalIndexed) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> mine;
        if (c.rank() == 0)
            mine = {{0, 0, 1.0}, {19, 19, 2.0}, {7, 11, 3.0}};
        auto U = build_update_matrix(grid, 20, 20, mine);
        EXPECT_EQ(U.global_nnz(), 3u);
        // Every local entry lies inside the local block bounds.
        U.local().for_each([&](index_t i, index_t j, double) {
            EXPECT_LT(i, U.shape().local_rows());
            EXPECT_LT(j, U.shape().local_cols());
        });
    });
}

TEST_P(DistMatrixP, AddUpdateInsertsAndCombines) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(11 + static_cast<std::uint64_t>(c.rank()));
        auto base = random_triples(rng, 25, 25, 120);
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, 25, 25, base);
        CoordMap expect = as_map(A.gather_global());

        auto updates = random_triples(rng, 25, 25, 60);
        sparse::combine_duplicates<PlusTimes<double>>(updates);
        auto U = build_update_matrix(grid, 25, 25,
                                     c.rank() == 0 ? updates
                                                   : std::vector<Triple<double>>{});
        // Make the reference deterministic: rank 0's updates only.
        par::Buffer ub;
        par::BufferWriter w(ub);
        w.write_vector(updates);
        auto bufs = c.allgather(std::move(ub));
        par::BufferReader r(bufs[0]);
        auto rank0_updates = r.read_vector<Triple<double>>();
        for (const auto& t : rank0_updates) expect[{t.row, t.col}] += t.value;

        core::add_update<PlusTimes<double>>(A, U);
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(DistMatrixP, MergeUpdateReplacesValues) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> base{
            {0, 0, 5.0}, {3, 4, 6.0}, {9, 9, 7.0}};
        auto A = build_dynamic_matrix<MinPlus<double>>(
            grid, 10, 10, c.rank() == 0 ? base : std::vector<Triple<double>>{});
        // MERGE can *increase* values — impossible via (min,+) addition.
        std::vector<Triple<double>> upd{{0, 0, 99.0}, {5, 5, 1.0}};
        auto U = build_update_matrix(
            grid, 10, 10, c.rank() == 0 ? upd : std::vector<Triple<double>>{});
        core::merge_update(A, U);
        CoordMap expect{{{0, 0}, 99.0}, {{3, 4}, 6.0},
                        {{9, 9}, 7.0},  {{5, 5}, 1.0}};
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(DistMatrixP, MaskDeleteRemovesExactlyMaskedEntries) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(23);  // same seed everywhere: shared base
        auto base = random_triples(rng, 30, 30, 200);
        sparse::combine_duplicates<PlusTimes<double>>(base);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, c.rank() == 0 ? base : std::vector<Triple<double>>{});
        // Delete every third entry (plus one never-present coordinate).
        std::vector<Triple<double>> doomed;
        CoordMap expect;
        for (std::size_t x = 0; x < base.size(); ++x) {
            if (x % 3 == 0)
                doomed.push_back(base[x]);
            else
                expect[{base[x].row, base[x].col}] = base[x].value;
        }
        doomed.push_back({29, 29, 0.0});
        expect.erase({29, 29});
        auto U = build_update_matrix(
            grid, 30, 30,
            c.rank() == 0 ? doomed : std::vector<Triple<double>>{});
        core::mask_delete(A, U);
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(DistMatrixP, ThreadedApplicationMatchesSequential) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        par::ThreadPool pool(3);
        std::mt19937_64 rng(31 + static_cast<std::uint64_t>(c.rank()));
        auto mine = random_triples(rng, 40, 40, 400);
        auto seq = build_dynamic_matrix<PlusTimes<double>>(
            grid, 40, 40, mine, RedistMode::TwoPhase, nullptr);
        auto par_built = build_dynamic_matrix<PlusTimes<double>>(
            grid, 40, 40, mine, RedistMode::TwoPhase, &pool);
        EXPECT_EQ(as_map(seq.gather_global()), as_map(par_built.gather_global()));

        auto upd = random_triples(rng, 40, 40, 100);
        auto U = build_update_matrix(grid, 40, 40, upd);
        core::add_update<PlusTimes<double>>(seq, U);
        core::add_update<PlusTimes<double>>(par_built, U, &pool);
        EXPECT_EQ(as_map(seq.gather_global()), as_map(par_built.gather_global()));
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, DistMatrixP, ::testing::Values(1, 4, 9));

}  // namespace
