// Algorithm 1 (algebraic dynamic SpGEMM): the maintained product equals a
// from-scratch recomputation after arbitrary sequences of algebraic updates,
// over (+,*) and (min,+); COMPUTEPATTERN produces a superset structure with
// correct Bloom bits; communication volume beats static SUMMA for small
// batches.
#include <gtest/gtest.h>

#include <random>

#include "common/grid_shapes.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::build_update_matrix;
using core::compute_pattern;
using core::DistDynamicMatrix;
using core::dynamic_spgemm_algebraic;
using core::ProcessGrid;
using core::summa_multiply;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::MinPlus;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;
using test::reference_add;
using test::reference_multiply;

using dsg::test::GridCase;

class DynSpgemmP : public ::testing::TestWithParam<GridCase> {};

TEST_P(DynSpgemmP, InsertionsIntoAMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(100);
        const index_t n = 26, kk = 22, m = 24;
        auto ta = random_triples(rng, n, kk, 140);
        auto tb = random_triples(rng, kk, m, 180);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto empty_unless0 = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, kk,
                                                         empty_unless0(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, kk, m,
                                                         empty_unless0(tb));
        auto C = summa_multiply<PlusTimes<double>>(A, B);

        CoordMap am = as_map(ta);
        const CoordMap bm = as_map(tb);
        // Three batches of insertions into A (B stays static).
        for (int batch = 0; batch < 3; ++batch) {
            auto upd = random_triples(rng, n, kk, 25);
            sparse::combine_duplicates<PlusTimes<double>>(upd);
            auto Astar = build_update_matrix(grid, n, kk, empty_unless0(upd));
            core::DistDcsr<double> Bstar(grid, kk, m);  // empty
            // Dynamic update of C, then of A itself.
            dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar, dopts);
            core::add_update<PlusTimes<double>>(A, Astar);
            am = reference_add<PlusTimes<double>>(am, upd);
            test::expect_matches(
                C, reference_multiply<PlusTimes<double>>(am, bm));
        }
    });
}

TEST_P(DynSpgemmP, SimultaneousUpdatesOfBothOperands) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(200);
        const index_t n = 20;
        auto ta = random_triples(rng, n, n, 120);
        auto tb = random_triples(rng, n, n, 120);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto C = summa_multiply<PlusTimes<double>>(A, B);
        CoordMap am = as_map(ta), bm = as_map(tb);

        for (int batch = 0; batch < 3; ++batch) {
            auto ua = random_triples(rng, n, n, 20, -4.0, 4.0);
            auto ub = random_triples(rng, n, n, 20, -4.0, 4.0);
            sparse::combine_duplicates<PlusTimes<double>>(ua);
            sparse::combine_duplicates<PlusTimes<double>>(ub);
            auto Astar = build_update_matrix(grid, n, n, feed(ua));
            auto Bstar = build_update_matrix(grid, n, n, feed(ub));
            // C' = C + A* B' + A B': apply B's update *first* so Bprime is
            // available, keep A pre-update for the A B* term.
            core::add_update<PlusTimes<double>>(B, Bstar);
            dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar, dopts);
            core::add_update<PlusTimes<double>>(A, Astar);
            am = reference_add<PlusTimes<double>>(am, ua);
            bm = reference_add<PlusTimes<double>>(bm, ub);
            test::expect_matches(
                C, reference_multiply<PlusTimes<double>>(am, bm));
        }
    });
}

TEST_P(DynSpgemmP, RingDeletionsViaNegativeUpdates) {
    // In a ring, deleting a_{ij} is the algebraic update a* = -a_{ij}.
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(300);
        const index_t n = 18;
        auto ta = random_triples(rng, n, n, 100);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        auto tb = random_triples(rng, n, n, 100);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto C = summa_multiply<PlusTimes<double>>(A, B);

        // Cancel one third of A's entries.
        std::vector<Triple<double>> negs;
        CoordMap am = as_map(ta);
        for (std::size_t x = 0; x < ta.size(); x += 3) {
            negs.push_back({ta[x].row, ta[x].col, -ta[x].value});
            am.erase({ta[x].row, ta[x].col});
        }
        auto Astar = build_update_matrix(grid, n, n, feed(negs));
        core::DistDcsr<double> Bstar(grid, n, n);
        dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar, dopts);
        core::add_update<PlusTimes<double>>(A, Astar);
        test::expect_matches(C,
                             reference_multiply<PlusTimes<double>>(am, as_map(tb)));
    });
}

TEST_P(DynSpgemmP, MinPlusDecreasingUpdatesAreAlgebraic) {
    // (min,+): inserting new entries or decreasing existing ones is algebraic
    // because add = min can only keep or lower values.
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(400);
        const index_t n = 16;
        auto ta = random_triples(rng, n, n, 80, 5.0, 9.0);
        auto tb = random_triples(rng, n, n, 80, 5.0, 9.0);
        sparse::combine_duplicates<MinPlus<double>>(ta);
        sparse::combine_duplicates<MinPlus<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(tb));
        auto C = summa_multiply<MinPlus<double>>(A, B);
        CoordMap am = as_map(ta);
        for (int batch = 0; batch < 2; ++batch) {
            auto upd = random_triples(rng, n, n, 15, 0.5, 4.0);  // small: wins min
            sparse::combine_duplicates<MinPlus<double>>(upd);
            auto Astar = build_update_matrix(grid, n, n, feed(upd));
            core::DistDcsr<double> Bstar(grid, n, n);
            dynamic_spgemm_algebraic<MinPlus<double>>(C, A, Astar, B, Bstar, dopts);
            core::add_update<MinPlus<double>>(A, Astar);
            am = reference_add<MinPlus<double>>(am, upd);
            // MinPlus result entries equal the recomputation exactly (no
            // cancellation concerns), but C may hold extra structural
            // entries equal to older, larger path weights... it cannot:
            // min-merging only lowers. Compare exactly on values where
            // reference has entries.
            auto expect = reference_multiply<MinPlus<double>>(am, as_map(tb));
            auto got = as_map(C.gather_global());
            for (const auto& [coord, v] : expect) {
                auto it = got.find(coord);
                ASSERT_NE(it, got.end());
                EXPECT_NEAR(it->second, v, 1e-9);
            }
            // Superset direction: every stored entry has a reference value.
            for (const auto& [coord, v] : got)
                EXPECT_TRUE(expect.count(coord)) << coord.first << ","
                                                 << coord.second;
        }
    });
}

TEST_P(DynSpgemmP, PatternIsSupersetWithCorrectBloomBits) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(500);
        const index_t n = 22;
        auto ta = random_triples(rng, n, n, 90);
        auto tb = random_triples(rng, n, n, 90);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto upd = random_triples(rng, n, n, 20);
        sparse::combine_duplicates<PlusTimes<double>>(upd);
        auto Astar = build_update_matrix(grid, n, n, feed(upd));
        core::DistDcsr<double> Bstar(grid, n, n);

        auto Cstar = compute_pattern(A, Astar, B, Bstar, dopts);
        std::map<std::pair<index_t, index_t>, std::uint64_t> pat;
        for (const auto& t : Cstar.gather_global()) pat[{t.row, t.col}] = t.value;

        // Reference: C* = A* B (B' == B since Bstar empty).
        const auto am = as_map(upd);
        const auto bm = as_map(tb);
        for (const auto& [ca, va] : am)
            for (const auto& [cb, vb] : bm) {
                if (ca.second != cb.first) continue;
                auto it = pat.find({ca.first, cb.second});
                ASSERT_NE(it, pat.end()) << "pattern misses a changed cell";
                EXPECT_NE(it->second & sparse::bloom_bit(ca.second), 0u);
            }
        // Exactness of the structure (no Y term here): every pattern entry is
        // explained by some update row.
        auto cstar_ref = reference_multiply<PlusTimes<double>>(am, bm);
        for (const auto& [coord, bits] : pat)
            EXPECT_TRUE(cstar_ref.count(coord));
    });
}

TEST_P(DynSpgemmP, DynamicBeatsSummaOnCommunicationVolume) {
    // The paper's central claim, checked on the accounting layer: updating
    // C with a small A* moves far fewer bytes than a static SUMMA of A'B.
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        if (c.size() == 1) GTEST_SKIP();  // no communication either way
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(600);
        const index_t n = 64;
        auto ta = random_triples(rng, n, n, 2000);
        auto tb = random_triples(rng, n, n, 2000);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto C = summa_multiply<PlusTimes<double>>(A, B);

        auto upd = random_triples(rng, n, n, 16);
        sparse::combine_duplicates<PlusTimes<double>>(upd);
        auto Astar = build_update_matrix(grid, n, n, feed(upd));
        core::DistDcsr<double> Bstar(grid, n, n);

        c.barrier();
        if (c.rank() == 0) c.stats().reset();
        c.barrier();
        dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar, dopts);
        c.barrier();
        const auto dyn = c.stats().snapshot().total_bytes();

        if (c.rank() == 0) c.stats().reset();
        c.barrier();
        auto C2 = summa_multiply<PlusTimes<double>>(A, B);
        c.barrier();
        const auto stat = c.stats().snapshot().total_bytes();
        if (c.rank() == 0) {
            EXPECT_LT(dyn, stat / 2)
                << "dynamic moved " << dyn << " bytes, SUMMA " << stat;
        }
    });
}

TEST_P(DynSpgemmP, AsyncIsBitIdenticalToSync) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        std::mt19937_64 rng(700);
        const index_t n = 30;
        auto ta = random_triples(rng, n, n, 150);
        auto tb = random_triples(rng, n, n, 150);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto ua = random_triples(rng, n, n, 30, -4.0, 4.0);
        auto ub = random_triples(rng, n, n, 30, -4.0, 4.0);
        sparse::combine_duplicates<PlusTimes<double>>(ua);
        sparse::combine_duplicates<PlusTimes<double>>(ub);
        auto Astar = build_update_matrix(grid, n, n, feed(ua));
        auto Bstar = build_update_matrix(grid, n, n, feed(ub));

        auto run_one = [&](par::CommMode mode) {
            auto C = summa_multiply<PlusTimes<double>>(A, B);
            core::DynamicSpgemmOptions o;
            o.comm_mode = mode;
            dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar,
                                                        o);
            return as_map(C.gather_global());
        };
        // The async schedule posts the same slab exchange and reduces in the
        // same round order, so the maintained product matches bit for bit.
        EXPECT_EQ(run_one(par::CommMode::Sync), run_one(par::CommMode::Async));
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, DynSpgemmP,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
