// Degenerate shapes and adversarial configurations: dimensions smaller than
// the grid (empty blocks), single-row/column matrices, updates to empty
// matrices, failure injection inside distributed phases.
#include <gtest/gtest.h>

#include <random>

#include "core/dynamic_spgemm.hpp"
#include "core/general_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::build_update_matrix;
using core::DistDcsr;
using core::DistDynamicMatrix;
using core::ProcessGrid;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::reference_multiply;

TEST(EdgeCases, DimensionSmallerThanGridLeavesEmptyBlocks) {
    // n = 3 on a 4x4 grid: the last grid row/column own zero indices.
    run_world(16, [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> ts{{0, 0, 1.0}, {1, 2, 2.0}, {2, 1, 3.0}};
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 3, 3, c.rank() == 0 ? ts : std::vector<Triple<double>>{});
        EXPECT_EQ(A.global_nnz(), 3u);
        auto C = core::summa_multiply<PlusTimes<double>>(A, A);
        test::expect_matches(
            C, reference_multiply<PlusTimes<double>>(as_map(ts), as_map(ts)));

        // Dynamic update through the same degenerate distribution.
        auto U = build_update_matrix(
            grid, 3, 3,
            c.rank() == 0 ? std::vector<Triple<double>>{{2, 2, 5.0}}
                          : std::vector<Triple<double>>{});
        DistDcsr<double> Bstar(grid, 3, 3);
        core::dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, U, A, Bstar);
        core::add_update<PlusTimes<double>>(A, U);
        auto am = as_map(ts);
        am[{2, 2}] = 5.0;
        // C' = (A + A*) A_old here because B stayed the old A; rebuild the
        // expectation accordingly: C + A* A_old.
        auto expect = reference_multiply<PlusTimes<double>>(as_map(ts), as_map(ts));
        CoordMap astar{{{2, 2}, 5.0}};
        for (const auto& [coord, v] :
             reference_multiply<PlusTimes<double>>(astar, as_map(ts)))
            expect[coord] += v;
        test::expect_matches(C, expect);
    });
}

TEST(EdgeCases, OneByOneMatrix) {
    run_world(4, [&](Comm& c) {
        ProcessGrid grid(c);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 1, 1,
            c.rank() == 0 ? std::vector<Triple<double>>{{0, 0, 3.0}}
                          : std::vector<Triple<double>>{});
        auto C = core::summa_multiply<PlusTimes<double>>(A, A);
        test::expect_matches(C, CoordMap{{{0, 0}, 9.0}});
    });
}

TEST(EdgeCases, SingleRowTimesSingleColumn) {
    run_world(4, [&](Comm& c) {
        ProcessGrid grid(c);
        // (1 x 8) * (8 x 1): the output is a single scalar; every grid rank
        // except one holds empty blocks of some operand.
        std::vector<Triple<double>> row;
        std::vector<Triple<double>> col;
        for (index_t k = 0; k < 8; ++k) {
            row.push_back({0, k, static_cast<double>(k + 1)});
            col.push_back({k, 0, 1.0});
        }
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 1, 8, c.rank() == 0 ? row : std::vector<Triple<double>>{});
        auto B = build_dynamic_matrix<PlusTimes<double>>(
            grid, 8, 1, c.rank() == 0 ? col : std::vector<Triple<double>>{});
        auto C = core::summa_multiply<PlusTimes<double>>(A, B);
        test::expect_matches(C, CoordMap{{{0, 0}, 36.0}});
    });
}

TEST(EdgeCases, UpdatesAgainstCompletelyEmptyMatrices) {
    run_world(9, [&](Comm& c) {
        ProcessGrid grid(c);
        DistDynamicMatrix<double> A(grid, 12, 12);
        DistDynamicMatrix<double> B(grid, 12, 12);
        DistDynamicMatrix<double> C(grid, 12, 12);
        DistDcsr<double> empty(grid, 12, 12);
        // Everything empty: must be a clean no-op on every rank.
        core::dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, empty, B, empty);
        EXPECT_EQ(C.global_nnz(), 0u);
        auto pattern = core::compute_pattern(A, empty, B, empty);
        EXPECT_EQ(pattern.global_nnz(), 0u);
    });
}

TEST(EdgeCases, RectangularChainAcrossDifferentShapes) {
    run_world(4, [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(5);
        auto ta = test::random_triples(rng, 9, 17, 40);
        auto tb = test::random_triples(rng, 17, 5, 30);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, 9, 17, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, 17, 5, feed(tb));
        auto C = core::summa_multiply<PlusTimes<double>>(A, B);
        test::expect_matches(
            C, reference_multiply<PlusTimes<double>>(as_map(ta), as_map(tb)));
        // Dynamic round over the rectangular shapes.
        auto upd = test::random_triples(rng, 9, 17, 10);
        sparse::combine_duplicates<PlusTimes<double>>(upd);
        auto Astar = build_update_matrix(grid, 9, 17, feed(upd));
        DistDcsr<double> Bstar(grid, 17, 5);
        core::dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B, Bstar);
        core::add_update<PlusTimes<double>>(A, Astar);
        auto am = test::reference_add<PlusTimes<double>>(as_map(ta), upd);
        test::expect_matches(
            C, reference_multiply<PlusTimes<double>>(am, as_map(tb)));
    });
}

TEST(EdgeCases, ExceptionInsideDistributedPhaseAbortsCleanly) {
    // A rank failing mid-algorithm must not hang the world.
    EXPECT_THROW(
        run_world(4,
                  [&](Comm& c) {
                      ProcessGrid grid(c);
                      DistDynamicMatrix<double> A(grid, 8, 8);
                      if (c.rank() == 3)
                          throw std::runtime_error("injected failure");
                      auto C = core::summa_multiply<PlusTimes<double>>(A, A);
                  }),
        std::runtime_error);
    // And the process is still healthy afterwards.
    run_world(4, [&](Comm& c) {
        const int sum =
            c.allreduce<int>(1, [](int a, int b) { return a + b; });
        EXPECT_EQ(sum, 4);
    });
}

TEST(EdgeCases, CorruptWireBufferThrowsInsteadOfCrashing) {
    par::Buffer junk(13, std::byte{0x5a});
    EXPECT_THROW((void)sparse::Dcsr<double>::deserialize(junk),
                 std::out_of_range);
}

}  // namespace
