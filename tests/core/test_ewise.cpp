// Distributed element-wise operations against coordinate-map models.
#include <gtest/gtest.h>

#include <random>

#include "core/ewise.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::ProcessGrid;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;

class EwiseP : public ::testing::TestWithParam<int> {};

TEST_P(EwiseP, AddUnionsStructures) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(1);
        auto ta = random_triples(rng, 20, 20, 60);
        auto tb = random_triples(rng, 20, 20, 60);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, 20, 20, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, 20, 20, feed(tb));
        core::ewise_add(A, B, [](double x, double y) { return x + y; });
        CoordMap expect = as_map(ta);
        for (const auto& t : tb) expect[{t.row, t.col}] += t.value;
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(EwiseP, ApplyTransformsValuesInPlace) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> ts{{0, 1, 2.0}, {5, 5, 3.0}, {9, 0, 4.0}};
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 10, 10, c.rank() == 0 ? ts : std::vector<Triple<double>>{});
        // Value depends on global coordinates: catches local/global mixups.
        core::ewise_apply(A, [](index_t i, index_t j, double v) {
            return v + 100.0 * static_cast<double>(i) +
                   static_cast<double>(j);
        });
        CoordMap expect;
        for (const auto& t : ts)
            expect[{t.row, t.col}] =
                t.value + 100.0 * static_cast<double>(t.row) +
                static_cast<double>(t.col);
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(EwiseP, PruneDropsPredicatedEntries) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(2);
        auto ts = random_triples(rng, 25, 25, 120);
        sparse::combine_duplicates<PlusTimes<double>>(ts);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 25, 25, c.rank() == 0 ? ts : std::vector<Triple<double>>{});
        core::ewise_prune(A, [](index_t, index_t, double v) { return v > 5.0; });
        CoordMap expect;
        for (const auto& t : ts)
            if (t.value <= 5.0) expect[{t.row, t.col}] = t.value;
        test::expect_matches_exactly(A, expect);
    });
}

TEST_P(EwiseP, PruneNumericalZerosAfterCancellation) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> ts{{1, 1, 5.0}, {2, 2, 7.0}};
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 5, 5, c.rank() == 0 ? ts : std::vector<Triple<double>>{});
        // Ring deletion leaves a structural entry with numerical zero...
        auto U = core::build_update_matrix(
            grid, 5, 5,
            c.rank() == 0 ? std::vector<Triple<double>>{{1, 1, -5.0}}
                          : std::vector<Triple<double>>{});
        core::add_update<PlusTimes<double>>(A, U);
        EXPECT_EQ(A.global_nnz(), 2u);  // still structurally present
        // ...which prune removes.
        core::ewise_prune(A, [](index_t, index_t, double v) {
            return std::abs(v) < 1e-12;
        });
        EXPECT_EQ(A.global_nnz(), 1u);
        test::expect_matches_exactly(A, CoordMap{{{2, 2}, 7.0}});
    });
}

TEST_P(EwiseP, MaskKeepIntersects) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::vector<Triple<double>> ta{{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}};
        std::vector<Triple<double>> tm{{1, 1, 9.0}, {3, 3, 9.0}};
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, 5, 5, feed(ta));
        auto M = build_dynamic_matrix<PlusTimes<double>>(grid, 5, 5, feed(tm));
        core::ewise_mask_keep(A, M);
        test::expect_matches_exactly(A, CoordMap{{{1, 1}, 2.0}});
    });
}

TEST_P(EwiseP, ReduceFoldsGlobally) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        std::mt19937_64 rng(3);
        auto ts = random_triples(rng, 30, 30, 100);
        sparse::combine_duplicates<PlusTimes<double>>(ts);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, c.rank() == 0 ? ts : std::vector<Triple<double>>{});
        const double sum = core::ewise_reduce(
            A, 0.0,
            [](double acc, index_t, index_t, double v) { return acc + v; },
            [](double a, double b) { return a + b; });
        double expect = 0;
        for (const auto& t : ts) expect += t.value;
        EXPECT_NEAR(sum, expect, 1e-9);

        const double mx = core::ewise_reduce(
            A, -1.0,
            [](double acc, index_t, index_t, double v) {
                return std::max(acc, v);
            },
            [](double a, double b) { return std::max(a, b); });
        double expect_mx = -1.0;
        for (const auto& t : ts) expect_mx = std::max(expect_mx, t.value);
        EXPECT_EQ(mx, expect_mx);
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, EwiseP, ::testing::Values(1, 4, 9));

}  // namespace
