// Algorithm 2 (general updates): after arbitrary update batches — deletions,
// value increases under (min,+), overwrites — the maintained C equals a full
// recomputation, and the maintained Bloom filter F stays a valid superset
// filter. Also checks the Bloom column filter's volume reduction.
#include <gtest/gtest.h>

#include <random>

#include "common/grid_shapes.hpp"
#include "core/general_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::build_update_matrix;
using core::compute_pattern;
using core::DistDcsr;
using core::DistDynamicMatrix;
using core::general_dynamic_spgemm;
using core::GeneralSpgemmOptions;
using core::ProcessGrid;
using core::SummaOptions;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::MinPlus;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;
using test::reference_multiply;
using dsg::test::GridCase;

/// One general-update round: updates A via MERGE (new values) and MASK
/// (deletions), maintains C and F with Algorithm 2, checks against the
/// reference model. B stays static (as in the paper's Fig. 10 experiment),
/// but the machinery exercises the full pattern computation.
template <typename SR>
void run_general_rounds(Comm& c, const GridCase& gc, std::uint64_t seed,
                        int rounds, bool use_bloom) {
    ProcessGrid grid = dsg::test::make_grid(c, gc);
    core::DynamicSpgemmOptions dopts;
    dopts.comm_mode = gc.comm_mode;
    std::mt19937_64 rng(seed);
    const index_t n = 20;
    auto ta = random_triples(rng, n, n, 110, 1.0, 9.0);
    auto tb = random_triples(rng, n, n, 110, 1.0, 9.0);
    sparse::combine_duplicates<SR>(ta);
    sparse::combine_duplicates<SR>(tb);
    auto feed = [&](const std::vector<Triple<double>>& ts) {
        return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
    };
    auto A = build_dynamic_matrix<SR>(grid, n, n, feed(ta));
    auto B = build_dynamic_matrix<SR>(grid, n, n, feed(tb));
    DistDynamicMatrix<double> C(grid, n, n);
    DistDynamicMatrix<std::uint64_t> F(grid, n, n);
    SummaOptions sopts;
    sopts.bloom_out = &F;
    core::summa<SR>(C, A, B, sopts);

    CoordMap am = as_map(ta);
    const CoordMap bm = as_map(tb);
    for (int round = 0; round < rounds; ++round) {
        // General updates on A: overwrite some entries with *larger* values
        // (invalid as (min,+) addition), insert some, delete some.
        std::vector<Triple<double>> merges =
            random_triples(rng, n, n, 10, 20.0, 40.0);
        sparse::combine_duplicates<SR>(merges);
        std::vector<Triple<double>> deletes;
        for (const auto& [coord, v] : am) {
            if (rng() % 7 == 0) deletes.push_back({coord.first, coord.second, v});
            if (deletes.size() >= 8) break;
        }
        // A* structure = changed coordinates (merged + deleted).
        std::vector<Triple<double>> changed = merges;
        changed.insert(changed.end(), deletes.begin(), deletes.end());

        auto Astar = build_update_matrix(grid, n, n, feed(changed));
        DistDcsr<double> Bstar(grid, n, n);

        // Pattern first (uses pre-update A), then apply the updates to A.
        auto Cstar = compute_pattern(A, Astar, B, Bstar, dopts);
        auto Umerge = build_update_matrix(grid, n, n, feed(merges));
        auto Udel = build_update_matrix(grid, n, n, feed(deletes));
        core::merge_update(A, Umerge);
        core::mask_delete(A, Udel);
        for (const auto& t : merges) am[{t.row, t.col}] = t.value;
        for (const auto& t : deletes) am.erase({t.row, t.col});

        GeneralSpgemmOptions gopts;
        gopts.use_bloom_filter = use_bloom;
        gopts.comm_mode = gc.comm_mode;
        auto stats = general_dynamic_spgemm<SR>(C, F, A, B, Cstar, gopts);
        EXPECT_LE(stats.ar_nnz_global, stats.aprime_nnz_global);

        // C must now equal the from-scratch product exactly (min-plus: no
        // cancellation; structure must match because deletions propagate).
        test::expect_matches_exactly(C, reference_multiply<SR>(am, bm));

        // F invariant: every contributing term's bit is present.
        std::map<std::pair<index_t, index_t>, std::uint64_t> fmap;
        for (const auto& t : F.gather_global()) fmap[{t.row, t.col}] = t.value;
        for (const auto& [ca, va] : am)
            for (const auto& [cb, vb] : bm) {
                if (ca.second != cb.first) continue;
                auto it = fmap.find({ca.first, cb.second});
                ASSERT_NE(it, fmap.end());
                EXPECT_NE(it->second & sparse::bloom_bit(ca.second), 0u);
            }
    }
}

class GeneralP : public ::testing::TestWithParam<GridCase> {};

TEST_P(GeneralP, MinPlusGeneralUpdatesMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        run_general_rounds<MinPlus<double>>(c, gc, 900, 3, true);
    });
}

TEST_P(GeneralP, MinPlusWithoutBloomColumnFilter) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        run_general_rounds<MinPlus<double>>(c, gc, 901, 2, false);
    });
}

TEST_P(GeneralP, PlusTimesGeneralUpdatesMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        run_general_rounds<PlusTimes<double>>(c, gc, 902, 2, true);
    });
}

TEST_P(GeneralP, DeleteEverythingEmptiesTheProduct) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        GeneralSpgemmOptions gopts;
        gopts.comm_mode = gc.comm_mode;
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(903);
        const index_t n = 12;
        auto ta = random_triples(rng, n, n, 40);
        sparse::combine_duplicates<MinPlus<double>>(ta);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(ta));
        DistDynamicMatrix<double> C(grid, n, n);
        DistDynamicMatrix<std::uint64_t> F(grid, n, n);
        SummaOptions sopts;
        sopts.bloom_out = &F;
        core::summa<MinPlus<double>>(C, A, B, sopts);

        auto Astar = build_update_matrix(grid, n, n, feed(ta));
        DistDcsr<double> Bstar(grid, n, n);
        auto Cstar = compute_pattern(A, Astar, B, Bstar, dopts);
        core::mask_delete(A, Astar);
        EXPECT_EQ(A.global_nnz(), 0u);
        general_dynamic_spgemm<MinPlus<double>>(C, F, A, B, Cstar, gopts);
        EXPECT_EQ(C.global_nnz(), 0u);
        EXPECT_EQ(F.global_nnz(), 0u);
    });
}

TEST_P(GeneralP, BloomFilterNeverLosesContributions) {
    // With and without the column filter the result is identical; the filter
    // only reduces nnz(A^R).
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        GeneralSpgemmOptions gopts;
        gopts.comm_mode = gc.comm_mode;
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(904);
        const index_t n = 18;
        auto ta = random_triples(rng, n, n, 90);
        auto tb = random_triples(rng, n, n, 90);
        sparse::combine_duplicates<MinPlus<double>>(ta);
        sparse::combine_duplicates<MinPlus<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };

        auto run_one = [&](bool use_bloom) {
            auto A = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(ta));
            auto B = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(tb));
            DistDynamicMatrix<double> C(grid, n, n);
            DistDynamicMatrix<std::uint64_t> F(grid, n, n);
            SummaOptions sopts;
            sopts.bloom_out = &F;
            core::summa<MinPlus<double>>(C, A, B, sopts);
            std::vector<Triple<double>> overwrite{{ta[0].row, ta[0].col, 50.0},
                                                  {ta[1].row, ta[1].col, 60.0}};
            auto Astar = build_update_matrix(grid, n, n, feed(overwrite));
            DistDcsr<double> Bstar(grid, n, n);
            auto Cstar = compute_pattern(A, Astar, B, Bstar, dopts);
            auto U = build_update_matrix(grid, n, n, feed(overwrite));
            core::merge_update(A, U);
            GeneralSpgemmOptions bopts = gopts;
            bopts.use_bloom_filter = use_bloom;
            auto st = general_dynamic_spgemm<MinPlus<double>>(C, F, A, B, Cstar,
                                                              bopts);
            return std::pair(as_map(C.gather_global()), st.ar_nnz_global);
        };
        auto [with_bloom, ar_with] = run_one(true);
        auto [without_bloom, ar_without] = run_one(false);
        EXPECT_EQ(with_bloom, without_bloom);
        EXPECT_LE(ar_with, ar_without);
    });
}

TEST_P(GeneralP, UpdatesOfRightOperandMatchRecompute) {
    // Exercises the A B* term of the pattern and the recomputation with a
    // changed B' — the flow the Fig. 10 experiment does not touch.
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        GeneralSpgemmOptions gopts;
        gopts.comm_mode = gc.comm_mode;
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(905);
        const index_t n = 18;
        auto ta = random_triples(rng, n, n, 90);
        auto tb = random_triples(rng, n, n, 90);
        sparse::combine_duplicates<MinPlus<double>>(ta);
        sparse::combine_duplicates<MinPlus<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<MinPlus<double>>(grid, n, n, feed(tb));
        DistDynamicMatrix<double> C(grid, n, n);
        DistDynamicMatrix<std::uint64_t> F(grid, n, n);
        SummaOptions sopts;
        sopts.bloom_out = &F;
        core::summa<MinPlus<double>>(C, A, B, sopts);

        CoordMap bm = as_map(tb);
        for (int round = 0; round < 2; ++round) {
            // General updates on B: increase some weights, delete some.
            std::vector<Triple<double>> bumps =
                random_triples(rng, n, n, 8, 30.0, 60.0);
            sparse::combine_duplicates<MinPlus<double>>(bumps);
            std::vector<Triple<double>> deletes;
            for (const auto& [coord, v] : bm) {
                if (rng() % 8 == 0)
                    deletes.push_back({coord.first, coord.second, v});
                if (deletes.size() >= 6) break;
            }
            std::vector<Triple<double>> changed = bumps;
            changed.insert(changed.end(), deletes.begin(), deletes.end());
            auto Bstar = build_update_matrix(grid, n, n, feed(changed));
            DistDcsr<double> Astar(grid, n, n);
            // Pattern uses the pre-update A (trivially: A unchanged) and the
            // *post-update* B' per Eq. (1) — so apply B's updates first.
            core::merge_update(B, build_update_matrix(grid, n, n, feed(bumps)));
            core::mask_delete(B, build_update_matrix(grid, n, n, feed(deletes)));
            auto Cstar = compute_pattern(A, Astar, B, Bstar, dopts);
            for (const auto& t : bumps) bm[{t.row, t.col}] = t.value;
            for (const auto& t : deletes) bm.erase({t.row, t.col});

            general_dynamic_spgemm<MinPlus<double>>(C, F, A, B, Cstar, gopts);
            test::expect_matches_exactly(
                C, reference_multiply<MinPlus<double>>(as_map(ta), bm));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, GeneralP,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
