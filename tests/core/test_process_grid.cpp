#include <gtest/gtest.h>

#include <cmath>

#include "core/process_grid.hpp"

namespace {

using dsg::core::BlockPartition;
using dsg::core::ProcessGrid;
using dsg::par::Comm;
using dsg::par::run_world;
using dsg::sparse::index_t;

TEST(BlockPartition, EvenSplit) {
    BlockPartition p(12, 4);
    for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(p.size(b), 3);
        EXPECT_EQ(p.offset(b), 3 * b);
    }
    EXPECT_EQ(p.owner(0), 0);
    EXPECT_EQ(p.owner(11), 3);
    EXPECT_EQ(p.to_local(7), 1);
    EXPECT_EQ(p.to_global(2, 1), 7);
}

TEST(BlockPartition, UnevenLastBlockMayBeShortOrEmpty) {
    BlockPartition p(10, 4);  // ceil(10/4)=3 -> sizes 3,3,3,1
    EXPECT_EQ(p.size(0), 3);
    EXPECT_EQ(p.size(3), 1);
    EXPECT_EQ(p.owner(9), 3);

    BlockPartition tiny(2, 2);  // sizes 1,1
    EXPECT_EQ(tiny.size(0), 1);
    EXPECT_EQ(tiny.size(1), 1);

    BlockPartition empty_tail(3, 2);  // ceil=2 -> sizes 2,1
    EXPECT_EQ(empty_tail.size(0), 2);
    EXPECT_EQ(empty_tail.size(1), 1);

    BlockPartition very_uneven(5, 4);  // ceil=2 -> 2,2,1,0
    EXPECT_EQ(very_uneven.size(2), 1);
    EXPECT_EQ(very_uneven.size(3), 0);
}

TEST(BlockPartition, EveryIndexRoundTrips) {
    for (index_t n : {1, 7, 16, 100}) {
        for (int q : {1, 2, 3, 4}) {
            BlockPartition p(n, q);
            for (index_t g = 0; g < n; ++g) {
                const int b = p.owner(g);
                ASSERT_GE(b, 0);
                ASSERT_LT(b, q);
                ASSERT_GE(g, p.offset(b));
                ASSERT_LT(g, p.offset(b) + p.size(b));
                EXPECT_EQ(p.to_global(b, p.to_local(g)), g);
            }
        }
    }
}

TEST(ProcessGrid, IsSquare) {
    EXPECT_TRUE(ProcessGrid::is_square(1));
    EXPECT_TRUE(ProcessGrid::is_square(4));
    EXPECT_TRUE(ProcessGrid::is_square(9));
    EXPECT_TRUE(ProcessGrid::is_square(16));
    EXPECT_FALSE(ProcessGrid::is_square(2));
    EXPECT_FALSE(ProcessGrid::is_square(8));
    EXPECT_FALSE(ProcessGrid::is_square(12));
}

TEST(ProcessGrid, RejectsNonSquareWorld) {
    EXPECT_THROW(run_world(2, [](Comm& c) { ProcessGrid grid(c); }),
                 std::invalid_argument);
}

class GridP : public ::testing::TestWithParam<int> {};

TEST_P(GridP, CoordinatesAndCommunicators) {
    const int p = GetParam();
    const int q = static_cast<int>(std::lround(std::sqrt(double(p))));
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        EXPECT_EQ(grid.q(), q);
        EXPECT_EQ(grid.grid_row(), c.rank() / q);
        EXPECT_EQ(grid.grid_col(), c.rank() % q);
        EXPECT_EQ(grid.rank_of(grid.grid_row(), grid.grid_col()), c.rank());
        EXPECT_EQ(grid.row_comm().size(), q);
        EXPECT_EQ(grid.col_comm().size(), q);
        // row_comm rank is the grid column; col_comm rank is the grid row.
        EXPECT_EQ(grid.row_comm().rank(), grid.grid_col());
        EXPECT_EQ(grid.col_comm().rank(), grid.grid_row());
        // Row communicator really spans this row: sum of world ranks.
        const int rowsum = grid.row_comm().allreduce<int>(
            c.rank(), [](int a, int b) { return a + b; });
        int expect = 0;
        for (int j = 0; j < q; ++j) expect += grid.rank_of(grid.grid_row(), j);
        EXPECT_EQ(rowsum, expect);
        const int colsum = grid.col_comm().allreduce<int>(
            c.rank(), [](int a, int b) { return a + b; });
        expect = 0;
        for (int i = 0; i < q; ++i) expect += grid.rank_of(i, grid.grid_col());
        EXPECT_EQ(colsum, expect);
    });
}

TEST_P(GridP, TransposedRankPairsUp) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const int t = grid.transposed_rank();
        // Transposing twice is the identity.
        const int tt = (t / grid.q()) * grid.q() + (t % grid.q());
        EXPECT_EQ(grid.rank_of(tt % grid.q(), tt / grid.q()), c.rank());
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, GridP, ::testing::Values(1, 4, 9, 16));

}  // namespace
