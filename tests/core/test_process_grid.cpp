#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/grid_shapes.hpp"
#include "core/process_grid.hpp"

namespace {

using dsg::core::BlockPartition;
using dsg::core::ProcessGrid;
using dsg::par::Comm;
using dsg::par::run_world;
using dsg::sparse::index_t;
using dsg::test::GridCase;

TEST(BlockPartition, EvenSplit) {
    BlockPartition p(12, 4);
    for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(p.size(b), 3);
        EXPECT_EQ(p.offset(b), 3 * b);
    }
    EXPECT_EQ(p.owner(0), 0);
    EXPECT_EQ(p.owner(11), 3);
    EXPECT_EQ(p.to_local(7), 1);
    EXPECT_EQ(p.to_global(2, 1), 7);
}

TEST(BlockPartition, UnevenLastBlockMayBeShortOrEmpty) {
    BlockPartition p(10, 4);  // ceil(10/4)=3 -> sizes 3,3,3,1
    EXPECT_EQ(p.size(0), 3);
    EXPECT_EQ(p.size(3), 1);
    EXPECT_EQ(p.owner(9), 3);

    BlockPartition tiny(2, 2);  // sizes 1,1
    EXPECT_EQ(tiny.size(0), 1);
    EXPECT_EQ(tiny.size(1), 1);

    BlockPartition empty_tail(3, 2);  // ceil=2 -> sizes 2,1
    EXPECT_EQ(empty_tail.size(0), 2);
    EXPECT_EQ(empty_tail.size(1), 1);

    BlockPartition very_uneven(5, 4);  // ceil=2 -> 2,2,1,0
    EXPECT_EQ(very_uneven.size(2), 1);
    EXPECT_EQ(very_uneven.size(3), 0);
}

TEST(BlockPartition, EveryIndexRoundTrips) {
    for (index_t n : {1, 7, 16, 100}) {
        for (int q : {1, 2, 3, 4}) {
            BlockPartition p(n, q);
            for (index_t g = 0; g < n; ++g) {
                const int b = p.owner(g);
                ASSERT_GE(b, 0);
                ASSERT_LT(b, q);
                ASSERT_GE(g, p.offset(b));
                ASSERT_LT(g, p.offset(b) + p.size(b));
                EXPECT_EQ(p.to_global(b, p.to_local(g)), g);
            }
        }
    }
}

TEST(ProcessGrid, IsSquare) {
    EXPECT_TRUE(ProcessGrid::is_square(1));
    EXPECT_TRUE(ProcessGrid::is_square(4));
    EXPECT_TRUE(ProcessGrid::is_square(9));
    EXPECT_TRUE(ProcessGrid::is_square(16));
    EXPECT_FALSE(ProcessGrid::is_square(2));
    EXPECT_FALSE(ProcessGrid::is_square(8));
    EXPECT_FALSE(ProcessGrid::is_square(12));
}

TEST(ProcessGrid, DefaultShapeIsMostSquareFactoring) {
    using Shape = std::pair<int, int>;
    EXPECT_EQ(ProcessGrid::default_shape(1), (Shape{1, 1}));
    EXPECT_EQ(ProcessGrid::default_shape(2), (Shape{1, 2}));
    EXPECT_EQ(ProcessGrid::default_shape(3), (Shape{1, 3}));
    EXPECT_EQ(ProcessGrid::default_shape(4), (Shape{2, 2}));
    EXPECT_EQ(ProcessGrid::default_shape(5), (Shape{1, 5}));
    EXPECT_EQ(ProcessGrid::default_shape(6), (Shape{2, 3}));
    EXPECT_EQ(ProcessGrid::default_shape(8), (Shape{2, 4}));
    EXPECT_EQ(ProcessGrid::default_shape(9), (Shape{3, 3}));
    EXPECT_EQ(ProcessGrid::default_shape(12), (Shape{3, 4}));
    EXPECT_EQ(ProcessGrid::default_shape(16), (Shape{4, 4}));
}

TEST(ProcessGrid, AutoFactorsRectangularWorld) {
    run_world(6, [](Comm& c) {
        ProcessGrid grid(c);
        EXPECT_EQ(grid.rows(), 2);
        EXPECT_EQ(grid.cols(), 3);
    });
}

TEST(ProcessGrid, ExplicitShapeOverride) {
    run_world(6, [](Comm& c) {
        ProcessGrid grid(c, 1, 6);
        EXPECT_EQ(grid.rows(), 1);
        EXPECT_EQ(grid.cols(), 6);
        EXPECT_EQ(grid.grid_row(), 0);
        EXPECT_EQ(grid.grid_col(), c.rank());
    });
}

TEST(ProcessGrid, RejectsShapeNotMatchingWorld) {
    EXPECT_THROW(run_world(6, [](Comm& c) { ProcessGrid grid(c, 2, 2); }),
                 std::invalid_argument);
    EXPECT_THROW(run_world(2, [](Comm& c) { ProcessGrid grid(c, 0, 2); }),
                 std::invalid_argument);
}

class GridP : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridP, CoordinatesAndCommunicators) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        EXPECT_EQ(grid.rows(), gc.rows);
        EXPECT_EQ(grid.cols(), gc.cols);
        EXPECT_EQ(grid.grid_row(), c.rank() / gc.cols);
        EXPECT_EQ(grid.grid_col(), c.rank() % gc.cols);
        EXPECT_EQ(grid.rank_of(grid.grid_row(), grid.grid_col()), c.rank());
        // A row spans the grid's columns and vice versa.
        EXPECT_EQ(grid.row_comm().size(), gc.cols);
        EXPECT_EQ(grid.col_comm().size(), gc.rows);
        // row_comm rank is the grid column; col_comm rank is the grid row.
        EXPECT_EQ(grid.row_comm().rank(), grid.grid_col());
        EXPECT_EQ(grid.col_comm().rank(), grid.grid_row());
        // Row communicator really spans this row: sum of world ranks.
        const int rowsum = grid.row_comm().allreduce<int>(
            c.rank(), [](int a, int b) { return a + b; });
        int expect = 0;
        for (int j = 0; j < gc.cols; ++j)
            expect += grid.rank_of(grid.grid_row(), j);
        EXPECT_EQ(rowsum, expect);
        const int colsum = grid.col_comm().allreduce<int>(
            c.rank(), [](int a, int b) { return a + b; });
        expect = 0;
        for (int i = 0; i < gc.rows; ++i)
            expect += grid.rank_of(i, grid.grid_col());
        EXPECT_EQ(colsum, expect);
    });
}

TEST_P(GridP, PartitionsCoverBothAxes) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        const BlockPartition rp = grid.row_partition(17);
        const BlockPartition cp = grid.col_partition(17);
        EXPECT_EQ(rp.blocks(), gc.rows);
        EXPECT_EQ(cp.blocks(), gc.cols);
        EXPECT_EQ(rp.offset(rp.blocks()), 17);
        EXPECT_EQ(cp.offset(cp.blocks()), 17);
    });
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, GridP,
    ::testing::ValuesIn(dsg::test::grid_shape_cases_sync_only()),
    dsg::test::grid_case_name);

}  // namespace
