// Properties of the update redistribution (Section IV-B): every tuple ends on
// its owner rank, the global multiset is preserved, and the two modes agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <random>

#include "core/redistribute.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::DistShape;
using core::ProcessGrid;
using core::RedistMode;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::Triple;
using test::random_triples;

struct Params {
    int p;
    RedistMode mode;
};

class RedistP : public ::testing::TestWithParam<Params> {};

TEST_P(RedistP, TuplesArriveAtOwnersAndNothingIsLost) {
    const auto [p, mode] = GetParam();
    const index_t n = 37;  // deliberately not divisible by q
    const index_t m = 23;
    std::vector<std::vector<Triple<double>>> received(
        static_cast<std::size_t>(p));
    std::vector<Triple<double>> global_input;
    std::mutex mx;
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> shape_holder(grid, n, m);
        const DistShape& shape = shape_holder.shape();
        std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(c.rank()));
        auto mine = random_triples(rng, n, m, 200 + 13 * c.rank());
        {
            std::lock_guard lk(mx);
            global_input.insert(global_input.end(), mine.begin(), mine.end());
        }
        auto got = core::redistribute_tuples(grid, shape, mine, mode);
        // Ownership property.
        for (const auto& t : got)
            EXPECT_EQ(shape.owner_rank(t.row, t.col), c.rank());
        std::lock_guard lk(mx);
        received[static_cast<std::size_t>(c.rank())] = std::move(got);
    });
    // Multiset preservation.
    std::vector<Triple<double>> all;
    for (auto& part : received) all.insert(all.end(), part.begin(), part.end());
    auto key = [](const Triple<double>& t) {
        return std::tuple(t.row, t.col, t.value);
    };
    std::sort(all.begin(), all.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(global_input.begin(), global_input.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    EXPECT_EQ(all, global_input);
}

TEST_P(RedistP, EmptyInputOnEveryRank) {
    const auto [p, mode] = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> holder(grid, 10, 10);
        auto got = core::redistribute_tuples(grid, holder.shape(),
                                             std::vector<Triple<double>>{}, mode);
        EXPECT_TRUE(got.empty());
    });
}

TEST_P(RedistP, AllTuplesFromOneRank) {
    const auto [p, mode] = GetParam();
    run_world(p, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> holder(grid, 16, 16);
        std::vector<Triple<double>> mine;
        if (c.rank() == 0) {
            for (index_t i = 0; i < 16; ++i)
                for (index_t j = 0; j < 16; ++j)
                    mine.push_back({i, j, double(i * 16 + j)});
        }
        auto got = core::redistribute_tuples(grid, holder.shape(), mine, mode);
        // Each rank owns exactly its (possibly uneven) block.
        const auto& rp = holder.shape().row_partition();
        const auto& cp = holder.shape().col_partition();
        EXPECT_EQ(got.size(),
                  static_cast<std::size_t>(rp.size(grid.grid_row()) *
                                           cp.size(grid.grid_col())));
        for (const auto& t : got)
            EXPECT_EQ(holder.shape().owner_rank(t.row, t.col), c.rank());
    });
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorlds, RedistP,
    ::testing::Values(Params{1, RedistMode::TwoPhase},
                      Params{4, RedistMode::TwoPhase},
                      Params{9, RedistMode::TwoPhase},
                      Params{16, RedistMode::TwoPhase},
                      Params{1, RedistMode::DirectSort},
                      Params{4, RedistMode::DirectSort},
                      Params{9, RedistMode::DirectSort}));

TEST(Redistribute, TwoPhaseTouchesOnlySqrtPPeersPerPhase) {
    // The two-phase exchange runs over the q-rank row/column communicators;
    // with p = 16 the alltoall volume must equal the bytes a tuple stream
    // crossing rank boundaries occupies, and no world-wide alltoallv happens.
    run_world(16, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> holder(grid, 64, 64);
        c.barrier();
        if (c.rank() == 0) c.stats().reset();
        c.barrier();
        std::mt19937_64 rng(5 + static_cast<std::uint64_t>(c.rank()));
        auto mine = test::random_triples(rng, 64, 64, 64);
        (void)core::redistribute_tuples(grid, holder.shape(), mine,
                                        core::RedistMode::TwoPhase);
        c.barrier();
        if (c.rank() == 0) {
            const auto s = c.stats().snapshot();
            // Two alltoallv per rank happened (collectives counted globally:
            // 2 phases * 16 ranks, plus the allgathers none; splits already
            // done before reset).
            EXPECT_GE(s.collectives, 2u * 16u);
            EXPECT_GT(s.alltoall_bytes, 0u);
        }
    });
}

}  // namespace
