// Properties of the update redistribution (Section IV-B): every tuple ends on
// its owner rank, the global multiset is preserved, and the two modes agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <random>

#include "common/grid_shapes.hpp"
#include "core/redistribute.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::DistShape;
using core::ProcessGrid;
using core::RedistMode;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::Triple;
using test::random_triples;
using dsg::test::GridCase;

struct Params {
    GridCase gc;
    RedistMode mode;
};

std::string params_name(const ::testing::TestParamInfo<Params>& info) {
    const Params& pr = info.param;
    return std::to_string(pr.gc.rows) + "x" + std::to_string(pr.gc.cols) +
           (pr.mode == RedistMode::TwoPhase ? "_twophase" : "_directsort") +
           (pr.gc.comm_mode == par::CommMode::Async ? "_async" : "_sync");
}

std::vector<Params> redist_params() {
    std::vector<Params> out;
    for (const GridCase& gc : dsg::test::grid_shape_cases())
        for (const RedistMode mode :
             {RedistMode::TwoPhase, RedistMode::DirectSort})
            out.push_back({gc, mode});
    return out;
}

class RedistP : public ::testing::TestWithParam<Params> {};

TEST_P(RedistP, TuplesArriveAtOwnersAndNothingIsLost) {
    const auto [gc, mode] = GetParam();
    const index_t n = 37;  // deliberately not divisible by rows or cols
    const index_t m = 23;
    std::vector<std::vector<Triple<double>>> received(
        static_cast<std::size_t>(gc.p()));
    std::vector<Triple<double>> global_input;
    std::mutex mx;
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DistDynamicMatrix<double> shape_holder(grid, n, m);
        const DistShape& shape = shape_holder.shape();
        std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(c.rank()));
        auto mine = random_triples(rng, n, m, 200 + 13 * c.rank());
        {
            std::lock_guard lk(mx);
            global_input.insert(global_input.end(), mine.begin(), mine.end());
        }
        auto got = core::redistribute_tuples(grid, shape, mine, mode,
                                             gc.comm_mode);
        // Ownership property.
        for (const auto& t : got)
            EXPECT_EQ(shape.owner_rank(t.row, t.col), c.rank());
        std::lock_guard lk(mx);
        received[static_cast<std::size_t>(c.rank())] = std::move(got);
    });
    // Multiset preservation.
    std::vector<Triple<double>> all;
    for (auto& part : received) all.insert(all.end(), part.begin(), part.end());
    auto key = [](const Triple<double>& t) {
        return std::tuple(t.row, t.col, t.value);
    };
    std::sort(all.begin(), all.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(global_input.begin(), global_input.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    EXPECT_EQ(all, global_input);
}

TEST_P(RedistP, EmptyInputOnEveryRank) {
    const auto [gc, mode] = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DistDynamicMatrix<double> holder(grid, 10, 10);
        auto got = core::redistribute_tuples(grid, holder.shape(),
                                             std::vector<Triple<double>>{}, mode,
                                             gc.comm_mode);
        EXPECT_TRUE(got.empty());
    });
}

TEST_P(RedistP, AllTuplesFromOneRank) {
    const auto [gc, mode] = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DistDynamicMatrix<double> holder(grid, 16, 16);
        std::vector<Triple<double>> mine;
        if (c.rank() == 0) {
            for (index_t i = 0; i < 16; ++i)
                for (index_t j = 0; j < 16; ++j)
                    mine.push_back({i, j, double(i * 16 + j)});
        }
        auto got = core::redistribute_tuples(grid, holder.shape(), mine, mode,
                                             gc.comm_mode);
        // Each rank owns exactly its (possibly uneven) block.
        const auto& rp = holder.shape().row_partition();
        const auto& cp = holder.shape().col_partition();
        EXPECT_EQ(got.size(),
                  static_cast<std::size_t>(rp.size(grid.grid_row()) *
                                           cp.size(grid.grid_col())));
        for (const auto& t : got)
            EXPECT_EQ(holder.shape().owner_rank(t.row, t.col), c.rank());
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, RedistP,
                         ::testing::ValuesIn(redist_params()), params_name);

TEST(Redistribute, RectangularGridMatchesSingleRankReference) {
    // The regression the rectangular generalization demands: the index math
    // that decides ownership must not assume q = sqrt(p). A fixed COO set is
    // redistributed on a 2x3 grid and the per-rank partition is compared,
    // tuple for tuple, against what the 1-rank reference (which trivially
    // keeps everything) says each rank of a 2x3 grid should own.
    const index_t n = 19, m = 17;
    std::vector<Triple<double>> coo;
    for (index_t i = 0; i < n; ++i)
        for (index_t j = 0; j < m; ++j)
            if ((i * 31 + j * 7) % 5 == 0)
                coo.push_back({i, j, double(i) * 100.0 + double(j)});

    // 1-rank reference: ownership derived from the same DistShape logic on a
    // trivially correct 1x1 grid, then re-partitioned by hand onto 2x3.
    std::vector<std::vector<Triple<double>>> expect(6);
    run_world(1, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> holder(grid, n, m);
        auto got = core::redistribute_tuples(grid, holder.shape(), coo,
                                             RedistMode::TwoPhase);
        EXPECT_EQ(got.size(), coo.size());
        const core::BlockPartition rp(n, 2), cp(m, 3);
        for (const auto& t : got)
            expect[static_cast<std::size_t>(rp.owner(t.row) * 3 +
                                            cp.owner(t.col))].push_back(t);
    });

    auto key = [](const Triple<double>& t) {
        return std::tuple(t.row, t.col, t.value);
    };
    auto sorted = [&](std::vector<Triple<double>> v) {
        std::sort(v.begin(), v.end(),
                  [&](auto& a, auto& b) { return key(a) < key(b); });
        return v;
    };
    for (const RedistMode mode :
         {RedistMode::TwoPhase, RedistMode::DirectSort}) {
        std::vector<std::vector<Triple<double>>> received(6);
        std::mutex mx;
        run_world(6, [&](Comm& c) {
            ProcessGrid grid(c, 2, 3);
            core::DistDynamicMatrix<double> holder(grid, n, m);
            // Scatter the input round-robin so every rank contributes.
            std::vector<Triple<double>> mine;
            for (std::size_t x = c.rank(); x < coo.size(); x += 6)
                mine.push_back(coo[x]);
            auto got = core::redistribute_tuples(grid, holder.shape(), mine,
                                                 mode);
            std::lock_guard lk(mx);
            received[static_cast<std::size_t>(c.rank())] = std::move(got);
        });
        for (int r = 0; r < 6; ++r)
            EXPECT_EQ(sorted(received[static_cast<std::size_t>(r)]),
                      sorted(expect[static_cast<std::size_t>(r)]))
                << "rank " << r << " block differs from the 1-rank reference";
    }
}

TEST(Redistribute, TwoPhaseTouchesOnlyRowAndColPeersPerPhase) {
    // The two-phase exchange runs over the row/column communicators (4 ranks
    // each on the 4x4 grid p = 16 auto-factors to); the alltoall volume must
    // equal the bytes a tuple stream crossing rank boundaries occupies, and
    // no world-wide alltoallv happens.
    run_world(16, [&](Comm& c) {
        ProcessGrid grid(c);
        core::DistDynamicMatrix<double> holder(grid, 64, 64);
        c.barrier();
        if (c.rank() == 0) c.stats().reset();
        c.barrier();
        std::mt19937_64 rng(5 + static_cast<std::uint64_t>(c.rank()));
        auto mine = test::random_triples(rng, 64, 64, 64);
        (void)core::redistribute_tuples(grid, holder.shape(), mine,
                                        core::RedistMode::TwoPhase);
        c.barrier();
        if (c.rank() == 0) {
            const auto s = c.stats().snapshot();
            // Two alltoallv per rank happened (collectives counted globally:
            // 2 phases * 16 ranks, plus the allgathers none; splits already
            // done before reset).
            EXPECT_GE(s.collectives, 2u * 16u);
            EXPECT_GT(s.alltoall_bytes, 0u);
        }
    });
}

}  // namespace
