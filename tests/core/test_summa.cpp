// Static sparse SUMMA against the serial reference, over several semirings,
// grid sizes and rectangular shapes; Bloom filter production invariants.
#include <gtest/gtest.h>

#include <random>

#include "common/grid_shapes.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::DistDynamicMatrix;
using core::ProcessGrid;
using core::summa_multiply;
using core::SummaOptions;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::MinPlus;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;
using test::reference_multiply;
using dsg::test::GridCase;

class SummaP : public ::testing::TestWithParam<GridCase> {};

TEST_P(SummaP, PlusTimesMatchesReference) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(42);  // same seed on all ranks: rank 0 feeds
        auto ta = random_triples(rng, 33, 27, 250);
        auto tb = random_triples(rng, 27, 31, 250);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 33, 27, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        auto B = build_dynamic_matrix<PlusTimes<double>>(
            grid, 27, 31, c.rank() == 0 ? tb : std::vector<Triple<double>>{});
        auto C = summa_multiply<PlusTimes<double>>(A, B, sopts);
        test::expect_matches(
            C, reference_multiply<PlusTimes<double>>(as_map(ta), as_map(tb)));
    });
}

TEST_P(SummaP, MinPlusMatchesReference) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(43);
        auto ta = random_triples(rng, 20, 20, 150);
        auto tb = random_triples(rng, 20, 20, 150);
        sparse::combine_duplicates<MinPlus<double>>(ta);
        sparse::combine_duplicates<MinPlus<double>>(tb);
        auto A = build_dynamic_matrix<MinPlus<double>>(
            grid, 20, 20, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        auto B = build_dynamic_matrix<MinPlus<double>>(
            grid, 20, 20, c.rank() == 0 ? tb : std::vector<Triple<double>>{});
        auto C = summa_multiply<MinPlus<double>>(A, B, sopts);
        test::expect_matches_exactly(
            C, reference_multiply<MinPlus<double>>(as_map(ta), as_map(tb)));
    });
}

TEST_P(SummaP, EmptyOperandsGiveEmptyResult) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        DistDynamicMatrix<double> A(grid, 12, 12);
        DistDynamicMatrix<double> B(grid, 12, 12);
        auto C = summa_multiply<PlusTimes<double>>(A, B, sopts);
        EXPECT_EQ(C.global_nnz(), 0u);
    });
}

TEST_P(SummaP, BloomFilterCoversEveryContribution) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(44);
        auto ta = random_triples(rng, 30, 30, 220);
        auto tb = random_triples(rng, 30, 30, 220);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        auto B = build_dynamic_matrix<PlusTimes<double>>(
            grid, 30, 30, c.rank() == 0 ? tb : std::vector<Triple<double>>{});
        DistDynamicMatrix<double> C(grid, 30, 30);
        DistDynamicMatrix<std::uint64_t> F(grid, 30, 30);
        SummaOptions opts = sopts;
        opts.bloom_out = &F;
        core::summa<PlusTimes<double>>(C, A, B, opts);

        // Gather F and check: for every contributing term a_{ik} b_{kj},
        // bit (k mod 64) of f_{ij} is set.
        auto fmap = [&] {
            std::map<std::pair<index_t, index_t>, std::uint64_t> m;
            for (const auto& t : F.gather_global()) m[{t.row, t.col}] = t.value;
            return m;
        }();
        auto am = as_map(ta);
        auto bm = as_map(tb);
        for (const auto& [ca, va] : am)
            for (const auto& [cb, vb] : bm) {
                if (ca.second != cb.first) continue;
                auto it = fmap.find({ca.first, cb.second});
                ASSERT_NE(it, fmap.end());
                EXPECT_NE(it->second & sparse::bloom_bit(ca.second), 0u);
            }
        // F and C have identical sparsity structure.
        EXPECT_EQ(F.global_nnz(), C.global_nnz());
    });
}

TEST_P(SummaP, MaskedSummaRestrictsToMask) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(45);
        auto ta = random_triples(rng, 24, 24, 200);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 24, 24, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        // Mask = pattern of A itself (the triangle-counting shape A.*(A*A)).
        sparse::PairSet mask(A.shape().local_cols(), A.local().nnz());
        A.local().for_each(
            [&](index_t i, index_t j, double) { mask.insert(i, j); });
        SummaOptions opts = sopts;
        opts.local_mask = &mask;
        auto C = summa_multiply<PlusTimes<double>>(A, A, opts);

        auto full = reference_multiply<PlusTimes<double>>(as_map(ta), as_map(ta));
        CoordMap expect;
        auto am = as_map(ta);
        for (const auto& [coord, v] : full)
            if (am.count(coord) != 0) expect[coord] = v;
        test::expect_matches(C, expect);
    });
}

TEST_P(SummaP, ThreadedSummaMatchesSequential) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        SummaOptions sopts;
        sopts.comm_mode = gc.comm_mode;
        par::ThreadPool pool(2);
        std::mt19937_64 rng(46);
        auto ta = random_triples(rng, 40, 40, 400);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 40, 40, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        auto C1 = summa_multiply<PlusTimes<double>>(A, A, sopts);
        SummaOptions opts = sopts;
        opts.pool = &pool;
        auto C2 = summa_multiply<PlusTimes<double>>(A, A, opts);
        EXPECT_EQ(as_map(C1.gather_global()), as_map(C2.gather_global()));
    });
}

TEST_P(SummaP, AsyncIsBitIdenticalToSync) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        std::mt19937_64 rng(47);
        auto ta = random_triples(rng, 29, 29, 260);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        auto A = build_dynamic_matrix<PlusTimes<double>>(
            grid, 29, 29, c.rank() == 0 ? ta : std::vector<Triple<double>>{});
        SummaOptions sync_opts;
        sync_opts.comm_mode = par::CommMode::Sync;
        SummaOptions async_opts;
        async_opts.comm_mode = par::CommMode::Async;
        auto Cs = summa_multiply<PlusTimes<double>>(A, A, sync_opts);
        auto Ca = summa_multiply<PlusTimes<double>>(A, A, async_opts);
        // Exact map equality: the async schedule moves the same bytes and
        // reduces in the same order, so values match bit for bit.
        EXPECT_EQ(as_map(Cs.gather_global()), as_map(Ca.gather_global()));
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, SummaP,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
